//! The FD implication problem `(D, Σ) ⊢ φ` — Section 7.
//!
//! Two engines are provided:
//!
//! * [`Chase`] — a **two-tuple chase**: a saturation procedure over a
//!   three-valued per-path state describing two hypothetical tree tuples
//!   of a counterexample document. Every derivation rule is sound (doc
//!   comments on each rule carry the argument), so a derived contradiction
//!   proves implication. On simple and disjunctive DTDs the chase is also
//!   empirically complete — validated against the counterexample
//!   constructor on the paper's examples and on randomized corpora (see
//!   the crate tests and `EXPERIMENTS.md`). Runtime is polynomial
//!   (near-quadratic in `|paths(D)| + |Σ|` on simple DTDs), realizing the
//!   Theorem 3 bound.
//! * [`CounterexampleSearch`] — builds an *actual witness document* from a
//!   non-contradictory chase fixpoint and verifies it end-to-end
//!   (`T ⊨ D`, `T ⊨ Σ`, `T ⊭ φ`), falling back to randomized and
//!   exhaustive disjunction-choice search. The exhaustive mode is the
//!   literal coNP upper bound of Theorem 5 and is what the `exp10` bench
//!   measures.

pub mod cache;
pub mod chase;
pub mod incremental;
pub mod search;
pub mod shard;

pub use cache::ImplicationCache;
#[cfg(feature = "testing")]
pub use chase::StructuralFacts;
pub use chase::{
    Chase, ChaseConfig, ChaseOutcome, ChaseStats, ChaseStatsSnapshot, PairState, RunTrace, Session,
    Ternary,
};
pub use incremental::{DtdDelta, IncrementalCache, InvalidationReport, SigmaDelta};
pub use search::{Counterexample, CounterexampleSearch};
pub use shard::{candidate_fragment, run_sharded, Shard, ShardPlan};

use crate::fd::ResolvedFd;
use xnf_govern::Exhausted;

/// An FD implication oracle over a fixed `(D, paths(D))`.
pub trait Implication {
    /// Whether `(D, Σ) ⊢ φ`.
    fn implies(&self, sigma: &[ResolvedFd], fd: &ResolvedFd) -> bool;

    /// Budget-aware variant of [`implies`](Implication::implies): returns
    /// [`Exhausted`] instead of an unreliable verdict when the oracle's
    /// resource budget runs out. The default delegates to the infallible
    /// `implies`, so oracles without internal governance never exhaust.
    fn try_implies(&self, sigma: &[ResolvedFd], fd: &ResolvedFd) -> Result<bool, Exhausted> {
        Ok(self.implies(sigma, fd))
    }

    /// Whether `φ` is trivial, i.e. `(D, ∅) ⊢ φ`.
    fn is_trivial(&self, fd: &ResolvedFd) -> bool {
        self.implies(&[], fd)
    }

    /// Budget-aware variant of [`is_trivial`](Implication::is_trivial).
    fn try_is_trivial(&self, fd: &ResolvedFd) -> Result<bool, Exhausted> {
        self.try_implies(&[], fd)
    }
}
