//! The two-tuple chase for XML FD implication.
//!
//! To decide `(D, Σ) ⊢ S → q` we reason about a hypothetical
//! counterexample: a tree `T ⊨ D`, `T ⊨ Σ` with two tuples
//! `t₁, t₂ ∈ tuples_D(T)` such that `t₁.S = t₂.S ≠ ⊥` and `t₁.q ≠ t₂.q`.
//! For every path `p` we track three ternary facts:
//!
//! * `n₁(p)`, `n₂(p)` — is `tᵢ.p` null?
//! * `eq(p)` — are the two values equal (`⊥ = ⊥` counts as equal; for
//!   element paths equality means *the same vertex*)?
//!
//! and saturate under structural rules derived from Definition 3
//! conformance plus the FDs of `Σ`. Deriving a contradiction (some fact
//! both true and false) proves that no counterexample exists, i.e. the
//! implication holds. Each rule's soundness argument is given inline.
//!
//! The per-letter structural facts (required / at-most-one / exclusive
//! disjunction groups) come from the Section 7 classification for
//! disjunctive content models and from conservative interval hulls
//! ([`xnf_dtd::classify::letter_bounds`]) otherwise, so the chase is sound
//! on **every** DTD and sharpest on simple/disjunctive ones — mirroring
//! Theorems 3–5.

use crate::fd::ResolvedFd;
use crate::implication::Implication;
use crate::UNLIMITED;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use xnf_dtd::classify::{classify_content, letter_bounds, Factor, SimpleContent};
use xnf_dtd::{ContentModel, Dtd, PathId, PathSet, Step};
use xnf_govern::{Budget, Exhausted};
use xnf_obs::{Counter, CounterSnapshot};

/// Instrumentation counters for the implication machinery, named for
/// export (`chase.runs`, `cache.hits`, …).
///
/// The counters live on the [`Chase`] (and are shared by any
/// [`ImplicationCache`](crate::implication::ImplicationCache) wrapping
/// it), are [`xnf_obs::Counter`]s — relaxed atomics, so a `&Chase` can
/// be queried from the parallel anomalous-FD search workers — and are
/// purely observational: no verdict depends on them. A snapshot of the
/// totals publishes into an [`xnf_obs::Recorder`] via `Recorder::merge`.
#[derive(Debug)]
pub struct ChaseStats {
    /// Single-RHS chase runs started (one per `run_single`).
    pub runs: Counter,
    /// FD-rule firings that derived at least one new fact.
    pub rule_firings: Counter,
    /// Ternary-state flips: `Unknown → True/False` transitions of an
    /// `n₁`/`n₂`/`eq` fact.
    pub ternary_flips: Counter,
    /// Memoized verdicts served by a wrapping `ImplicationCache`.
    pub cache_hits: Counter,
    /// Cache misses (each one cost a real chase run).
    pub cache_misses: Counter,
}

/// A plain-integer copy of [`ChaseStats`] at one instant, keyed by the
/// counters' export names (`chase.runs`, `cache.hits`, …). Snapshots
/// accumulate with `+=` and publish via `xnf_obs::Recorder::merge`.
pub type ChaseStatsSnapshot = CounterSnapshot;

impl Default for ChaseStats {
    fn default() -> ChaseStats {
        ChaseStats {
            runs: Counter::new("chase.runs"),
            rule_firings: Counter::new("chase.rule_firings"),
            ternary_flips: Counter::new("chase.ternary_flips"),
            cache_hits: Counter::new("cache.hits"),
            cache_misses: Counter::new("cache.misses"),
        }
    }
}

impl ChaseStats {
    /// Reads all counters (relaxed; exact once the workers are joined).
    pub fn snapshot(&self) -> ChaseStatsSnapshot {
        CounterSnapshot::of([
            &self.runs,
            &self.rule_firings,
            &self.ternary_flips,
            &self.cache_hits,
            &self.cache_misses,
        ])
    }
}

/// A three-valued truth value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ternary {
    /// Known true.
    True,
    /// Known false.
    False,
    /// Unknown.
    Unknown,
}

impl Ternary {
    fn known(self) -> bool {
        self != Ternary::Unknown
    }
}

/// The chase state for one path.
#[derive(Debug, Clone, Copy)]
pub struct PairState {
    /// Is `t₁.p` null?
    pub n1: Ternary,
    /// Is `t₂.p` null?
    pub n2: Ternary,
    /// Is `t₁.p = t₂.p` (with `⊥ = ⊥`)?
    pub eq: Ternary,
}

impl PairState {
    const UNKNOWN: PairState = PairState {
        n1: Ternary::Unknown,
        n2: Ternary::Unknown,
        eq: Ternary::Unknown,
    };

    /// `n₁` or `n₂` by side index (0 or 1).
    pub fn n(&self, i: usize) -> Ternary {
        if i == 0 {
            self.n1
        } else {
            self.n2
        }
    }
}

/// Structural facts about one path, derived from its parent's content
/// model.
#[derive(Debug, Clone, Copy, Default)]
struct PathFacts {
    /// If the parent is non-null, this path is non-null (attributes, `S`,
    /// letters with `lo ≥ 1`).
    required: bool,
    /// The parent node determines this path's value: at most one child
    /// with this label per node (attributes, `S`, letters with `hi ≤ 1`).
    at_most_one: bool,
    /// Exclusive-disjunction group (per parent element), if any: at most
    /// one member of the group is non-null per tuple.
    group: Option<u32>,
}

#[derive(Debug, Clone)]
struct Group {
    members: Vec<PathId>,
    /// Whether the group's disjunction admits `ε` (no member present).
    nullable: bool,
}

/// Which facts changed for a path — the worklist token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FactKind {
    Null(usize),
    Eq,
}

/// Tuning knobs for the chase — each switch disables one of the
/// completeness-improving rules, for the ablation experiments (exp13 in
/// `EXPERIMENTS.md`). All rules are *sound*; disabling them only makes
/// the chase answer "not implied" more often.
#[derive(Debug, Clone, Copy)]
pub struct ChaseConfig {
    /// The swap form of the FD rule (cross-tuple realignment through a
    /// free branch point).
    pub swap_rule: bool,
    /// The contrapositive unit rule (a blocked premise must be null when
    /// the conclusion is known to differ).
    pub contrapositive_rule: bool,
    /// Budget for presence case-splits on blocked premises (0 disables
    /// splitting).
    pub split_budget: usize,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            swap_rule: true,
            contrapositive_rule: true,
            split_budget: 64,
        }
    }
}

/// The chase engine for one `(D, paths(D))`.
#[derive(Debug)]
pub struct Chase<'a> {
    paths: &'a PathSet,
    facts: Vec<PathFacts>,
    groups: Vec<Group>,
    config: ChaseConfig,
    stats: ChaseStats,
    /// Resource budget consulted by [`Chase::try_run`] (and every governed
    /// caller above it). `run`/`implies` ignore it by contract. The handle
    /// is an `Arc` clone, so cancellation reaches all workers sharing this
    /// engine.
    budget: Budget,
}

/// The execution footprint of one [`Chase::run_traced`] call — which
/// parts of the input `(paths(D), Σ)` the run actually read or wrote.
///
/// The chase is deterministic, so a later run on an *edited* `(D, Σ)`
/// replays this one step for step as long as the edit cannot alter any
/// decision the original run took. The trace records exactly the data
/// those decisions depended on; the transfer rules in
/// [`incremental`](crate::implication::incremental) are each justified
/// against one of these fields:
///
/// * [`touched`](RunTrace::touched) — every path whose ternary state was
///   ever set. Untouched paths stayed `Unknown` throughout: rule firings
///   and scans read them only through `Unknown`-tolerant predicates, so
///   an edit confined to untouched paths cannot change the replay.
/// * [`fired`](RunTrace::fired) — per Σ index: the FD made progress in
///   [`apply_fd`](Session) (derived a new fact or the direct
///   contradiction). An FD that never fired was a no-op; removing it
///   leaves every derivation intact.
/// * [`pivot_source`](RunTrace::pivot_source) — per Σ index: the FD
///   supplied a case-split pivot in `find_blocked_premise`. Removing such
///   an FD could reroute the split tree even if it never fired.
/// * [`scan_reach`](RunTrace::scan_reach) — the longest *prefix* of Σ any
///   pivot scan examined: `i + 1` when a pivot came from index `i`, and
///   [`usize::MAX`] when some scan fell through the whole of Σ (into the
///   generic element-path scan, or finding nothing). An FD *appended*
///   after position `scan_reach - 1` in the canonical order was never
///   even looked at by the scans, so adding one there (with untouched
///   LHS, so it cannot fire either) preserves the replay; after a
///   full-Σ scan no insertion position is safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTrace {
    /// Per [`PathId`] index: the path's state was set at least once.
    pub touched: Vec<bool>,
    /// Per Σ index: the FD rule made progress at least once.
    pub fired: Vec<bool>,
    /// Per Σ index: the FD supplied a case-split pivot at least once.
    pub pivot_source: Vec<bool>,
    /// Longest Σ prefix examined by pivot scans (`usize::MAX` = all).
    pub scan_reach: usize,
}

impl RunTrace {
    fn new(paths: usize, sigma: usize) -> RunTrace {
        RunTrace {
            touched: vec![false; paths],
            fired: vec![false; sigma],
            pivot_source: vec![false; sigma],
            scan_reach: 0,
        }
    }
}

/// The outcome of one chase run.
#[derive(Debug, Clone)]
pub enum ChaseOutcome {
    /// A contradiction was derived: the implication holds.
    Implied,
    /// A consistent fixpoint: the implication was not derived; the final
    /// state (indexed by `PathId`) describes a candidate counterexample.
    NotImplied(Vec<PairState>),
}

impl<'a> Chase<'a> {
    /// Builds the structural-fact tables for the DTD with the default
    /// (full-strength) configuration.
    pub fn new(dtd: &'a Dtd, paths: &'a PathSet) -> Chase<'a> {
        Chase::with_config(dtd, paths, ChaseConfig::default())
    }

    /// Builds the chase with an explicit [`ChaseConfig`] (ablations).
    pub fn with_config(dtd: &'a Dtd, paths: &'a PathSet, config: ChaseConfig) -> Chase<'a> {
        let mut facts = vec![PathFacts::default(); paths.len()];
        let mut groups: Vec<Group> = Vec::new();
        for p in paths.iter() {
            let Some(elem) = paths.last_elem(p) else {
                continue;
            };
            // Attributes and S children are required and functional.
            for &cp in paths.children_of(p) {
                match paths.step(cp) {
                    Step::Attr(_) | Step::Text => {
                        facts[cp.index()] = PathFacts {
                            required: true,
                            at_most_one: true,
                            group: None,
                        };
                    }
                    Step::Elem(_) => {}
                }
            }
            let content = dtd.content(elem);
            let ContentModel::Regex(re) = content else {
                continue;
            };
            let child_of = |name: &str| -> Option<PathId> {
                paths
                    .children_of(p)
                    .iter()
                    .copied()
                    .find(|&cp| matches!(paths.step(cp), Step::Elem(n) if &**n == name))
            };
            match classify_content(content) {
                Some(SimpleContent::Factors(factors)) => {
                    for f in &factors {
                        match f {
                            Factor::Simple(letters) => {
                                for (name, m) in letters {
                                    if let Some(cp) = child_of(name) {
                                        facts[cp.index()] = PathFacts {
                                            required: !m.optional(),
                                            at_most_one: !m.repeatable(),
                                            group: None,
                                        };
                                    }
                                }
                            }
                            Factor::Disjunction { letters, nullable } => {
                                let members: Vec<PathId> =
                                    letters.iter().filter_map(|l| child_of(l)).collect();
                                let gid = groups.len() as u32;
                                let single = members.len() == 1;
                                for &cp in &members {
                                    facts[cp.index()] = PathFacts {
                                        required: single && !nullable,
                                        at_most_one: true,
                                        group: (!single).then_some(gid),
                                    };
                                }
                                if !single {
                                    groups.push(Group {
                                        members,
                                        nullable: *nullable,
                                    });
                                }
                            }
                        }
                    }
                }
                Some(SimpleContent::Text) => unreachable!("regex content"),
                None => {
                    // Conservative interval hulls: sound on any content
                    // model, no exclusivity information.
                    for (name, (lo, hi)) in letter_bounds(re) {
                        if let Some(cp) = child_of(&name) {
                            facts[cp.index()] = PathFacts {
                                required: lo >= 1,
                                at_most_one: hi == Some(1) || hi == Some(0),
                                group: None,
                            };
                        }
                    }
                }
            }
        }
        Chase {
            paths,
            facts,
            groups,
            config,
            stats: ChaseStats::default(),
            budget: Budget::unlimited(),
        }
    }

    /// Installs a resource [`Budget`] consulted by [`Chase::try_run`] and
    /// [`Implication::try_implies`]; the infallible `run`/`implies` stay
    /// ungoverned regardless.
    pub fn with_budget(mut self, budget: Budget) -> Chase<'a> {
        self.budget = budget;
        self
    }

    /// The installed resource budget (unlimited unless
    /// [`Chase::with_budget`] was used).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The instrumentation counters of this engine (shared with any
    /// wrapping cache).
    pub fn stats(&self) -> &ChaseStats {
        &self.stats
    }

    /// Runs the chase for `(Σ, S → q)` and returns the outcome.
    ///
    /// Multi-path right-hand sides are handled by conjunction: `S → S₂`
    /// is implied iff `S → q` is implied for every `q ∈ S₂`.
    pub fn run(&self, sigma: &[ResolvedFd], fd: &ResolvedFd) -> ChaseOutcome {
        match self.run_with(UNLIMITED, sigma, fd, None) {
            Ok(outcome) => outcome,
            Err(_) => unreachable!("an unlimited budget cannot exhaust"),
        }
    }

    /// [`Chase::run`] that additionally records the run's execution
    /// footprint — see [`RunTrace`] for the exact guarantees. Traced runs
    /// are ungoverned (like `run`): the trace must describe a *complete*
    /// run to be transferable, and an exhausted prefix is not one.
    pub fn run_traced(&self, sigma: &[ResolvedFd], fd: &ResolvedFd) -> (ChaseOutcome, RunTrace) {
        let trace = Rc::new(RefCell::new(RunTrace::new(self.paths.len(), sigma.len())));
        let Ok(outcome) = self.run_with(UNLIMITED, sigma, fd, Some(Rc::clone(&trace))) else {
            unreachable!("an unlimited budget cannot exhaust")
        };
        let trace = Rc::try_unwrap(trace)
            .expect("all sessions dropped with the run")
            .into_inner();
        (outcome, trace)
    }

    /// Budget-governed [`Chase::run_traced`]: charges the installed
    /// [`Budget`] like [`Chase::try_run`] while recording the run's
    /// execution footprint. On exhaustion the partial trace is dropped —
    /// an incomplete footprint is not transferable, so callers (the
    /// incremental cache) never memoize it.
    pub fn try_run_traced(
        &self,
        sigma: &[ResolvedFd],
        fd: &ResolvedFd,
    ) -> Result<(ChaseOutcome, RunTrace), Exhausted> {
        let trace = Rc::new(RefCell::new(RunTrace::new(self.paths.len(), sigma.len())));
        let outcome = self.run_with(&self.budget, sigma, fd, Some(Rc::clone(&trace)))?;
        let trace = Rc::try_unwrap(trace)
            .expect("all sessions dropped with the run")
            .into_inner();
        Ok((outcome, trace))
    }

    /// Budget-governed [`Chase::run`]: charges the installed [`Budget`]
    /// (see [`Chase::with_budget`]) per chase run, per saturation step and
    /// per case-split, returning [`Exhausted`] instead of an unreliable
    /// outcome when it runs out.
    pub fn try_run(
        &self,
        sigma: &[ResolvedFd],
        fd: &ResolvedFd,
    ) -> Result<ChaseOutcome, Exhausted> {
        self.run_with(&self.budget, sigma, fd, None)
    }

    fn run_with(
        &self,
        budget: &Budget,
        sigma: &[ResolvedFd],
        fd: &ResolvedFd,
        trace: Option<Rc<RefCell<RunTrace>>>,
    ) -> Result<ChaseOutcome, Exhausted> {
        let mut last_state = None;
        for &q in &fd.rhs {
            match self.run_single(sigma, &fd.lhs, q, budget, trace.clone())? {
                ChaseOutcome::Implied => {}
                not_implied => {
                    last_state = Some(not_implied);
                    break;
                }
            }
        }
        Ok(last_state.unwrap_or(ChaseOutcome::Implied))
    }

    fn run_single(
        &self,
        sigma: &[ResolvedFd],
        lhs: &[PathId],
        q: PathId,
        budget: &Budget,
        trace: Option<Rc<RefCell<RunTrace>>>,
    ) -> Result<ChaseOutcome, Exhausted> {
        self.stats.runs.bump();
        budget.checkpoint("chase.run")?;
        let _span = budget.recorder().span("chase.run", "implication");
        let mut session = self.session_with(budget, trace);
        if !session.assume_goal(sigma, lhs, q) {
            session.check_exhausted()?;
            return Ok(ChaseOutcome::Implied);
        }
        // Bounded case-splitting on *blocked premises*: an FD whose LHS
        // is entirely `eq = True` but whose null-status is open can fire
        // or not depending on presence; both branches are explored. If
        // every completion contradicts, the implication holds (a sound
        // conclusion); if the budget runs out, the current consistent
        // state is returned (leaning "not implied", which the verified
        // counterexample pipeline treats as merely "unproven").
        let mut splits = self.config.split_budget;
        Ok(match Self::split_search(session, sigma, &mut splits)? {
            Some(state) => ChaseOutcome::NotImplied(state),
            None => ChaseOutcome::Implied,
        })
    }

    /// DFS over presence case-splits; returns a consistent completed
    /// state or `None` when every branch contradicts.
    fn split_search(
        session: Session<'_, 'a>,
        sigma: &[ResolvedFd],
        splits: &mut usize,
    ) -> Result<Option<Vec<PairState>>, Exhausted> {
        session.check_exhausted()?;
        let Some(pivot) = session.find_blocked_premise(sigma) else {
            return Ok(Some(session.into_state()));
        };
        if *splits == 0 {
            return Ok(Some(session.into_state()));
        }
        *splits -= 1;
        session.budget.checkpoint("chase.split")?;
        for null in [false, true] {
            let mut branch = session.clone();
            if branch.assume_null(sigma, 0, pivot, null) {
                // Exhaustion mid-saturation leaves the branch looking
                // consistent; the recursive call's entry check surfaces it.
                if let Some(state) = Self::split_search(branch, sigma, splits)? {
                    return Ok(Some(state));
                }
            } else {
                branch.check_exhausted()?;
            }
        }
        Ok(None)
    }

    /// Opens an incremental chase session with an empty state. Used by
    /// the counterexample constructor, which interleaves its inclusion
    /// decisions with rule saturation so that every consequence of a
    /// decision (e.g. an FD firing because an optional subtree was
    /// materialized) is propagated before values are assigned.
    pub fn session(&self) -> Session<'_, 'a> {
        self.session_with(UNLIMITED, None)
    }

    fn session_with<'c>(
        &'c self,
        budget: &'c Budget,
        trace: Option<Rc<RefCell<RunTrace>>>,
    ) -> Session<'c, 'a> {
        Session {
            chase: self,
            state: vec![PairState::UNKNOWN; self.paths.len()],
            queue: VecDeque::new(),
            contradiction: false,
            budget,
            exhausted: None,
            trace,
        }
    }

    /// The exclusive-disjunction group of `p` (used by the
    /// counterexample constructor).
    pub(crate) fn path_group(&self, p: PathId) -> Option<&[PathId]> {
        self.facts[p.index()]
            .group
            .map(|g| self.groups[g as usize].members.as_slice())
    }

    /// Whether `p` occurs exactly once under each parent node (required
    /// and at-most-one). The shredder keys singleton-text inlining on
    /// this — reusing the chase's structural facts keeps the relational
    /// dictionary and the implication engine on one source of truth.
    pub(crate) fn is_singleton_child(&self, p: PathId) -> bool {
        let f = &self.facts[p.index()];
        f.required && f.at_most_one
    }

    /// Snapshot of the derived per-path structural facts — `testing`-only
    /// introspection for external harnesses (the `xnf-oracle` crate checks
    /// these against a document-level enumeration). Not a stable API.
    #[cfg(feature = "testing")]
    pub fn structural_facts(&self, p: PathId) -> StructuralFacts {
        let f = &self.facts[p.index()];
        StructuralFacts {
            required: f.required,
            at_most_one: f.at_most_one,
            group: self.path_group(p).map(|g| g.to_vec()),
        }
    }
}

/// A `testing`-feature copy of the chase's per-path structural facts (see
/// [`Chase::structural_facts`]).
#[cfg(feature = "testing")]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralFacts {
    /// If the parent is non-null, this path is non-null.
    pub required: bool,
    /// At most one child with this label per parent node.
    pub at_most_one: bool,
    /// Members of this path's exclusive-disjunction group, if any.
    pub group: Option<Vec<PathId>>,
}

/// An incremental chase run: facts can be assumed one by one, each
/// followed by full saturation under the structural rules and Σ.
#[derive(Debug, Clone)]
pub struct Session<'c, 'a> {
    chase: &'c Chase<'a>,
    state: Vec<PairState>,
    queue: VecDeque<(PathId, FactKind)>,
    contradiction: bool,
    budget: &'c Budget,
    exhausted: Option<Exhausted>,
    /// Footprint accumulator for [`Chase::run_traced`]. Shared (`Rc`)
    /// across split-search branches so the trace is the *union* over the
    /// whole split tree — any branch's dependence is the run's
    /// dependence. Sessions never cross threads, so `Rc` suffices and
    /// `Chase` itself stays `Sync`.
    trace: Option<Rc<RefCell<RunTrace>>>,
}

impl<'c, 'a> Session<'c, 'a> {
    /// Whether a contradiction has been derived.
    pub fn contradiction(&self) -> bool {
        self.contradiction
    }

    /// Propagates budget exhaustion recorded during saturation. Saturation
    /// stops on the spot when the budget runs out, so `contradiction` is
    /// never set on an exhausted session — an apparently consistent state
    /// must not be trusted until this has been checked.
    pub fn check_exhausted(&self) -> Result<(), Exhausted> {
        match &self.exhausted {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// The state of path `p`.
    pub fn get(&self, p: PathId) -> PairState {
        self.state[p.index()]
    }

    /// Consumes the session, returning the per-path state.
    pub fn into_state(self) -> Vec<PairState> {
        self.state
    }

    /// Installs the standard refutation goal (Section 4 semantics): the
    /// shared non-null root, `eq` + non-null on the premise paths, and
    /// disequality on `q`; saturates. Returns `false` on contradiction
    /// (the implication holds).
    pub fn assume_goal(&mut self, sigma: &[ResolvedFd], lhs: &[PathId], q: PathId) -> bool {
        let root = self.chase.paths.root();
        self.set_eq(root, Ternary::True);
        self.set_null(0, root, Ternary::False);
        self.set_null(1, root, Ternary::False);
        for &p in lhs {
            self.set_eq(p, Ternary::True);
            self.set_null(0, p, Ternary::False);
        }
        self.set_eq(q, Ternary::False);
        self.saturate(sigma);
        !self.contradiction
    }

    /// Assumes `t₁.p = t₂.p` is `v` and saturates; `false` on
    /// contradiction.
    pub fn assume_eq(&mut self, sigma: &[ResolvedFd], p: PathId, v: bool) -> bool {
        self.set_eq(p, if v { Ternary::True } else { Ternary::False });
        self.saturate(sigma);
        !self.contradiction
    }

    /// Assumes `tᵢ.p` null-status is `v` and saturates; `false` on
    /// contradiction.
    pub fn assume_null(&mut self, sigma: &[ResolvedFd], side: usize, p: PathId, v: bool) -> bool {
        self.set_null(side, p, if v { Ternary::True } else { Ternary::False });
        self.saturate(sigma);
        !self.contradiction
    }

    /// A case-split pivot:
    ///
    /// * a *blocked premise* — some FD has its whole LHS known equal, some
    ///   RHS not yet known equal, and an LHS path of open null-status; or
    /// * an *equal element path of open presence* — `eq = True` on an
    ///   element path is the disjunction "same vertex ∨ both ⊥", and both
    ///   disjuncts have strong structural consequences (parents shared /
    ///   subtree null), so its null-status is worth splitting on.
    fn find_blocked_premise(&self, sigma: &[ResolvedFd]) -> Option<PathId> {
        for (i, fd) in sigma.iter().enumerate() {
            // Every LHS path must be *potentially dischargeable*: known
            // equal, or alignable by a zone swap. What blocks the firing
            // is then only an open null-status, which is exactly what a
            // presence split resolves.
            if !fd
                .lhs
                .iter()
                .all(|&l| self.state[l.index()].eq == Ternary::True || self.zone_root(l).is_some())
            {
                continue;
            }
            if !fd
                .rhs
                .iter()
                .any(|&r| self.state[r.index()].eq != Ternary::True)
            {
                continue;
            }
            if let Some(&b) = fd
                .lhs
                .iter()
                .find(|&&l| self.state[l.index()].n1 == Ternary::Unknown)
            {
                if let Some(t) = &self.trace {
                    let mut t = t.borrow_mut();
                    t.pivot_source[i] = true;
                    t.scan_reach = t.scan_reach.max(i + 1);
                }
                return Some(b);
            }
        }
        // The scan fell through the whole of Σ: the replay of this call
        // depends on every Σ position, so no appended FD is safe.
        if let Some(t) = &self.trace {
            t.borrow_mut().scan_reach = usize::MAX;
        }
        self.chase.paths.iter().find(|&p| {
            self.chase.paths.is_element_path(p)
                && self.state[p.index()].eq == Ternary::True
                && self.state[p.index()].n1 == Ternary::Unknown
        })
    }
}

impl Session<'_, '_> {
    fn set_null(&mut self, i: usize, p: PathId, v: Ternary) {
        debug_assert!(v.known());
        let slot = if i == 0 {
            &mut self.state[p.index()].n1
        } else {
            &mut self.state[p.index()].n2
        };
        if *slot == v {
            return;
        }
        if slot.known() {
            self.contradiction = true;
            return;
        }
        *slot = v;
        self.chase.stats.ternary_flips.bump();
        if let Some(t) = &self.trace {
            t.borrow_mut().touched[p.index()] = true;
        }
        self.queue.push_back((p, FactKind::Null(i)));
    }

    fn set_eq(&mut self, p: PathId, v: Ternary) {
        debug_assert!(v.known());
        let slot = &mut self.state[p.index()].eq;
        if *slot == v {
            return;
        }
        if slot.known() {
            self.contradiction = true;
            return;
        }
        *slot = v;
        self.chase.stats.ternary_flips.bump();
        if let Some(t) = &self.trace {
            t.borrow_mut().touched[p.index()] = true;
        }
        self.queue.push_back((p, FactKind::Eq));
    }

    fn saturate(&mut self, sigma: &[ResolvedFd]) {
        // FD rule needs re-checking when any of its LHS paths change;
        // rather than indexing, re-scan Σ whenever progress was made —
        // each FD fires at most once per RHS path, so the total work stays
        // polynomial.
        if self.exhausted.is_some() {
            return;
        }
        loop {
            while let Some((p, kind)) = self.queue.pop_front() {
                if self.contradiction {
                    return;
                }
                if let Err(e) = self.budget.checkpoint("chase.saturate.queue") {
                    self.exhausted = Some(e);
                    return;
                }
                self.apply_structural(p, kind);
            }
            if self.contradiction {
                return;
            }
            let mut progressed = false;
            for (i, fd) in sigma.iter().enumerate() {
                if let Err(e) = self.budget.checkpoint("chase.saturate.fd") {
                    self.exhausted = Some(e);
                    return;
                }
                let had_contradiction = self.contradiction;
                let fired = self.apply_fd(fd);
                progressed |= fired;
                // `apply_fd`'s direct contradiction (fully discharged
                // premise, differing conclusion) sets `contradiction`
                // without reporting progress — it fired all the same.
                if fired || (self.contradiction && !had_contradiction) {
                    if let Some(t) = &self.trace {
                        t.borrow_mut().fired[i] = true;
                    }
                }
                if self.contradiction {
                    return;
                }
            }
            if !progressed && self.queue.is_empty() {
                return;
            }
        }
    }

    /// The FD rule, in its strengthened *swap* form.
    ///
    /// Basic form — if every LHS path is known equal and non-null between
    /// `t₁` and `t₂`, then `T ⊨ Σ` forces the RHS values equal.
    ///
    /// Swap form — a premise path `l` that is *not* known equal can still
    /// be discharged: let `a` be its shallowest ancestor-or-self with
    /// `eq(a) ≠ True` (its *zone root*). `a`'s parent is a shared non-null
    /// node, and at a saturated state `a` is necessarily a repeatable
    /// letter (functional children of shared nodes get `eq = True`), so
    /// picking a child at `a` is a free choice of the maximal tuples.
    /// Define `t₃` as `t₁` with its choices inside all zones replaced by
    /// `t₂`'s. Then `t₃ ∈ tuples_D(T)`, `t₃ = t₂` on every zone and
    /// `t₃ = t₁` elsewhere; if additionally `t₂.l ≠ ⊥` for the zone
    /// premises, the FD applies to the pair `(t₃, t₂)` and forces
    /// `t₃.r = t₂.r` for the RHS. For any `r` *outside* all zones,
    /// `t₃.r = t₁.r`, hence `eq(r) = True` for the tracked pair — the
    /// cross-tuple inference a naive two-tuple chase misses (e.g.
    /// `{a.S, b} → a` with `b` a required sibling branch: pick `t₂`'s
    /// `b`).
    ///
    /// Both swap directions are tried (copying `t₂`'s zones into `t₁`
    /// needs `n₂ = False` on the zone premises, and symmetrically).
    fn apply_fd(&mut self, fd: &ResolvedFd) -> bool {
        let mut progressed = false;
        'directions: for copy_from in [1usize, 0] {
            let mut zones: Vec<PathId> = Vec::new();
            for &l in &fd.lhs {
                let s = self.state[l.index()];
                let nonnull = s.n1 == Ternary::False || s.n2 == Ternary::False;
                if s.eq == Ternary::True && nonnull {
                    continue; // directly discharged
                }
                // Swap-discharged: needs the copied side non-null and a
                // zone root strictly below the root.
                if !self.chase.config.swap_rule || s.n(copy_from) != Ternary::False {
                    continue 'directions;
                }
                let Some(zone) = self.zone_root(l) else {
                    continue 'directions;
                };
                if !zones.contains(&zone) {
                    zones.push(zone);
                }
            }
            for &r in &fd.rhs {
                if zones.iter().any(|&z| self.chase.paths.is_prefix(z, r)) {
                    continue; // conclusion lives inside a swapped zone
                }
                if self.state[r.index()].eq != Ternary::True {
                    self.set_eq(r, Ternary::True);
                    progressed = true;
                }
            }
            if zones.is_empty() {
                break; // the basic rule fired; directions coincide
            }
        }
        // Contrapositive unit rule: if every LHS path is known *equal*,
        // all but one are known non-null, and some RHS value is known to
        // *differ*, then the remaining LHS path must be null on both
        // sides — were it non-null (equal values are non-null together),
        // the FD would make the RHS equal, a contradiction.
        if self.chase.config.contrapositive_rule
            && fd
                .rhs
                .iter()
                .any(|&r| self.state[r.index()].eq == Ternary::False)
            && fd
                .lhs
                .iter()
                .all(|&l| self.state[l.index()].eq == Ternary::True)
        {
            let undecided: Vec<PathId> = fd
                .lhs
                .iter()
                .copied()
                .filter(|&l| {
                    let s = self.state[l.index()];
                    s.n1 != Ternary::False && s.n2 != Ternary::False
                })
                .collect();
            if let [b] = undecided[..] {
                if self.state[b.index()].n1 != Ternary::True {
                    self.set_null(0, b, Ternary::True);
                    progressed = true;
                }
                if self.state[b.index()].n2 != Ternary::True {
                    self.set_null(1, b, Ternary::True);
                    progressed = true;
                }
            } else if undecided.is_empty() {
                // Fully non-null equal premise with a differing RHS:
                // direct contradiction.
                self.contradiction = true;
            }
        }
        if progressed {
            self.chase.stats.rule_firings.bump();
        }
        progressed
    }

    /// The shallowest ancestor-or-self of `l` whose `eq` is not known
    /// `True`, provided it is not the root (a swap needs a shared parent
    /// to re-choose under). `None` when every ancestor is shared (then
    /// the value is functionally tied to shared nodes and cannot be
    /// aligned by re-choosing).
    fn zone_root(&self, l: PathId) -> Option<PathId> {
        let paths = self.chase.paths;
        let mut chain = Vec::new();
        let mut cur = Some(l);
        while let Some(c) = cur {
            chain.push(c);
            cur = paths.parent(c);
        }
        // chain: l … root; scan from the root end for the first non-True.
        for &a in chain.iter().rev() {
            if self.state[a.index()].eq != Ternary::True {
                return (a != paths.root()).then_some(a);
            }
        }
        None
    }

    fn apply_structural(&mut self, p: PathId, kind: FactKind) {
        let paths = self.chase.paths;
        let facts = &self.chase.facts[p.index()];
        let s = self.state[p.index()];
        match kind {
            FactKind::Null(i) => {
                match s.n(i) {
                    Ternary::False => {
                        // Non-null propagates up: t.p ≠ ⊥ requires every
                        // prefix non-null (Definition 4, condition 4).
                        if let Some(parent) = paths.parent(p) {
                            self.set_null(i, parent, Ternary::False);
                        }
                        // Exclusive group: a node's children word contains
                        // at most one letter of the group, so the other
                        // members are null in the same tuple.
                        if let Some(members) = self.chase.path_group(p) {
                            for &m in members {
                                if m != p {
                                    self.set_null(i, m, Ternary::True);
                                }
                            }
                        }
                        // Required children of a non-null element path are
                        // non-null: conformance puts ≥1 such child (or the
                        // attribute/string) on the node, and maximal
                        // tuples always pick one.
                        for &cp in paths.children_of(p) {
                            if self.chase.facts[cp.index()].required {
                                self.set_null(i, cp, Ternary::False);
                            }
                        }
                    }
                    Ternary::True => {
                        // Nulls propagate down (Definition 4).
                        for &cp in paths.children_of(p) {
                            self.set_null(i, cp, Ternary::True);
                        }
                        // A required child is present whenever its parent
                        // is; contrapositive: child null ⇒ parent null.
                        if facts.required {
                            if let Some(parent) = paths.parent(p) {
                                self.set_null(i, parent, Ternary::True);
                            }
                        }
                        // Non-nullable group with all members null forces
                        // the parent null; unit-propagate the last member.
                        if let Some(gid) = facts.group {
                            self.check_group(gid, i);
                        }
                        // ⊥ = ⊥: if both tuples are null here, the values
                        // are equal.
                        if s.n(1 - i) == Ternary::True {
                            self.set_eq(p, Ternary::True);
                        }
                        // eq = false needs at least one non-null side.
                        if s.eq == Ternary::False {
                            self.set_null(1 - i, p, Ternary::False);
                        }
                    }
                    Ternary::Unknown => unreachable!("queued facts are known"),
                }
                // Equality transfers null-status: equal values are either
                // both null or both non-null.
                if s.eq == Ternary::True {
                    if let Ternary::True | Ternary::False = self.state[p.index()].n(i) {
                        let v = self.state[p.index()].n(i);
                        self.set_null(1 - i, p, v);
                    }
                }
                // Same parent value ⇒ same child-presence: if the parent
                // values are equal (one shared node, or both ⊥), tᵢ.p and
                // tⱼ.p are null together (a maximal tuple picks a child
                // iff the node has one).
                if let Some(parent) = paths.parent(p) {
                    let ps = self.state[parent.index()];
                    if ps.eq == Ternary::True {
                        let v = self.state[p.index()].n(i);
                        if v.known() {
                            self.set_null(1 - i, p, v);
                        }
                    }
                }
                // Both null now? Then eq (⊥ = ⊥).
                let s2 = self.state[p.index()];
                if s2.n1 == Ternary::True && s2.n2 == Ternary::True {
                    self.set_eq(p, Ternary::True);
                }
                // Shared non-null element node: propagate downward
                // equality facts that were waiting on the null-status.
                self.try_eq_down(p);
                if let Some(parent) = paths.parent(p) {
                    self.try_eq_down(parent);
                }
                self.try_eq_up(p);
            }
            FactKind::Eq => {
                match s.eq {
                    Ternary::True => {
                        // Equal values: null statuses coincide.
                        for i in 0..2 {
                            let v = self.state[p.index()].n(i);
                            if v.known() {
                                self.set_null(1 - i, p, v);
                            }
                        }
                        self.try_eq_down(p);
                        self.try_eq_up(p);
                        // Equal *vertices* force equal parents; so an
                        // equal element path under a differing parent can
                        // only be ⊥ on both sides.
                        if paths.is_element_path(p) {
                            if let Some(parent) = paths.parent(p) {
                                if self.state[parent.index()].eq == Ternary::False {
                                    self.set_null(0, p, Ternary::True);
                                    self.set_null(1, p, Ternary::True);
                                }
                            }
                        }
                    }
                    Ternary::False => {
                        // Different values: not both null.
                        let s = self.state[p.index()];
                        if s.n1 == Ternary::True {
                            self.set_null(1, p, Ternary::False);
                        }
                        if s.n2 == Ternary::True {
                            self.set_null(0, p, Ternary::False);
                        }
                        // The mirror of the rule above: element children
                        // already known equal must be ⊥ on both sides.
                        let children: Vec<PathId> = paths.children_of(p).to_vec();
                        for cp in children {
                            if paths.is_element_path(cp)
                                && self.state[cp.index()].eq == Ternary::True
                            {
                                self.set_null(0, cp, Ternary::True);
                                self.set_null(1, cp, Ternary::True);
                            }
                        }
                        // Under an equal-valued parent the two sides are
                        // null together, so "different" forces both
                        // non-null (see `try_eq_down`).
                        if let Some(parent) = self.chase.paths.parent(p) {
                            if self.state[parent.index()].eq == Ternary::True {
                                self.set_null(0, p, Ternary::False);
                                self.set_null(1, p, Ternary::False);
                            }
                        }
                    }
                    Ternary::Unknown => unreachable!("queued facts are known"),
                }
            }
        }
    }

    /// Equal element-path values ⇒ their functional children coincide.
    ///
    /// Sound unconditionally: `eq(p) = True` on an element path means the
    /// two values are either both `⊥` (then every extension is `⊥ = ⊥`) or
    /// *the same vertex* — whose attributes and string content are unique,
    /// and whose unique child for a letter with `hi ≤ 1` is what any
    /// maximal tuple picks; so `t₁.p.c = t₂.p.c` (or both ⊥). Likewise,
    /// child presence is a property of the shared value, so null statuses
    /// transfer between the tuples for *every* child.
    fn try_eq_down(&mut self, p: PathId) {
        let s = self.state[p.index()];
        if !(self.chase.paths.is_element_path(p) && s.eq == Ternary::True) {
            return;
        }
        let children: Vec<PathId> = self.chase.paths.children_of(p).to_vec();
        for cp in children {
            if self.chase.facts[cp.index()].at_most_one {
                self.set_eq(cp, Ternary::True);
            }
            // Child presence is a property of the shared node.
            for i in 0..2 {
                let v = self.state[cp.index()].n(i);
                if v.known() {
                    self.set_null(1 - i, cp, v);
                }
            }
            // Case split resolved: with equal parent values, the children
            // are null together; a child known to *differ* therefore
            // cannot be null on either side (both-⊥ would be equal), and
            // the shared parent is non-null (a ⊥ parent nulls both
            // children).
            if self.state[cp.index()].eq == Ternary::False {
                self.set_null(0, cp, Ternary::False);
                self.set_null(1, cp, Ternary::False);
            }
        }
    }

    /// Equal non-null vertices have equal parents.
    ///
    /// Sound because a vertex occurs at one position in the tree: if
    /// `t₁.p` and `t₂.p` are the same vertex, their parent vertices (the
    /// values at the parent path) coincide and are non-null.
    fn try_eq_up(&mut self, p: PathId) {
        let s = self.state[p.index()];
        if !(self.chase.paths.is_element_path(p)
            && s.eq == Ternary::True
            && (s.n1 == Ternary::False || s.n2 == Ternary::False))
        {
            return;
        }
        if let Some(parent) = self.chase.paths.parent(p) {
            self.set_eq(parent, Ternary::True);
            self.set_null(0, parent, Ternary::False);
            self.set_null(1, parent, Ternary::False);
        }
    }

    /// Unit propagation for exclusive disjunction groups: with the parent
    /// non-null and a non-nullable group, exactly one member is non-null.
    fn check_group(&mut self, gid: u32, i: usize) {
        let group = &self.chase.groups[gid as usize];
        if group.nullable {
            return;
        }
        let members = group.members.clone();
        let parent = self
            .chase
            .paths
            .parent(members[0])
            .expect("group members have parents");
        if self.state[parent.index()].n(i) != Ternary::False {
            return;
        }
        let mut unknown = Vec::new();
        for &m in &members {
            match self.state[m.index()].n(i) {
                Ternary::False => return, // already satisfied
                Ternary::Unknown => unknown.push(m),
                Ternary::True => {}
            }
        }
        match unknown.len() {
            0 => self.contradiction = true, // all null, but one is required
            1 => self.set_null(i, unknown[0], Ternary::False),
            _ => {}
        }
    }
}

impl Implication for Chase<'_> {
    fn implies(&self, sigma: &[ResolvedFd], fd: &ResolvedFd) -> bool {
        matches!(self.run(sigma, fd), ChaseOutcome::Implied)
    }

    fn try_implies(&self, sigma: &[ResolvedFd], fd: &ResolvedFd) -> Result<bool, Exhausted> {
        Ok(matches!(self.try_run(sigma, fd)?, ChaseOutcome::Implied))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{XmlFd, XmlFdSet, DBLP_FDS, UNIVERSITY_FDS};
    use crate::fixtures::{dblp_dtd, university_dtd};

    fn implies(dtd: &Dtd, sigma_text: &str, fd_text: &str) -> bool {
        let paths = dtd.paths().unwrap();
        let sigma = XmlFdSet::parse(sigma_text)
            .unwrap()
            .resolve(&paths)
            .unwrap();
        let fd = XmlFd::parse(fd_text).unwrap().resolve(&paths).unwrap();
        let chase = Chase::new(dtd, &paths);
        chase.implies(&sigma, &fd)
    }

    #[test]
    fn trivial_prefix_fds() {
        // (D, ∅) ⊢ p → p' for element paths and their prefixes.
        let d = university_dtd();
        assert!(implies(
            &d,
            "",
            "courses.course.taken_by.student -> courses.course"
        ));
        assert!(implies(
            &d,
            "",
            "courses.course.taken_by.student -> courses"
        ));
        assert!(implies(&d, "", "courses.course -> courses.course"));
    }

    #[test]
    fn trivial_attribute_fds() {
        // (D, ∅) ⊢ p → p.@l.
        let d = university_dtd();
        assert!(implies(&d, "", "courses.course -> courses.course.@cno"));
        assert!(implies(
            &d,
            "",
            "courses.course.taken_by.student -> courses.course.taken_by.student.@sno"
        ));
        // …and p → p.c.S through a functional (multiplicity-one) child.
        assert!(implies(&d, "", "courses.course -> courses.course.title.S"));
    }

    #[test]
    fn attribute_does_not_determine_node_without_fds() {
        let d = university_dtd();
        assert!(!implies(&d, "", "courses.course.@cno -> courses.course"));
        assert!(!implies(
            &d,
            "",
            "courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S"
        ));
    }

    #[test]
    fn example_5_1_xnf_violation() {
        // With Σ = {FD1, FD2, FD3}: FD3 is in Σ⁺, but sno → student is NOT
        // implied — the XNF violation of Example 5.1.
        let d = university_dtd();
        assert!(implies(
            &d,
            UNIVERSITY_FDS,
            "courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S"
        ));
        assert!(!implies(
            &d,
            UNIVERSITY_FDS,
            "courses.course.taken_by.student.@sno -> courses.course.taken_by.student"
        ));
        // FD2's combination *does* determine the student node, and hence
        // the name element and its text.
        assert!(implies(
            &d,
            UNIVERSITY_FDS,
            "courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name"
        ));
        // Via FD1, cno can replace the course node on the left.
        assert!(implies(
            &d,
            UNIVERSITY_FDS,
            "courses.course.@cno, courses.course.taken_by.student.@sno -> courses.course.taken_by.student.grade.S"
        ));
    }

    #[test]
    fn example_5_2_dblp() {
        let d = dblp_dtd();
        // FD5 ∈ Σ⁺ but issue → inproceedings is not implied: the XNF
        // violation.
        assert!(implies(
            &d,
            DBLP_FDS,
            "db.conf.issue -> db.conf.issue.inproceedings.@year"
        ));
        assert!(!implies(
            &d,
            DBLP_FDS,
            "db.conf.issue -> db.conf.issue.inproceedings"
        ));
        // FD4: title.S determines the conf node, hence the conf's title
        // node too.
        assert!(implies(&d, DBLP_FDS, "db.conf.title.S -> db.conf.title"));
    }

    #[test]
    fn transitivity_through_node_equality() {
        // cno → course and course → title.S compose.
        let d = university_dtd();
        assert!(implies(
            &d,
            "courses.course.@cno -> courses.course",
            "courses.course.@cno -> courses.course.title.S"
        ));
    }

    #[test]
    fn augmentation_on_the_left() {
        let d = university_dtd();
        assert!(implies(
            &d,
            "courses.course.@cno -> courses.course.title.S",
            "courses.course.@cno, courses.course.taken_by.student.@sno -> courses.course.title.S"
        ));
    }

    #[test]
    fn root_level_content_is_fully_determined() {
        // With P(r) = (a | b) directly under the root, any two tuples
        // share the single root node, so its functional children coincide
        // in every tuple pair: *everything* is implied from nothing.
        let d = xnf_dtd::parse_dtd(
            "<!ELEMENT r (a | b)>
             <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>
             <!ATTLIST a x CDATA #REQUIRED>
             <!ATTLIST b y CDATA #REQUIRED>",
        )
        .unwrap();
        assert!(implies(&d, "", "r -> r.a"));
        assert!(implies(&d, "", "r -> r.a.@x"));
        assert!(implies(&d, "", "r.a.@x -> r.a"));
        assert!(implies(&d, "", "r.a -> r.b"));
    }

    #[test]
    fn exclusive_disjunction_under_starred_parent() {
        // P(e) = (a | b) under e*, so distinct e nodes choose
        // independently.
        let d = xnf_dtd::parse_dtd(
            "<!ELEMENT r (e*)>
             <!ELEMENT e (a | b)>
             <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>
             <!ATTLIST a x CDATA #REQUIRED>
             <!ATTLIST b y CDATA #REQUIRED>",
        )
        .unwrap();
        // Node equality on a forces the same e, whose single choice
        // excludes b: vacuously implied.
        assert!(implies(&d, "", "r.e.a -> r.e.b"));
        assert!(implies(&d, "", "r.e.a -> r.e.b.@y"));
        // Same a-node ⇒ same e-node (upward).
        assert!(implies(&d, "", "r.e.a -> r.e"));
        // But equal a-*values* on different e's imply nothing.
        assert!(!implies(&d, "", "r.e.a.@x -> r.e.a"));
        assert!(!implies(&d, "", "r.e.a.@x -> r.e"));
        // If @x is declared a key for e, the exclusion composes.
        assert!(implies(&d, "r.e.a.@x -> r.e", "r.e.a.@x -> r.e.b.@y"));
    }

    #[test]
    fn root_determines_its_functional_subtree() {
        // P(r) = (a?, b) with an attribute: r → r.b and r → r.@x are
        // trivial; r → r.a is NOT (a may be picked or absent? no — at most
        // one a child per node and one root: r → r.a IS implied since both
        // tuples share the root node).
        let d = xnf_dtd::parse_dtd(
            "<!ELEMENT r (a?, b)>
             <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>",
        )
        .unwrap();
        assert!(implies(&d, "", "r -> r.b"));
        assert!(implies(&d, "", "r -> r.a"));
    }

    #[test]
    fn starred_children_are_not_functional() {
        let d = university_dtd();
        assert!(!implies(&d, "", "courses -> courses.course"));
        assert!(!implies(
            &d,
            "",
            "courses.course.taken_by -> courses.course.taken_by.student"
        ));
    }

    #[test]
    fn multi_path_rhs_is_conjunction() {
        let d = university_dtd();
        assert!(implies(
            &d,
            "",
            "courses.course -> courses.course.@cno, courses.course.title"
        ));
        assert!(!implies(
            &d,
            "",
            "courses.course -> courses.course.@cno, courses.course.taken_by.student"
        ));
    }

    /// The three completeness rules are individually load-bearing: each
    /// case below is *implied* (verified semantically during development)
    /// and is only proven by the full chase, not by the ablated one.
    #[test]
    fn ablation_rules_are_load_bearing() {
        use crate::implication::ChaseConfig;
        let ablated = |d: &Dtd, cfg: ChaseConfig, sigma: &str, fd: &str| {
            let paths = d.paths().unwrap();
            let sigma = XmlFdSet::parse(sigma).unwrap().resolve(&paths).unwrap();
            let fd = XmlFd::parse(fd).unwrap().resolve(&paths).unwrap();
            Chase::with_config(d, &paths, cfg).implies(&sigma, &fd)
        };

        // (a) swap rule: {e2, @a0_0} → e1 under e0 = (e1*, e2+): every
        // tuple can realign its e2 choice, so @a0_0 → e1 is implied.
        let d = xnf_dtd::parse_dtd(
            "<!ELEMENT e0 (e1*, e2+)>
             <!ATTLIST e0 a0_0 CDATA #REQUIRED>
             <!ELEMENT e1 (#PCDATA)> <!ELEMENT e2 (#PCDATA)>",
        )
        .unwrap();
        let sigma = "e0.e2, e0.@a0_0 -> e0.e1";
        let fd = "e0.@a0_0 -> e0.e1";
        assert!(ablated(&d, ChaseConfig::default(), sigma, fd));
        assert!(!ablated(
            &d,
            ChaseConfig {
                swap_rule: false,
                ..ChaseConfig::default()
            },
            sigma,
            fd
        ));

        // (b) contrapositive rule: under e0=(e1); e1=(e2+); e2=(e3?);
        // e3=(e4+); e4=#PCDATA with Σ as below, @a2_0 → e4 is implied
        // because every completion of the null-status of e4.S
        // contradicts.
        let d = xnf_dtd::parse_dtd(
            "<!ELEMENT e0 (e1)>
             <!ELEMENT e1 (e2+)>
             <!ELEMENT e2 (e3?)>
             <!ATTLIST e2 a2_0 CDATA #REQUIRED>
             <!ELEMENT e3 (e4+)>
             <!ELEMENT e4 (#PCDATA)>",
        )
        .unwrap();
        let sigma = "e0.e1, e0.e1.e2.@a2_0 -> e0.e1.e2.e3.e4.S
                     e0.e1.e2.e3.e4.S -> e0.e1.e2.e3.e4";
        let fd = "e0.e1.e2.@a2_0 -> e0.e1.e2.e3.e4";
        assert!(ablated(&d, ChaseConfig::default(), sigma, fd));
        assert!(!ablated(
            &d,
            ChaseConfig {
                contrapositive_rule: false,
                split_budget: 0,
                ..ChaseConfig::default()
            },
            sigma,
            fd
        ));

        // (c) case splitting: e0=(e1?); e1=(e2?, e4*) with e1 → e1.e4:
        // @a0_0 → e4.@a4_0 is implied (e1 present ⇒ e4 functional via the
        // FD; e1 absent ⇒ both ⊥), but only a presence split sees it.
        let d = xnf_dtd::parse_dtd(
            "<!ELEMENT e0 (e1?)>
             <!ATTLIST e0 a0_0 CDATA #REQUIRED>
             <!ELEMENT e1 (e4*)>
             <!ELEMENT e4 EMPTY>
             <!ATTLIST e4 a4_0 CDATA #REQUIRED>",
        )
        .unwrap();
        let sigma = "e0.e1 -> e0.e1.e4";
        let fd = "e0.@a0_0 -> e0.e1.e4.@a4_0";
        assert!(ablated(&d, ChaseConfig::default(), sigma, fd));
        assert!(!ablated(
            &d,
            ChaseConfig {
                split_budget: 0,
                contrapositive_rule: false,
                ..ChaseConfig::default()
            },
            sigma,
            fd
        ));
    }

    #[test]
    fn non_simple_content_models_are_handled_conservatively() {
        // (a, a): the chase must not treat `a` as functional.
        let d = xnf_dtd::parse_dtd(
            "<!ELEMENT r (a, a)>
             <!ELEMENT a EMPTY>
             <!ATTLIST a v CDATA #REQUIRED>",
        )
        .unwrap();
        assert!(!implies(&d, "", "r -> r.a"));
        // But `a` is required: r.a is non-null whenever r is, so r → r.a
        // would need node equality, which two a-children refute; the
        // vacuous direction a → r still holds upward.
        assert!(implies(&d, "", "r.a -> r"));
    }

    #[test]
    fn governed_chase_agrees_with_ungoverned() {
        // A generous finite budget must not perturb a single verdict.
        for (dtd, fds) in [(university_dtd(), UNIVERSITY_FDS), (dblp_dtd(), DBLP_FDS)] {
            let paths = dtd.paths().unwrap();
            let sigma = XmlFdSet::parse(fds).unwrap().resolve(&paths).unwrap();
            let plain = Chase::new(&dtd, &paths);
            let governed =
                Chase::new(&dtd, &paths).with_budget(Budget::builder().fuel(10_000_000).build());
            for fd in &sigma {
                assert_eq!(
                    governed.try_implies(&sigma, fd).unwrap(),
                    plain.implies(&sigma, fd)
                );
                assert_eq!(governed.try_is_trivial(fd).unwrap(), plain.is_trivial(fd));
            }
        }
    }

    #[test]
    fn governed_chase_exhausts_on_tiny_fuel() {
        let dtd = university_dtd();
        let paths = dtd.paths().unwrap();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS)
            .unwrap()
            .resolve(&paths)
            .unwrap();
        let chase = Chase::new(&dtd, &paths).with_budget(Budget::builder().fuel(3).build());
        let err = chase.try_implies(&sigma, &sigma[0]).unwrap_err();
        assert_eq!(err.resource, xnf_govern::Resource::Fuel);
        // The infallible entry point stays ungoverned by contract.
        assert!(chase.implies(&sigma, &sigma[0]));
    }

    #[test]
    fn governed_chase_observes_cancellation() {
        let dtd = university_dtd();
        let paths = dtd.paths().unwrap();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS)
            .unwrap()
            .resolve(&paths)
            .unwrap();
        let budget = Budget::builder().fuel(u64::MAX).build();
        budget.cancel();
        let chase = Chase::new(&dtd, &paths).with_budget(budget);
        let err = chase.try_implies(&sigma, &sigma[0]).unwrap_err();
        assert_eq!(err.resource, xnf_govern::Resource::Cancelled);
    }
}
