//! Incremental re-checking of implication verdicts under `(D, Σ)` edits.
//!
//! The normalization workflow repeatedly asks `(D, Σ) ⊢ φ` for slowly
//! drifting specs: an editor tweaks one element declaration, adds one FD,
//! drops another — and the tooling re-validates the whole constraint set.
//! Re-chasing every query from scratch discards the dominant invariant of
//! such edits: most chase runs never *looked at* the part of the spec
//! that changed. [`IncrementalCache`] makes that observation precise and
//! exact, using the [`RunTrace`] footprint recorded by
//! [`Chase::run_traced`].
//!
//! # Exact-transfer argument
//!
//! The chase is deterministic: given the same `paths(D)` (same BFS
//! order), the same Σ in the same order, and the same query, it performs
//! the identical sequence of derivations. A cached verdict therefore
//! transfers to an edited spec iff the edit cannot alter any decision
//! the original run took. The decisions read three kinds of data, each
//! covered by one trace field and one transfer rule:
//!
//! * **Path states.** Every derivation reads per-path ternary facts.
//!   Paths the run never set ([`RunTrace::touched`] false) were read —
//!   if at all — as `Unknown`, and every rule predicate tolerates
//!   `Unknown` conservatively. A DTD edit is summarized by its *changed
//!   element set* (added, removed, or redeclared element types, plus the
//!   root on a root change); a path is *dirty* iff it walks through a
//!   changed element. Dirty paths may appear, disappear, or change BFS
//!   position — but a kept entry's touched paths are all clean, so they
//!   all still exist, and the relative BFS order of clean paths is
//!   preserved (within one level, sibling order comes from the parent's
//!   unchanged declaration; across levels, order is depth-first by the
//!   parents' order, inductively clean). New or dirty paths enter scans
//!   only through `Unknown`-rejecting predicates, so they are skipped
//!   exactly like the old run skipped untouched paths.
//! * **Σ rule applications.** Saturation applies the FDs in canonical
//!   order; the trace marks the ones that ever made progress
//!   ([`RunTrace::fired`]). A never-fired FD was a state-preserving
//!   no-op at every application, so *removing* it leaves the derivation
//!   sequence intact — but only if it also never served as a case-split
//!   pivot ([`RunTrace::pivot_source`]), and only if the surviving FDs
//!   keep their relative canonical order (applying the same no-ops and
//!   firings against *permuted* intermediate states is not a replay; on
//!   an order flip the cache flushes wholesale). An *added* FD whose LHS
//!   paths were all untouched can never fire (the basic, swap and
//!   contrapositive forms each require a known LHS fact), so it is a
//!   saturation no-op too.
//! * **Pivot scans.** `find_blocked_premise` scans a *prefix* of Σ and
//!   may select a pivot from an FD that never fired — an added FD with
//!   untouched LHS can still be chosen (its untouched premises have open
//!   null-status, and zone dischargeability does not require touched
//!   state). [`RunTrace::scan_reach`] bounds every scan: an added FD
//!   whose canonical position lies strictly *after* the deepest examined
//!   old FD is never reached by any replayed scan. When some scan fell
//!   through all of Σ (`scan_reach == usize::MAX`), no insertion
//!   position is safe and any Σ addition invalidates the entry.
//!
//! A kept entry is thus replayed *literally* by the edited spec: same
//! derivations, same split tree, same verdict — which is what the
//! `incremental == from-scratch` differential suite
//! (`tests/differential_incremental.rs`) checks byte-for-byte, and what
//! experiment E21 measures the speedup of.

use crate::fd::{ResolvedFd, XmlFd, XmlFdSet};
use crate::implication::chase::{Chase, ChaseOutcome, RunTrace};
use crate::Result;
use std::collections::{BTreeMap, BTreeSet};
use xnf_dtd::{Dtd, Path, PathSet, Step};
use xnf_govern::Budget;

/// A DTD edit: the new DTD plus the names of the element types that
/// differ from the old one (added, removed, content or attribute-list
/// redeclared — attribute order included — plus both root names on a
/// root change).
#[derive(Debug, Clone)]
pub struct DtdDelta {
    /// The edited DTD.
    pub new: Dtd,
    /// Element type names whose declaration differs between old and new.
    pub changed: BTreeSet<Box<str>>,
}

impl DtdDelta {
    /// Diffs two DTDs into a delta carrying `new`.
    pub fn between(old: &Dtd, new: &Dtd) -> DtdDelta {
        let mut changed: BTreeSet<Box<str>> = BTreeSet::new();
        let decl_of = |dtd: &Dtd, name: &str| -> Option<(xnf_dtd::ContentModel, Vec<String>)> {
            let id = dtd.elem_id(name)?;
            Some((
                dtd.content(id).clone(),
                dtd.attrs(id).map(str::to_string).collect(),
            ))
        };
        for dtd in [old, new] {
            for id in dtd.elements() {
                let name = dtd.name(id);
                if changed.contains(name) {
                    continue;
                }
                if decl_of(old, name) != decl_of(new, name) {
                    changed.insert(name.into());
                }
            }
        }
        if old.root_name() != new.root_name() {
            changed.insert(old.root_name().into());
            changed.insert(new.root_name().into());
        }
        DtdDelta {
            new: new.clone(),
            changed,
        }
    }

    /// The identity delta (no declaration changed).
    pub fn unchanged(dtd: &Dtd) -> DtdDelta {
        DtdDelta {
            new: dtd.clone(),
            changed: BTreeSet::new(),
        }
    }
}

/// A Σ edit: the new FD set plus the FDs added and removed relative to
/// the old one (as written; canonicalization happens at resolution).
#[derive(Debug, Clone)]
pub struct SigmaDelta {
    /// The edited FD set.
    pub new: XmlFdSet,
    /// FDs present in `new` but not in the old set.
    pub added: Vec<XmlFd>,
    /// FDs present in the old set but not in `new`.
    pub removed: Vec<XmlFd>,
}

impl SigmaDelta {
    /// Diffs two FD sets into a delta carrying `new`.
    pub fn between(old: &XmlFdSet, new: &XmlFdSet) -> SigmaDelta {
        let old_set: BTreeSet<&XmlFd> = old.iter().collect();
        let new_set: BTreeSet<&XmlFd> = new.iter().collect();
        SigmaDelta {
            new: new.clone(),
            added: new
                .iter()
                .filter(|f| !old_set.contains(f))
                .cloned()
                .collect(),
            removed: old
                .iter()
                .filter(|f| !new_set.contains(f))
                .cloned()
                .collect(),
        }
    }

    /// The identity delta (same FD set).
    pub fn unchanged(sigma: &XmlFdSet) -> SigmaDelta {
        SigmaDelta {
            new: sigma.clone(),
            added: Vec::new(),
            removed: Vec::new(),
        }
    }
}

/// What [`IncrementalCache::apply_delta`] did to the cached entries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvalidationReport {
    /// Entries whose verdict (and trace) transferred to the new spec.
    pub kept: usize,
    /// Entries invalidated; the next lookup re-chases them.
    pub invalidated: usize,
    /// Canonical Σ entries added by the delta.
    pub sigma_added: usize,
    /// Canonical Σ entries removed by the delta.
    pub sigma_removed: usize,
    /// Element types whose declaration changed.
    pub dtd_changed: usize,
    /// The surviving Σ entries changed relative canonical order, which
    /// voids every replay: the whole cache was flushed.
    pub order_flush: bool,
}

/// One cached verdict plus the trace justifying its transfer.
#[derive(Debug, Clone)]
struct Entry {
    implied: bool,
    /// Owned paths the run touched — path-*name* keyed (not `PathId`),
    /// so the set survives DTD edits that renumber the BFS interning.
    touched: BTreeSet<Path>,
    /// Per canonical Σ index of the *current* spec.
    fired: Vec<bool>,
    pivot_source: Vec<bool>,
    scan_reach: usize,
}

/// A memoizing implication oracle that survives `(D, Σ)` edits.
///
/// Verdicts are cached per query FD together with their [`RunTrace`];
/// [`IncrementalCache::apply_delta`] keeps exactly the entries whose
/// recorded footprint is disjoint from the edit (see the module docs for
/// the soundness argument) and invalidates the rest, which re-chase
/// lazily on their next lookup. An edit sequence whose steps touch small
/// parts of the spec therefore re-pays only for the queries that could
/// have changed — the from-scratch baseline re-pays for all of them
/// (experiment E21).
///
/// Unlike [`ImplicationCache`](crate::implication::ImplicationCache)
/// (borrowing, single-spec, `Sync`), this cache *owns* its spec and is
/// single-threaded; the two compose — the sharded search uses the former
/// within one spec, this one carries verdicts across specs.
#[derive(Debug)]
pub struct IncrementalCache {
    dtd: Dtd,
    sigma: XmlFdSet,
    budget: Budget,
    entries: BTreeMap<XmlFd, Entry>,
    /// Canonical `XmlFd` forms of `sigma`, in canonical (resolved)
    /// order — the index space the entries' `fired`/`pivot_source`
    /// vectors live in. Memoized so `apply_delta` only canonicalizes
    /// the *new* side of an edit; `None` until first computed.
    canon: Option<Vec<XmlFd>>,
    /// The enumerated paths of `dtd` and the resolved form of `sigma`,
    /// memoized across `apply_delta` → `implies_all` round trips so an
    /// edit step pays path enumeration and Σ resolution once, not twice.
    prepared: Option<(PathSet, Vec<ResolvedFd>)>,
}

impl IncrementalCache {
    /// An empty cache for `(dtd, sigma)` with an unlimited budget.
    pub fn new(dtd: Dtd, sigma: XmlFdSet) -> IncrementalCache {
        IncrementalCache {
            dtd,
            sigma,
            budget: Budget::unlimited(),
            entries: BTreeMap::new(),
            canon: None,
            prepared: None,
        }
    }

    /// Installs a resource [`Budget`]: lookups charge `cache.lookup` and
    /// delta application charges `cache.invalidate` per entry, surfacing
    /// [`CoreError::Exhausted`](crate::CoreError) instead of partial
    /// state (an erroring `apply_delta` leaves the cache unchanged and
    /// still consistent with the *old* spec).
    pub fn with_budget(mut self, budget: Budget) -> IncrementalCache {
        self.budget = budget;
        self
    }

    /// The current DTD.
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// The current FD set.
    pub fn sigma(&self) -> &XmlFdSet {
        &self.sigma
    }

    /// The number of cached verdicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no verdicts are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `(D, Σ) ⊢ fd`, served from cache when possible.
    pub fn implies(&mut self, fd: &XmlFd) -> Result<bool> {
        Ok(self.implies_all(std::slice::from_ref(fd))?[0])
    }

    /// Batch [`IncrementalCache::implies`]: hits are served without
    /// building a chase engine at all — an all-hit batch (the typical
    /// post-`apply_delta` re-check of an edit that missed everything)
    /// does zero chase work.
    pub fn implies_all(&mut self, fds: &[XmlFd]) -> Result<Vec<bool>> {
        self.budget.checkpoint("cache.lookup")?;
        if fds.iter().any(|f| !self.entries.contains_key(f)) {
            if self.prepared.is_none() {
                let paths = self.dtd.paths()?;
                let resolved = self.sigma.resolve(&paths)?;
                self.prepared = Some((paths, resolved));
            }
            let (paths, sigma) = self.prepared.as_ref().expect("just prepared");
            if self.canon.is_none() {
                self.canon = Some(sigma.iter().map(|r| r.to_fd(paths)).collect());
            }
            let chase = Chase::new(&self.dtd, paths);
            let mut fresh: Vec<(XmlFd, Entry)> = Vec::new();
            for fd in fds {
                if self.entries.contains_key(fd) || fresh.iter().any(|(k, _)| k == fd) {
                    continue;
                }
                self.budget.checkpoint("cache.lookup")?;
                let resolved = fd.resolve(paths)?;
                let (outcome, trace) = chase.run_traced(sigma, &resolved);
                fresh.push((fd.clone(), Entry::from_trace(outcome, trace, paths)));
            }
            for (fd, entry) in fresh {
                self.entries.insert(fd, entry);
            }
        }
        Ok(fds.iter().map(|f| self.entries[f].implied).collect())
    }

    /// Applies a `(D, Σ)` edit: transfers every cached verdict whose
    /// recorded footprint the edit provably cannot have altered,
    /// invalidates the rest, and swaps in the new spec.
    ///
    /// The change sets are recomputed here against the cache's *own*
    /// current spec (the deltas' `changed`/`added`/`removed` fields are
    /// informational), so a stale delta degrades to extra invalidation,
    /// never to a wrong transfer. Queries or FDs of the new Σ that do
    /// not resolve against the new DTD's paths are an error; entries
    /// whose *query* no longer resolves are simply dropped.
    pub fn apply_delta(
        &mut self,
        dtd_delta: &DtdDelta,
        sigma_delta: &SigmaDelta,
    ) -> Result<InvalidationReport> {
        let changed = DtdDelta::between(&self.dtd, &dtd_delta.new).changed;
        let new_paths = dtd_delta.new.paths()?;
        let new_resolved = sigma_delta.new.resolve(&new_paths)?;
        // Canonical Σ sequences, keyed by their path-space-independent
        // (hence comparable across the edit) `XmlFd` forms. The old side
        // is usually memoized from the previous edit or fill.
        let computed_old: Vec<XmlFd>;
        let old_fds: &[XmlFd] = match &self.canon {
            Some(c) => c,
            None => {
                let old_paths = self.dtd.paths()?;
                let old_resolved = self.sigma.resolve(&old_paths)?;
                computed_old = old_resolved.iter().map(|r| r.to_fd(&old_paths)).collect();
                &computed_old
            }
        };
        let new_fds: Vec<XmlFd> = new_resolved.iter().map(|r| r.to_fd(&new_paths)).collect();
        let new_index: BTreeMap<&XmlFd, usize> =
            new_fds.iter().enumerate().map(|(i, f)| (f, i)).collect();
        let old_to_new: Vec<Option<usize>> =
            old_fds.iter().map(|f| new_index.get(f).copied()).collect();
        let survivors: Vec<usize> = old_to_new.iter().flatten().copied().collect();
        let order_ok = survivors.windows(2).all(|w| w[0] < w[1]);
        let old_set: BTreeSet<&XmlFd> = old_fds.iter().collect();
        let added: Vec<usize> = new_fds
            .iter()
            .enumerate()
            .filter(|(_, f)| !old_set.contains(f))
            .map(|(i, _)| i)
            .collect();
        // Entry-independent views of the Σ edit, hoisted out of the
        // per-entry decide loop: the removed canonical indices, and
        // whether the canonical sequence is unchanged outright (the
        // common DTD-only edit), in which case the entries' Σ-indexed
        // vectors transfer verbatim.
        let removed_idx: Vec<usize> = old_to_new
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_none())
            .map(|(j, _)| j)
            .collect();
        let sigma_identity = old_fds == new_fds.as_slice();
        let dirty = |p: &Path| {
            p.steps()
                .iter()
                .any(|s| matches!(s, Step::Elem(n) if changed.contains(n)))
        };

        let mut report = InvalidationReport {
            sigma_added: added.len(),
            sigma_removed: old_to_new.iter().filter(|n| n.is_none()).count(),
            dtd_changed: changed.len(),
            order_flush: !order_ok,
            ..InvalidationReport::default()
        };
        // Decide first (fallible), mutate after: an exhausted budget
        // leaves the cache untouched and consistent with the old spec.
        let mut decisions: Vec<bool> = Vec::with_capacity(self.entries.len());
        for (query, entry) in &self.entries {
            self.budget.checkpoint("cache.invalidate")?;
            let _span = self
                .budget
                .recorder()
                .span("cache.invalidate", "implication");
            // A query whose every path is clean provably still
            // resolves (each element along it keeps its declaration,
            // so the parent-child chain survives the edit); only dirty
            // queries pay the resolution probe.
            let query_ok = query.lhs().iter().chain(query.rhs()).all(|p| !dirty(p))
                || query.resolve(&new_paths).is_ok();
            let keep = order_ok
                && query_ok
                && entry.touched.iter().all(|p| !dirty(p))
                && removed_idx
                    .iter()
                    .all(|&j| !entry.fired[j] && !entry.pivot_source[j])
                && added.iter().all(|&k| {
                    new_fds[k].lhs().iter().all(|p| !entry.touched.contains(p))
                        && entry.scan_reach != usize::MAX
                        && (entry.scan_reach == 0
                            || matches!(old_to_new[entry.scan_reach - 1], Some(d) if k > d))
                });
            decisions.push(keep);
        }
        // Infallible from here on. Kept entries move (footprints are
        // reused, not cloned); only their Σ-indexed vectors are rebuilt
        // in the new canonical index space.
        let old_entries = std::mem::take(&mut self.entries);
        for ((query, mut entry), keep) in old_entries.into_iter().zip(decisions) {
            if !keep {
                report.invalidated += 1;
                continue;
            }
            if !sigma_identity {
                let mut fired = vec![false; new_fds.len()];
                let mut pivot_source = vec![false; new_fds.len()];
                for (j, &ni) in old_to_new.iter().enumerate() {
                    if let Some(ni) = ni {
                        fired[ni] = entry.fired[j];
                        pivot_source[ni] = entry.pivot_source[j];
                    }
                }
                entry.scan_reach = match entry.scan_reach {
                    0 => 0,
                    usize::MAX => usize::MAX,
                    r => match old_to_new[r - 1] {
                        Some(d) => d + 1,
                        None => unreachable!("a removed pivot source invalidates"),
                    },
                };
                entry.fired = fired;
                entry.pivot_source = pivot_source;
            }
            self.entries.insert(query, entry);
            report.kept += 1;
        }
        self.dtd = dtd_delta.new.clone();
        self.sigma = sigma_delta.new.clone();
        self.canon = Some(new_fds);
        self.prepared = Some((new_paths, new_resolved));
        Ok(report)
    }
}

impl Entry {
    fn from_trace(outcome: ChaseOutcome, trace: RunTrace, paths: &PathSet) -> Entry {
        Entry {
            implied: matches!(outcome, ChaseOutcome::Implied),
            touched: paths
                .iter()
                .filter(|p| trace.touched[p.index()])
                .map(|p| paths.path(p))
                .collect(),
            fired: trace.fired,
            pivot_source: trace.pivot_source,
            scan_reach: trace.scan_reach,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{DBLP_FDS, UNIVERSITY_FDS};
    use crate::fixtures::{dblp_dtd, university_dtd};

    /// Every value path of Σ as a `S → parent(q)` query — the shape the
    /// anomalous-FD search asks.
    fn queries(sigma: &XmlFdSet) -> Vec<XmlFd> {
        let mut out = Vec::new();
        for fd in sigma.iter() {
            for q in fd.rhs() {
                out.push(XmlFd::new(fd.lhs().to_vec(), vec![q.clone()]).unwrap());
                if let Some(parent) = q.parent() {
                    out.push(XmlFd::new(fd.lhs().to_vec(), vec![parent]).unwrap());
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn from_scratch(dtd: &Dtd, sigma: &XmlFdSet, fds: &[XmlFd]) -> Vec<bool> {
        let paths = dtd.paths().unwrap();
        let resolved = sigma.resolve(&paths).unwrap();
        let chase = Chase::new(dtd, &paths);
        fds.iter()
            .map(|f| {
                use crate::implication::Implication;
                chase.implies(&resolved, &f.resolve(&paths).unwrap())
            })
            .collect()
    }

    #[test]
    fn agrees_with_from_scratch_on_first_fill() {
        for (dtd, fds) in [(university_dtd(), UNIVERSITY_FDS), (dblp_dtd(), DBLP_FDS)] {
            let sigma = XmlFdSet::parse(fds).unwrap();
            let qs = queries(&sigma);
            let mut cache = IncrementalCache::new(dtd.clone(), sigma.clone());
            assert_eq!(
                cache.implies_all(&qs).unwrap(),
                from_scratch(&dtd, &sigma, &qs)
            );
            // Second pass is all hits and identical.
            assert_eq!(
                cache.implies_all(&qs).unwrap(),
                from_scratch(&dtd, &sigma, &qs)
            );
        }
    }

    #[test]
    fn sigma_removal_transfers_and_stays_exact() {
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let qs = queries(&sigma);
        let mut cache = IncrementalCache::new(dtd.clone(), sigma.clone());
        cache.implies_all(&qs).unwrap();
        // Drop the last FD.
        let reduced = XmlFdSet::from_fds(sigma.iter().take(sigma.len() - 1).cloned());
        let report = cache
            .apply_delta(
                &DtdDelta::unchanged(&dtd),
                &SigmaDelta::between(&sigma, &reduced),
            )
            .unwrap();
        assert_eq!(report.kept + report.invalidated, qs.len());
        assert_eq!(
            cache.implies_all(&qs).unwrap(),
            from_scratch(&dtd, &reduced, &qs)
        );
    }

    #[test]
    fn sigma_addition_transfers_and_stays_exact() {
        let dtd = university_dtd();
        let base = XmlFdSet::parse(
            "courses.course.@cno -> courses.course
             courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student",
        )
        .unwrap();
        let qs = queries(&XmlFdSet::parse(UNIVERSITY_FDS).unwrap());
        let mut cache = IncrementalCache::new(dtd.clone(), base.clone());
        cache.implies_all(&qs).unwrap();
        let extended = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        cache
            .apply_delta(
                &DtdDelta::unchanged(&dtd),
                &SigmaDelta::between(&base, &extended),
            )
            .unwrap();
        assert_eq!(
            cache.implies_all(&qs).unwrap(),
            from_scratch(&dtd, &extended, &qs)
        );
    }

    #[test]
    fn dtd_edit_transfers_and_stays_exact() {
        // Redeclare an element *off* the FDs' fragment: title gains an
        // attribute. Entries whose runs never touched title paths keep.
        let old = university_dtd();
        let new = xnf_dtd::parse_dtd(
            "<!ELEMENT courses (course*)>
             <!ELEMENT course (title, taken_by)>
             <!ATTLIST course cno CDATA #REQUIRED>
             <!ELEMENT title (#PCDATA)>
             <!ATTLIST title lang CDATA #REQUIRED>
             <!ELEMENT taken_by (student*)>
             <!ELEMENT student (name, grade)>
             <!ATTLIST student sno CDATA #REQUIRED>
             <!ELEMENT name (#PCDATA)>
             <!ELEMENT grade (#PCDATA)>",
        )
        .unwrap();
        let sigma = XmlFdSet::parse(
            "courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student",
        )
        .unwrap();
        let qs = queries(&sigma);
        let mut cache = IncrementalCache::new(old.clone(), sigma.clone());
        cache.implies_all(&qs).unwrap();
        let delta = DtdDelta::between(&old, &new);
        assert_eq!(delta.changed, BTreeSet::from(["title".into()]));
        cache
            .apply_delta(&delta, &SigmaDelta::unchanged(&sigma))
            .unwrap();
        assert_eq!(
            cache.implies_all(&qs).unwrap(),
            from_scratch(&new, &sigma, &qs)
        );
    }

    #[test]
    fn stale_delta_cannot_poison_the_cache() {
        // A delta constructed against the wrong baseline: apply_delta
        // recomputes the change sets itself, so verdicts stay exact.
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let qs = queries(&sigma);
        let mut cache = IncrementalCache::new(dtd.clone(), sigma.clone());
        cache.implies_all(&qs).unwrap();
        let reduced = XmlFdSet::from_fds(sigma.iter().skip(1).cloned());
        // Lie: claim nothing was added or removed.
        let stale = SigmaDelta {
            new: reduced.clone(),
            added: Vec::new(),
            removed: Vec::new(),
        };
        cache
            .apply_delta(&DtdDelta::unchanged(&dtd), &stale)
            .unwrap();
        assert_eq!(
            cache.implies_all(&qs).unwrap(),
            from_scratch(&dtd, &reduced, &qs)
        );
    }

    #[test]
    fn exhausted_apply_delta_leaves_the_cache_usable() {
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let qs = queries(&sigma);
        let reduced = XmlFdSet::from_fds(sigma.iter().take(1).cloned());
        let mut starved = IncrementalCache::new(dtd.clone(), sigma.clone());
        starved.implies_all(&qs).unwrap();
        starved.budget = Budget::builder().fuel(0).build();
        assert!(starved
            .apply_delta(
                &DtdDelta::unchanged(&dtd),
                &SigmaDelta::between(&sigma, &reduced)
            )
            .is_err());
        // Old spec still answers exactly.
        starved.budget = Budget::unlimited();
        assert_eq!(
            starved.implies_all(&qs).unwrap(),
            from_scratch(&dtd, &sigma, &qs)
        );
    }
}
