//! Incremental re-checking of implication verdicts under `(D, Σ)` edits.
//!
//! The normalization workflow repeatedly asks `(D, Σ) ⊢ φ` for slowly
//! drifting specs: an editor tweaks one element declaration, adds one FD,
//! drops another — and the tooling re-validates the whole constraint set.
//! Re-chasing every query from scratch discards the dominant invariant of
//! such edits: most chase runs never *looked at* the part of the spec
//! that changed. [`IncrementalCache`] makes that observation precise and
//! exact, using the [`RunTrace`] footprint recorded by
//! [`Chase::run_traced`].
//!
//! # Exact-transfer argument
//!
//! The chase is deterministic: given the same `paths(D)` (same BFS
//! order), the same Σ in the same order, and the same query, it performs
//! the identical sequence of derivations. A cached verdict therefore
//! transfers to an edited spec iff the edit cannot alter any decision
//! the original run took. The decisions read three kinds of data, each
//! covered by one trace field and one transfer rule:
//!
//! * **Path states.** Every derivation reads per-path ternary facts.
//!   Paths the run never set ([`RunTrace::touched`] false) were read —
//!   if at all — as `Unknown`, and every rule predicate tolerates
//!   `Unknown` conservatively. A DTD edit is summarized at two
//!   granularities (see [`DtdDelta`]): a *changed element set* (added,
//!   removed, content-redeclared or attribute-reordered element types,
//!   plus the root on a root change), which dirties every path walking
//!   through such an element, and a per-element *added/removed attribute
//!   set* for pure attribute-list edits, which dirties only the affected
//!   attribute paths themselves (the element's structure — hence every
//!   other path's existence and relative BFS position — is unchanged,
//!   and an attribute coordinate referenced by no clean query, FD or
//!   touched path only ever receives dead-end structural null-facts).
//!   Dirty paths may appear, disappear, or change BFS
//!   position — but a kept entry's touched paths are all clean, so they
//!   all still exist, and the relative BFS order of clean paths is
//!   preserved (within one level, sibling order comes from the parent's
//!   unchanged declaration; across levels, order is depth-first by the
//!   parents' order, inductively clean). New or dirty paths enter scans
//!   only through `Unknown`-rejecting predicates, so they are skipped
//!   exactly like the old run skipped untouched paths.
//! * **Σ rule applications.** Saturation applies the FDs in canonical
//!   order; the trace marks the ones that ever made progress
//!   ([`RunTrace::fired`]). A never-fired FD was a state-preserving
//!   no-op at every application, so *removing* it leaves the derivation
//!   sequence intact — but only if it also never served as a case-split
//!   pivot ([`RunTrace::pivot_source`]), and only if the surviving FDs
//!   keep their relative canonical order (applying the same no-ops and
//!   firings against *permuted* intermediate states is not a replay; on
//!   an order flip the cache flushes wholesale). An *added* FD whose LHS
//!   paths were all untouched can never fire (the basic, swap and
//!   contrapositive forms each require a known LHS fact), so it is a
//!   saturation no-op too.
//! * **Pivot scans.** `find_blocked_premise` scans a *prefix* of Σ and
//!   may select a pivot from an FD that never fired — an added FD with
//!   untouched LHS can still be chosen (its untouched premises have open
//!   null-status, and zone dischargeability does not require touched
//!   state). [`RunTrace::scan_reach`] bounds every scan: an added FD
//!   whose canonical position lies strictly *after* the deepest examined
//!   old FD is never reached by any replayed scan. When some scan fell
//!   through all of Σ (`scan_reach == usize::MAX`), no insertion
//!   position is safe and any Σ addition invalidates the entry.
//!
//! A kept entry is thus replayed *literally* by the edited spec: same
//! derivations, same split tree, same verdict — which is what the
//! `incremental == from-scratch` differential suite
//! (`tests/differential_incremental.rs`) checks byte-for-byte, and what
//! experiment E21 measures the speedup of.
//!
//! # Monotone-transfer argument
//!
//! The replay argument is trace-based and therefore conservative: a
//! *not-implied* verdict whose refuting run fired (or pivoted on) a
//! removed FD is invalidated even though the verdict provably cannot
//! flip. Implication is monotone in Σ — a counterexample tree for
//! `(D, Σ) ⊬ φ` satisfies every FD of Σ, hence every FD of any
//! Σ′ ⊆ Σ, so it refutes `(D, Σ′) ⊢ φ` too. The same counterexample
//! survives a pure attribute-granularity DTD edit (`changed` empty)
//! when neither φ nor the surviving Σ mentions an edited attribute:
//! removed attribute coordinates are simply projected away, added ones
//! are populated with fresh per-vertex values no FD or query observes.
//! [`IncrementalCache::apply_delta`] therefore keeps every not-implied
//! entry across a removal-only Σ edit combined with an
//! attribute-granularity DTD edit, *regardless of its trace*. Such an
//! entry's trace no longer describes a run under the current spec, so
//! it is marked semantic-only: future edits can keep it through the
//! monotone rule again, but never through trace replay.

use crate::fd::{ResolvedFd, XmlFd, XmlFdSet};
use crate::implication::chase::{Chase, ChaseOutcome, RunTrace};
use crate::Result;
use std::collections::{BTreeMap, BTreeSet};
use xnf_dtd::{Dtd, Path, PathSet, Step};
use xnf_govern::Budget;

/// A DTD edit: the new DTD plus a two-granularity summary of what
/// differs from the old one.
///
/// `changed` names the element types whose *structure* differs — added,
/// removed, content-model redeclared, attribute list *reordered*, plus
/// both root names on a root change. A path through such an element may
/// appear, disappear, or change BFS position, so it dirties everything
/// it prefixes.
///
/// A pure attribute-list edit that only *adds or removes* attributes
/// (surviving attributes keeping their relative order — the shape every
/// move-attribute normalization step has) is recorded per attribute in
/// `attrs_changed` instead: only the added/removed attribute paths
/// themselves are dirty. The element keeps its content model, so its
/// element path, its descendants and its untouched sibling attributes
/// all survive with their relative BFS order intact, and chase runs
/// that never wrote those attribute coordinates replay literally (an
/// unreferenced attribute coordinate only ever receives structural
/// null-facts propagated from its parent, which no surviving read
/// depends on).
#[derive(Debug, Clone)]
pub struct DtdDelta {
    /// The edited DTD.
    pub new: Dtd,
    /// Element type names whose structure differs between old and new.
    pub changed: BTreeSet<Box<str>>,
    /// Per element type: attribute names added or removed by a pure
    /// attribute-list edit (element structure otherwise unchanged).
    pub attrs_changed: BTreeMap<Box<str>, BTreeSet<Box<str>>>,
}

impl DtdDelta {
    /// Diffs two DTDs into a delta carrying `new`.
    pub fn between(old: &Dtd, new: &Dtd) -> DtdDelta {
        let mut changed: BTreeSet<Box<str>> = BTreeSet::new();
        let mut attrs_changed: BTreeMap<Box<str>, BTreeSet<Box<str>>> = BTreeMap::new();
        for dtd in [old, new] {
            for id in dtd.elements() {
                let name = dtd.name(id);
                if changed.contains(name) || attrs_changed.contains_key(name) {
                    continue;
                }
                let (Some(old_id), Some(new_id)) = (old.elem_id(name), new.elem_id(name)) else {
                    changed.insert(name.into());
                    continue;
                };
                if old.content(old_id) != new.content(new_id) {
                    changed.insert(name.into());
                    continue;
                }
                let old_attrs: Vec<&str> = old.attrs(old_id).collect();
                let new_attrs: Vec<&str> = new.attrs(new_id).collect();
                if old_attrs == new_attrs {
                    continue;
                }
                // Pure add/remove keeps the survivors' relative order
                // (each list filtered to the common set must agree);
                // anything else — a reorder — is a structural change.
                let old_set: BTreeSet<&str> = old_attrs.iter().copied().collect();
                let new_set: BTreeSet<&str> = new_attrs.iter().copied().collect();
                let order_kept = old_attrs
                    .iter()
                    .filter(|a| new_set.contains(*a))
                    .eq(new_attrs.iter().filter(|a| old_set.contains(*a)));
                if order_kept {
                    attrs_changed.insert(
                        name.into(),
                        old_set
                            .symmetric_difference(&new_set)
                            .map(|a| Box::from(*a))
                            .collect(),
                    );
                } else {
                    changed.insert(name.into());
                }
            }
        }
        if old.root_name() != new.root_name() {
            changed.insert(old.root_name().into());
            changed.insert(new.root_name().into());
        }
        // A structurally-changed element subsumes its attribute diffs.
        attrs_changed.retain(|name, _| !changed.contains(name));
        DtdDelta {
            new: new.clone(),
            changed,
            attrs_changed,
        }
    }

    /// The identity delta (no declaration changed).
    pub fn unchanged(dtd: &Dtd) -> DtdDelta {
        DtdDelta {
            new: dtd.clone(),
            changed: BTreeSet::new(),
            attrs_changed: BTreeMap::new(),
        }
    }
}

/// A Σ edit: the new FD set plus the FDs added and removed relative to
/// the old one (as written; canonicalization happens at resolution).
#[derive(Debug, Clone)]
pub struct SigmaDelta {
    /// The edited FD set.
    pub new: XmlFdSet,
    /// FDs present in `new` but not in the old set.
    pub added: Vec<XmlFd>,
    /// FDs present in the old set but not in `new`.
    pub removed: Vec<XmlFd>,
}

impl SigmaDelta {
    /// Diffs two FD sets into a delta carrying `new`.
    pub fn between(old: &XmlFdSet, new: &XmlFdSet) -> SigmaDelta {
        let old_set: BTreeSet<&XmlFd> = old.iter().collect();
        let new_set: BTreeSet<&XmlFd> = new.iter().collect();
        SigmaDelta {
            new: new.clone(),
            added: new
                .iter()
                .filter(|f| !old_set.contains(f))
                .cloned()
                .collect(),
            removed: old
                .iter()
                .filter(|f| !new_set.contains(f))
                .cloned()
                .collect(),
        }
    }

    /// The identity delta (same FD set).
    pub fn unchanged(sigma: &XmlFdSet) -> SigmaDelta {
        SigmaDelta {
            new: sigma.clone(),
            added: Vec::new(),
            removed: Vec::new(),
        }
    }
}

/// What [`IncrementalCache::apply_delta`] did to the cached entries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvalidationReport {
    /// Entries whose verdict transferred to the new spec (trace replays
    /// and monotone keeps together).
    pub kept: usize,
    /// The subset of `kept` transferred by the monotone rule alone:
    /// their verdict is sound but their trace is stale.
    pub kept_semantic: usize,
    /// Entries invalidated; the next lookup re-chases them.
    pub invalidated: usize,
    /// Canonical Σ entries added by the delta.
    pub sigma_added: usize,
    /// Canonical Σ entries removed by the delta.
    pub sigma_removed: usize,
    /// Element types whose declaration changed.
    pub dtd_changed: usize,
    /// The surviving Σ entries changed relative canonical order, which
    /// voids every trace replay; only monotone keeps survive such an
    /// edit.
    pub order_flush: bool,
}

/// One cached verdict plus the trace justifying its transfer.
#[derive(Debug, Clone)]
struct Entry {
    implied: bool,
    /// Owned paths the run touched — path-*name* keyed (not `PathId`),
    /// so the set survives DTD edits that renumber the BFS interning.
    touched: BTreeSet<Path>,
    /// Per canonical Σ index of the *current* spec.
    fired: Vec<bool>,
    pivot_source: Vec<bool>,
    scan_reach: usize,
    /// The entry was once kept by the monotone rule: its verdict is
    /// sound but its trace no longer replays under the current spec, so
    /// trace-based transfer is off for it permanently.
    semantic_only: bool,
}

/// A memoizing implication oracle that survives `(D, Σ)` edits.
///
/// Verdicts are cached per query FD together with their [`RunTrace`];
/// [`IncrementalCache::apply_delta`] keeps exactly the entries whose
/// recorded footprint is disjoint from the edit (see the module docs for
/// the soundness argument) and invalidates the rest, which re-chase
/// lazily on their next lookup. An edit sequence whose steps touch small
/// parts of the spec therefore re-pays only for the queries that could
/// have changed — the from-scratch baseline re-pays for all of them
/// (experiment E21).
///
/// Unlike [`ImplicationCache`](crate::implication::ImplicationCache)
/// (borrowing, single-spec, `Sync`), this cache *owns* its spec and is
/// single-threaded; the two compose — the sharded search uses the former
/// within one spec, this one carries verdicts across specs.
#[derive(Debug)]
pub struct IncrementalCache {
    dtd: Dtd,
    sigma: XmlFdSet,
    budget: Budget,
    entries: BTreeMap<XmlFd, Entry>,
    /// Canonical `XmlFd` forms of `sigma`, in canonical (resolved)
    /// order — the index space the entries' `fired`/`pivot_source`
    /// vectors live in. Memoized so `apply_delta` only canonicalizes
    /// the *new* side of an edit; `None` until first computed.
    canon: Option<Vec<XmlFd>>,
    /// The enumerated paths of `dtd` and the resolved form of `sigma`,
    /// memoized across `apply_delta` → `implies_all` round trips so an
    /// edit step pays path enumeration and Σ resolution once, not twice.
    prepared: Option<(PathSet, Vec<ResolvedFd>)>,
}

impl IncrementalCache {
    /// An empty cache for `(dtd, sigma)` with an unlimited budget.
    pub fn new(dtd: Dtd, sigma: XmlFdSet) -> IncrementalCache {
        IncrementalCache {
            dtd,
            sigma,
            budget: Budget::unlimited(),
            entries: BTreeMap::new(),
            canon: None,
            prepared: None,
        }
    }

    /// Installs a resource [`Budget`]: lookups charge `cache.lookup` and
    /// delta application charges `cache.invalidate` per entry, surfacing
    /// [`CoreError::Exhausted`](crate::CoreError) instead of partial
    /// state (an erroring `apply_delta` leaves the cache unchanged and
    /// still consistent with the *old* spec).
    pub fn with_budget(mut self, budget: Budget) -> IncrementalCache {
        self.budget = budget;
        self
    }

    /// The current DTD.
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// The current FD set.
    pub fn sigma(&self) -> &XmlFdSet {
        &self.sigma
    }

    /// The number of cached verdicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no verdicts are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `(D, Σ) ⊢ fd`, served from cache when possible.
    pub fn implies(&mut self, fd: &XmlFd) -> Result<bool> {
        Ok(self.implies_all(std::slice::from_ref(fd))?[0])
    }

    /// Batch [`IncrementalCache::implies`]: hits are served without
    /// building a chase engine at all — an all-hit batch (the typical
    /// post-`apply_delta` re-check of an edit that missed everything)
    /// does zero chase work.
    pub fn implies_all(&mut self, fds: &[XmlFd]) -> Result<Vec<bool>> {
        self.budget.checkpoint("cache.lookup")?;
        if fds.iter().any(|f| !self.entries.contains_key(f)) {
            if self.prepared.is_none() {
                let paths = self.dtd.paths()?;
                let resolved = self.sigma.resolve(&paths)?;
                self.prepared = Some((paths, resolved));
            }
            let (paths, sigma) = self.prepared.as_ref().expect("just prepared");
            if self.canon.is_none() {
                self.canon = Some(sigma.iter().map(|r| r.to_fd(paths)).collect());
            }
            let chase = Chase::new(&self.dtd, paths).with_budget(self.budget.clone());
            let mut fresh: Vec<(XmlFd, Entry)> = Vec::new();
            for fd in fds {
                if self.entries.contains_key(fd) || fresh.iter().any(|(k, _)| k == fd) {
                    continue;
                }
                self.budget.checkpoint("cache.lookup")?;
                let resolved = fd.resolve(paths)?;
                // Governed + traced: charge the installed budget for the
                // chase work (the analyze fuel meter depends on this) and
                // drop the batch on exhaustion — `fresh` is only committed
                // below, so a partial batch never pollutes the cache.
                let (outcome, trace) = chase.try_run_traced(sigma, &resolved)?;
                fresh.push((fd.clone(), Entry::from_trace(outcome, trace, paths)));
            }
            for (fd, entry) in fresh {
                self.entries.insert(fd, entry);
            }
        }
        Ok(fds.iter().map(|f| self.entries[f].implied).collect())
    }

    /// Applies a `(D, Σ)` edit: transfers every cached verdict whose
    /// recorded footprint the edit provably cannot have altered,
    /// invalidates the rest, and swaps in the new spec.
    ///
    /// The change sets are recomputed here against the cache's *own*
    /// current spec (the deltas' `changed`/`added`/`removed` fields are
    /// informational), so a stale delta degrades to extra invalidation,
    /// never to a wrong transfer. Queries or FDs of the new Σ that do
    /// not resolve against the new DTD's paths are an error; entries
    /// whose *query* no longer resolves are simply dropped.
    pub fn apply_delta(
        &mut self,
        dtd_delta: &DtdDelta,
        sigma_delta: &SigmaDelta,
    ) -> Result<InvalidationReport> {
        let recomputed = DtdDelta::between(&self.dtd, &dtd_delta.new);
        let (changed, attrs_changed) = (recomputed.changed, recomputed.attrs_changed);
        let new_paths = dtd_delta.new.paths()?;
        let new_resolved = sigma_delta.new.resolve(&new_paths)?;
        // Canonical Σ sequences, keyed by their path-space-independent
        // (hence comparable across the edit) `XmlFd` forms. The old side
        // is usually memoized from the previous edit or fill.
        let computed_old: Vec<XmlFd>;
        let old_fds: &[XmlFd] = match &self.canon {
            Some(c) => c,
            None => {
                let old_paths = self.dtd.paths()?;
                let old_resolved = self.sigma.resolve(&old_paths)?;
                computed_old = old_resolved.iter().map(|r| r.to_fd(&old_paths)).collect();
                &computed_old
            }
        };
        let new_fds: Vec<XmlFd> = new_resolved.iter().map(|r| r.to_fd(&new_paths)).collect();
        let new_index: BTreeMap<&XmlFd, usize> =
            new_fds.iter().enumerate().map(|(i, f)| (f, i)).collect();
        let old_to_new: Vec<Option<usize>> =
            old_fds.iter().map(|f| new_index.get(f).copied()).collect();
        let survivors: Vec<usize> = old_to_new.iter().flatten().copied().collect();
        let order_ok = survivors.windows(2).all(|w| w[0] < w[1]);
        let old_set: BTreeSet<&XmlFd> = old_fds.iter().collect();
        let added: Vec<usize> = new_fds
            .iter()
            .enumerate()
            .filter(|(_, f)| !old_set.contains(f))
            .map(|(i, _)| i)
            .collect();
        // Entry-independent views of the Σ edit, hoisted out of the
        // per-entry decide loop: the removed canonical indices, and
        // whether the canonical sequence is unchanged outright (the
        // common DTD-only edit), in which case the entries' Σ-indexed
        // vectors transfer verbatim.
        let removed_idx: Vec<usize> = old_to_new
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_none())
            .map(|(j, _)| j)
            .collect();
        let sigma_identity = old_fds == new_fds.as_slice();
        let dirty = |p: &Path| {
            let steps = p.steps();
            steps.iter().enumerate().any(|(i, s)| match s {
                Step::Elem(n) => changed.contains(n),
                // An added/removed attribute dirties exactly its own
                // path: `steps[i - 1]` is the owning element (attribute
                // steps only follow element steps).
                Step::Attr(a) => matches!(
                    steps.get(i.wrapping_sub(1)),
                    Some(Step::Elem(n))
                        if attrs_changed.get(n).is_some_and(|d| d.contains(a))
                ),
                _ => false,
            })
        };

        let mut report = InvalidationReport {
            sigma_added: added.len(),
            sigma_removed: old_to_new.iter().filter(|n| n.is_none()).count(),
            dtd_changed: changed.len(),
            order_flush: !order_ok,
            ..InvalidationReport::default()
        };
        // Whether the edit shape admits the monotone rule at all: a
        // removal-only Σ edit (Σ' ⊆ Σ canonically) combined with an
        // attribute-granularity DTD edit. Under such an edit the
        // surviving Σ cannot mention an edited attribute (it resolved
        // against the old paths), so a not-implied verdict whose query
        // still resolves transfers semantically.
        let monotone_edit = changed.is_empty() && added.is_empty();
        #[derive(Clone, Copy, PartialEq)]
        enum Keep {
            Drop,
            Trace,
            Semantic,
        }
        // Decide first (fallible), mutate after: an exhausted budget
        // leaves the cache untouched and consistent with the old spec.
        let dbg_drops = std::env::var_os("XNF_DBG_INVALIDATE").is_some();
        let mut decisions: Vec<Keep> = Vec::with_capacity(self.entries.len());
        for (query, entry) in &self.entries {
            self.budget.checkpoint("cache.invalidate")?;
            let _span = self
                .budget
                .recorder()
                .span("cache.invalidate", "implication");
            // A query whose every path is clean provably still
            // resolves (each element along it keeps its declaration,
            // so the parent-child chain survives the edit); only dirty
            // queries pay the resolution probe.
            let query_ok = query.lhs().iter().chain(query.rhs()).all(|p| !dirty(p))
                || query.resolve(&new_paths).is_ok();
            let trace_keep = !entry.semantic_only
                && order_ok
                && query_ok
                && entry.touched.iter().all(|p| !dirty(p))
                && removed_idx
                    .iter()
                    .all(|&j| !entry.fired[j] && !entry.pivot_source[j])
                && added.iter().all(|&k| {
                    new_fds[k].lhs().iter().all(|p| !entry.touched.contains(p))
                        && entry.scan_reach != usize::MAX
                        && (entry.scan_reach == 0
                            || matches!(old_to_new[entry.scan_reach - 1], Some(d) if k > d))
                });
            let keep = if trace_keep {
                Keep::Trace
            } else if !entry.implied && monotone_edit && query_ok {
                Keep::Semantic
            } else {
                Keep::Drop
            };
            decisions.push(keep);
            if dbg_drops && keep == Keep::Drop {
                eprintln!(
                    "DROP {query}: order_ok={order_ok} query_ok={query_ok} touched_clean={} removed_fired={:?} removed_pivot={:?} touched_dirty={:?}",
                    entry.touched.iter().all(|p| !dirty(p)),
                    removed_idx.iter().map(|&j| entry.fired[j]).collect::<Vec<_>>(),
                    removed_idx.iter().map(|&j| entry.pivot_source[j]).collect::<Vec<_>>(),
                    entry.touched.iter().filter(|p| dirty(p)).collect::<Vec<_>>(),
                );
            }
        }
        // Infallible from here on. Kept entries move (footprints are
        // reused, not cloned); only their Σ-indexed vectors are rebuilt
        // in the new canonical index space.
        let old_entries = std::mem::take(&mut self.entries);
        for ((query, mut entry), keep) in old_entries.into_iter().zip(decisions) {
            match keep {
                Keep::Drop => {
                    report.invalidated += 1;
                    continue;
                }
                Keep::Semantic => {
                    // The verdict survives; the trace does not. Poison
                    // it so only the monotone rule can keep this entry
                    // in future edits.
                    entry.semantic_only = true;
                    entry.touched.clear();
                    entry.fired = vec![false; new_fds.len()];
                    entry.pivot_source = vec![false; new_fds.len()];
                    entry.scan_reach = usize::MAX;
                    report.kept_semantic += 1;
                }
                Keep::Trace => {
                    if !sigma_identity {
                        let mut fired = vec![false; new_fds.len()];
                        let mut pivot_source = vec![false; new_fds.len()];
                        for (j, &ni) in old_to_new.iter().enumerate() {
                            if let Some(ni) = ni {
                                fired[ni] = entry.fired[j];
                                pivot_source[ni] = entry.pivot_source[j];
                            }
                        }
                        entry.scan_reach = match entry.scan_reach {
                            0 => 0,
                            usize::MAX => usize::MAX,
                            r => match old_to_new[r - 1] {
                                Some(d) => d + 1,
                                None => unreachable!("a removed pivot source invalidates"),
                            },
                        };
                        entry.fired = fired;
                        entry.pivot_source = pivot_source;
                    }
                }
            }
            self.entries.insert(query, entry);
            report.kept += 1;
        }
        self.dtd = dtd_delta.new.clone();
        self.sigma = sigma_delta.new.clone();
        self.canon = Some(new_fds);
        self.prepared = Some((new_paths, new_resolved));
        Ok(report)
    }
}

impl Entry {
    fn from_trace(outcome: ChaseOutcome, trace: RunTrace, paths: &PathSet) -> Entry {
        Entry {
            implied: matches!(outcome, ChaseOutcome::Implied),
            touched: paths
                .iter()
                .filter(|p| trace.touched[p.index()])
                .map(|p| paths.path(p))
                .collect(),
            fired: trace.fired,
            pivot_source: trace.pivot_source,
            scan_reach: trace.scan_reach,
            semantic_only: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{DBLP_FDS, UNIVERSITY_FDS};
    use crate::fixtures::{dblp_dtd, university_dtd};

    /// Every value path of Σ as a `S → parent(q)` query — the shape the
    /// anomalous-FD search asks.
    fn queries(sigma: &XmlFdSet) -> Vec<XmlFd> {
        let mut out = Vec::new();
        for fd in sigma.iter() {
            for q in fd.rhs() {
                out.push(XmlFd::new(fd.lhs().to_vec(), vec![q.clone()]).unwrap());
                if let Some(parent) = q.parent() {
                    out.push(XmlFd::new(fd.lhs().to_vec(), vec![parent]).unwrap());
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn from_scratch(dtd: &Dtd, sigma: &XmlFdSet, fds: &[XmlFd]) -> Vec<bool> {
        let paths = dtd.paths().unwrap();
        let resolved = sigma.resolve(&paths).unwrap();
        let chase = Chase::new(dtd, &paths);
        fds.iter()
            .map(|f| {
                use crate::implication::Implication;
                chase.implies(&resolved, &f.resolve(&paths).unwrap())
            })
            .collect()
    }

    #[test]
    fn agrees_with_from_scratch_on_first_fill() {
        for (dtd, fds) in [(university_dtd(), UNIVERSITY_FDS), (dblp_dtd(), DBLP_FDS)] {
            let sigma = XmlFdSet::parse(fds).unwrap();
            let qs = queries(&sigma);
            let mut cache = IncrementalCache::new(dtd.clone(), sigma.clone());
            assert_eq!(
                cache.implies_all(&qs).unwrap(),
                from_scratch(&dtd, &sigma, &qs)
            );
            // Second pass is all hits and identical.
            assert_eq!(
                cache.implies_all(&qs).unwrap(),
                from_scratch(&dtd, &sigma, &qs)
            );
        }
    }

    #[test]
    fn sigma_removal_transfers_and_stays_exact() {
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let qs = queries(&sigma);
        let mut cache = IncrementalCache::new(dtd.clone(), sigma.clone());
        cache.implies_all(&qs).unwrap();
        // Drop the last FD.
        let reduced = XmlFdSet::from_fds(sigma.iter().take(sigma.len() - 1).cloned());
        let report = cache
            .apply_delta(
                &DtdDelta::unchanged(&dtd),
                &SigmaDelta::between(&sigma, &reduced),
            )
            .unwrap();
        assert_eq!(report.kept + report.invalidated, qs.len());
        assert_eq!(
            cache.implies_all(&qs).unwrap(),
            from_scratch(&dtd, &reduced, &qs)
        );
    }

    #[test]
    fn monotone_rule_keeps_refuted_verdicts_across_removal() {
        // Two independent fragments: each fragment's anomaly query
        // (`S → parent`) is refuted by a run that *fires* the other
        // fragment's FD, so trace replay cannot keep it across that
        // FD's removal — but Σ-monotonicity can.
        let (dtd, sigma) = crate::analyze::e22_family(2);
        let qs: Vec<XmlFd> = [
            "root.key01 -> root.val01.item01",
            "root.key02 -> root.val02.item02",
        ]
        .map(|s| XmlFdSet::parse(s).unwrap().iter().next().unwrap().clone())
        .to_vec();
        let mut cache = IncrementalCache::new(dtd.clone(), sigma.clone());
        assert_eq!(cache.implies_all(&qs).unwrap(), vec![false, false]);
        let reduced = XmlFdSet::from_fds(sigma.iter().take(1).cloned());
        let report = cache
            .apply_delta(
                &DtdDelta::unchanged(&dtd),
                &SigmaDelta::between(&sigma, &reduced),
            )
            .unwrap();
        assert!(
            report.kept_semantic > 0,
            "the refuted cross-fragment verdict should transfer semantically: {report:?}"
        );
        assert_eq!(
            cache.implies_all(&qs).unwrap(),
            from_scratch(&dtd, &reduced, &qs)
        );
    }

    #[test]
    fn semantic_entries_invalidate_on_fd_addition() {
        // A semantically-kept refuted verdict must still die when an FD
        // addition could flip it: add exactly the cached query to Σ.
        let (dtd, sigma) = crate::analyze::e22_family(2);
        let query = XmlFdSet::parse("root.key01 -> root.val01.item01")
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .clone();
        let mut cache = IncrementalCache::new(dtd.clone(), sigma.clone());
        assert!(!cache.implies(&query).unwrap());
        // Step 1: removal-only edit keeps the verdict via monotonicity.
        let reduced = XmlFdSet::from_fds(sigma.iter().take(1).cloned());
        let report = cache
            .apply_delta(
                &DtdDelta::unchanged(&dtd),
                &SigmaDelta::between(&sigma, &reduced),
            )
            .unwrap();
        assert!(report.kept_semantic > 0, "{report:?}");
        // Step 2: add the query itself as an FD — the verdict flips.
        let extended = XmlFdSet::from_fds(reduced.iter().cloned().chain([query.clone()]));
        cache
            .apply_delta(
                &DtdDelta::unchanged(&dtd),
                &SigmaDelta::between(&reduced, &extended),
            )
            .unwrap();
        assert!(cache.implies(&query).unwrap());
        assert_eq!(
            cache.implies_all(std::slice::from_ref(&query)).unwrap(),
            from_scratch(&dtd, &extended, std::slice::from_ref(&query))
        );
    }

    #[test]
    fn sigma_addition_transfers_and_stays_exact() {
        let dtd = university_dtd();
        let base = XmlFdSet::parse(
            "courses.course.@cno -> courses.course
             courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student",
        )
        .unwrap();
        let qs = queries(&XmlFdSet::parse(UNIVERSITY_FDS).unwrap());
        let mut cache = IncrementalCache::new(dtd.clone(), base.clone());
        cache.implies_all(&qs).unwrap();
        let extended = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        cache
            .apply_delta(
                &DtdDelta::unchanged(&dtd),
                &SigmaDelta::between(&base, &extended),
            )
            .unwrap();
        assert_eq!(
            cache.implies_all(&qs).unwrap(),
            from_scratch(&dtd, &extended, &qs)
        );
    }

    #[test]
    fn dtd_edit_transfers_and_stays_exact() {
        // Redeclare an element *off* the FDs' fragment: title gains an
        // attribute. Entries whose runs never touched title paths keep.
        let old = university_dtd();
        let new = xnf_dtd::parse_dtd(
            "<!ELEMENT courses (course*)>
             <!ELEMENT course (title, taken_by)>
             <!ATTLIST course cno CDATA #REQUIRED>
             <!ELEMENT title (#PCDATA)>
             <!ATTLIST title lang CDATA #REQUIRED>
             <!ELEMENT taken_by (student*)>
             <!ELEMENT student (name, grade)>
             <!ATTLIST student sno CDATA #REQUIRED>
             <!ELEMENT name (#PCDATA)>
             <!ELEMENT grade (#PCDATA)>",
        )
        .unwrap();
        let sigma = XmlFdSet::parse(
            "courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student",
        )
        .unwrap();
        let qs = queries(&sigma);
        let mut cache = IncrementalCache::new(old.clone(), sigma.clone());
        cache.implies_all(&qs).unwrap();
        let delta = DtdDelta::between(&old, &new);
        // A pure attribute add is recorded at attribute granularity:
        // title's structure is unchanged, only `title.@lang` is dirty.
        assert_eq!(delta.changed, BTreeSet::new());
        assert_eq!(
            delta.attrs_changed,
            BTreeMap::from([("title".into(), BTreeSet::from(["lang".into()]))])
        );
        cache
            .apply_delta(&delta, &SigmaDelta::unchanged(&sigma))
            .unwrap();
        assert_eq!(
            cache.implies_all(&qs).unwrap(),
            from_scratch(&new, &sigma, &qs)
        );
    }

    #[test]
    fn stale_delta_cannot_poison_the_cache() {
        // A delta constructed against the wrong baseline: apply_delta
        // recomputes the change sets itself, so verdicts stay exact.
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let qs = queries(&sigma);
        let mut cache = IncrementalCache::new(dtd.clone(), sigma.clone());
        cache.implies_all(&qs).unwrap();
        let reduced = XmlFdSet::from_fds(sigma.iter().skip(1).cloned());
        // Lie: claim nothing was added or removed.
        let stale = SigmaDelta {
            new: reduced.clone(),
            added: Vec::new(),
            removed: Vec::new(),
        };
        cache
            .apply_delta(&DtdDelta::unchanged(&dtd), &stale)
            .unwrap();
        assert_eq!(
            cache.implies_all(&qs).unwrap(),
            from_scratch(&dtd, &reduced, &qs)
        );
    }

    #[test]
    fn exhausted_apply_delta_leaves_the_cache_usable() {
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let qs = queries(&sigma);
        let reduced = XmlFdSet::from_fds(sigma.iter().take(1).cloned());
        let mut starved = IncrementalCache::new(dtd.clone(), sigma.clone());
        starved.implies_all(&qs).unwrap();
        starved.budget = Budget::builder().fuel(0).build();
        assert!(starved
            .apply_delta(
                &DtdDelta::unchanged(&dtd),
                &SigmaDelta::between(&sigma, &reduced)
            )
            .is_err());
        // Old spec still answers exactly.
        starved.budget = Budget::unlimited();
        assert_eq!(
            starved.implies_all(&qs).unwrap(),
            from_scratch(&dtd, &sigma, &qs)
        );
    }
}
