//! Static schema analysis and decomposition planning — `xnf analyze`.
//!
//! Answers, *without executing [`normalize`](crate::normalize())*, the
//! questions a caller would otherwise pay a full chase-heavy
//! normalization run for:
//!
//! * **Why** is `(D, Σ)` anomalous — which FD, at which path, and which
//!   normalization move (step 2 move-attribute vs. step 3
//!   create-element) will fire for it ([`AnomalyInfo`]);
//! * **What** will the algorithm do — the exact ordered step list it
//!   will emit, including the fresh elements and attributes it mints
//!   ([`Analysis::plan`]);
//! * **How much** will it cost — predicted chase invocations and govern
//!   fuel, calibrated tick-for-tick against [`Budget`] accounting
//!   ([`CostEstimate`]);
//! * plus a **minimal cover** of Σ and the **FD interaction graph**
//!   (which FDs share pivot paths or feed each other), exportable as
//!   JSON and DOT ([`FdGraph`]).
//!
//! # Why the predicted plan is byte-exact
//!
//! The analysis does not re-implement Figure 4's decision procedure — it
//! *shares* it. [`normalize`](crate::normalize()) was refactored so its
//! per-iteration decision phase
//! ([`decide_iteration`](crate::normalize::decide_iteration)) is a free
//! function over any [`Implication`] oracle; `analyze` drives the
//! identical code against an [`IncrementalCache`]-backed oracle and
//! applies the chosen actions to a scratch `(D, Σ)`. Identical decision
//! code over equivalent oracle verdicts yields an identical step
//! sequence by construction (the incremental cache's verdict
//! transferability is itself differentially validated). What makes this
//! *static analysis* rather than a rerun is the cost profile: the
//! incremental cache carries chase verdicts across iterations via
//! [`DtdDelta`]/[`SigmaDelta`] transfer, so the expensive chase work is
//! paid once instead of once per iteration — see `EXPERIMENTS.md` E22.
//!
//! # Fuel prediction
//!
//! Every governed checkpoint the real `normalize` run charges is
//! enumerable from the decision trace: one `normalize.iteration` and one
//! `normalize.apply` per iteration, one `chase.shard` per shard of the
//! natural plan plus one `chase.merge`, one `xnf.candidate` per
//! `(FD, value path)` candidate, one `cache.lookup` per oracle call, one
//! `normalize.minimize` per minimality round, one `normalize.guard` per
//! FD of the guard pass, and the chase's own `chase.run` /
//! `chase.saturate.*` / `chase.split` charges per cache miss. The
//! analysis meters the last group by measuring its own governed chase
//! work and replaying recorded fuel for cache hits; when a hit replays a
//! verdict recorded under a *different* Σ the chase's per-round FD scan
//! (`chase.saturate.fd`, proportional to `|Σ|`) may have drifted, so the
//! estimate is flagged [`CostEstimate::fuel_exact`]` = false` instead of
//! silently lying.

use crate::fd::{ResolvedFd, XmlFd, XmlFdSet};
use crate::implication::{
    Chase, ChaseOutcome, DtdDelta, Implication, IncrementalCache, SigmaDelta,
};
use crate::normalize::{
    apply_create, apply_move, decide_iteration, find_anomalous_fd, fix_lhs_element_paths,
    fold_one_text_path, fold_text_paths, Action, NormalizeOptions, NormalizeStats, Step,
};
use crate::{CoreError, Result};
use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;
use xnf_dtd::{Dtd, Path, PathSet, Step as PathStep};
use xnf_govern::{Budget, Exhausted};

/// Options controlling [`analyze`].
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Mirror of [`NormalizeOptions::use_implication`]: predict the full
    /// algorithm (default) or the simplified Proposition 7 variant. The
    /// predicted plan matches whichever variant the caller will run.
    pub use_implication: bool,
    /// Safety cap on simulated steps (mirror of
    /// [`NormalizeOptions::max_steps`]).
    pub max_steps: usize,
    /// Resource budget for the *analysis itself* (the predicted run's
    /// cost is reported, not charged). Ungoverned callers still get
    /// exact fuel accounting: the analysis meters its own work on an
    /// internal governed-but-limitless budget. On exhaustion the
    /// analysis degrades gracefully like `normalize`: a partial
    /// [`Analysis`] with [`Analysis::exhausted`] set.
    pub budget: Budget,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            use_implication: true,
            max_steps: 1000,
            budget: Budget::unlimited(),
        }
    }
}

/// Predicted cost of the [`normalize`](crate::normalize()) run that
/// [`analyze`] simulated, plus what the analysis itself spent.
///
/// All `predicted_*` numbers refer to a governed `normalize` run with
/// the same options: `predicted_fuel` is the exact number of budget
/// ticks ([`Budget::ticks`]) it will charge when
/// [`CostEstimate::fuel_exact`] holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostEstimate {
    /// Main-loop iterations the run will execute (including the final
    /// all-clear one).
    pub iterations: u64,
    /// Transformation steps the run will emit (= `plan.len()`).
    pub steps: u64,
    /// Chase invocations (`chase.run` charges) the run will make.
    pub chase_runs: u64,
    /// Implication-oracle lookups (`cache.lookup` charges).
    pub cache_lookups: u64,
    /// Lookups served from the per-iteration memo.
    pub cache_hits: u64,
    /// Lookups that will fall through to the chase.
    pub cache_misses: u64,
    /// Total budget ticks the governed run will charge.
    pub predicted_fuel: u64,
    /// Whether `predicted_fuel` is tick-exact. `false` when some chase
    /// fuel was replayed from a verdict recorded under a different Σ
    /// (the chase's per-round `|Σ|` scan may have drifted); the
    /// estimate is then still a close approximation.
    pub fuel_exact: bool,
    /// Budget ticks the *analysis itself* spent — compare with
    /// `predicted_fuel` for the static-analysis saving (E22).
    pub analyze_fuel: u64,
}

impl Default for CostEstimate {
    fn default() -> Self {
        CostEstimate {
            iterations: 0,
            steps: 0,
            chase_runs: 0,
            cache_lookups: 0,
            cache_hits: 0,
            cache_misses: 0,
            predicted_fuel: 0,
            fuel_exact: true,
            analyze_fuel: 0,
        }
    }
}

/// Provenance of one anomalous FD of the *input* specification: where
/// the anomaly sits and how the predicted plan will resolve it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyInfo {
    /// The anomalous FD, rendered (`S → p.@l` with `S → parent(p.@l)`
    /// not implied).
    pub fd: String,
    /// The offending value path `p.@l` (or `p.S`).
    pub path: String,
    /// The normalization move that will resolve this path:
    /// `"move-attribute"` (step 2), `"create-element"` (step 3),
    /// `"fold-text"` (a mid-loop fold feeding a later step), or
    /// `"rewrite"` (resolved by the Σ-rewriting of another step).
    pub predicted_move: String,
    /// Index into [`Analysis::plan`] of the resolving step, when one
    /// targets this path directly.
    pub resolved_by_step: Option<usize>,
}

/// The FD interaction graph over the minimal cover: which FDs feed each
/// other and which compete for pivot paths.
///
/// Purely structural (path-set intersections, no chase): node `i` is
/// `nodes[i]`; a directed `feeds` edge `i → j` means an RHS path of `i`
/// appears in the LHS of `j` (resolving `j` consumes what `i`
/// determines); an undirected `shares_pivot` edge means two FDs' LHS
/// sets intersect, so the normalization steps they trigger anchor at
/// shared paths and interact. `clusters` are the connected components
/// over both edge kinds — FDs in one cluster must be reasoned about
/// together when predicting schema blow-up.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FdGraph {
    /// Rendered FDs, one per node.
    pub nodes: Vec<String>,
    /// Directed edges `(i, j)`: an RHS path of `i` is an LHS path of `j`.
    pub feeds: Vec<(usize, usize)>,
    /// Undirected edges `(i, j)` with `i < j`: the LHS sets intersect.
    pub shares_pivot: Vec<(usize, usize)>,
    /// Connected components over both edge kinds, each sorted, listed by
    /// smallest member.
    pub clusters: Vec<Vec<usize>>,
}

impl FdGraph {
    /// Builds the interaction graph over `fds` (structural, no chase).
    pub fn new(fds: &[XmlFd]) -> FdGraph {
        let lhs_sets: Vec<BTreeSet<&Path>> =
            fds.iter().map(|fd| fd.lhs().iter().collect()).collect();
        let rhs_sets: Vec<BTreeSet<&Path>> =
            fds.iter().map(|fd| fd.rhs().iter().collect()).collect();
        let mut feeds = Vec::new();
        let mut shares_pivot = Vec::new();
        for i in 0..fds.len() {
            for (j, lhs) in lhs_sets.iter().enumerate() {
                if i != j && !rhs_sets[i].is_disjoint(lhs) {
                    feeds.push((i, j));
                }
            }
            for j in i + 1..fds.len() {
                if !lhs_sets[i].is_disjoint(&lhs_sets[j]) {
                    shares_pivot.push((i, j));
                }
            }
        }
        // Union-find over both edge kinds.
        let mut parent: Vec<usize> = (0..fds.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for &(i, j) in feeds.iter().chain(&shares_pivot) {
            let (a, b) = (find(&mut parent, i), find(&mut parent, j));
            if a != b {
                parent[a] = b;
            }
        }
        let mut by_root: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..fds.len() {
            let root = find(&mut parent, i);
            by_root.entry(root).or_default().push(i);
        }
        let mut clusters: Vec<Vec<usize>> = by_root.into_values().collect();
        for c in &mut clusters {
            c.sort_unstable();
        }
        clusters.sort();
        FdGraph {
            nodes: fds.iter().map(|fd| fd.to_string()).collect(),
            feeds,
            shares_pivot,
            clusters,
        }
    }

    /// Renders the graph in Graphviz DOT: solid arrows for `feeds`,
    /// dashed undirected edges for `shares_pivot`.
    pub fn to_dot(&self) -> String {
        let mut out =
            String::from("digraph fd_interactions {\n  rankdir=LR;\n  node [shape=box];\n");
        for (i, label) in self.nodes.iter().enumerate() {
            out.push_str(&format!("  n{i} [label=\"{}\"];\n", dot_escape(label)));
        }
        for &(i, j) in &self.feeds {
            out.push_str(&format!("  n{i} -> n{j};\n"));
        }
        for &(i, j) in &self.shares_pivot {
            out.push_str(&format!(
                "  n{i} -> n{j} [dir=none, style=dashed, label=\"pivot\"];\n"
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// The output of [`analyze`].
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The DTD the predicted plan will produce.
    pub dtd: Dtd,
    /// The FD set the predicted plan will produce.
    pub sigma: XmlFdSet,
    /// A minimal cover of the *input* Σ: single-path right-hand sides,
    /// left-reduced, with redundant FDs removed (up to the chase
    /// oracle's power — the chase is sound, so every removal is
    /// justified; an unproven implication conservatively keeps the FD).
    pub cover: Vec<XmlFd>,
    /// The FD interaction graph over `cover`.
    pub graph: FdGraph,
    /// Provenance for each anomalous FD of the (preprocessed) input.
    pub anomalies: Vec<AnomalyInfo>,
    /// Attribute paths of the input DTD mentioned by no FD of Σ: no
    /// decomposition step can ever move them, so they stay glued to
    /// their element under every predicted plan.
    pub dead_attributes: Vec<String>,
    /// The predicted step list — byte-exact against the real
    /// [`normalize`](crate::normalize()) run's [`Step`] trace.
    pub plan: Vec<Step>,
    /// Predicted `|AP(D, Σ)|` trace (mirror of
    /// [`NormalizeResult::ap_trace`](crate::NormalizeResult::ap_trace)).
    pub ap_trace: Vec<usize>,
    /// Cost prediction and the analysis' own spend.
    pub cost: CostEstimate,
    /// `Some` iff the analysis budget ran out: the result is partial —
    /// `plan` is a prefix of the real trace and `cover`/`graph` may be
    /// empty. Mirror of
    /// [`NormalizeResult::exhausted`](crate::NormalizeResult::exhausted).
    pub exhausted: Option<Exhausted>,
}

/// What one sub-query's chase cost, and under which Σ generation (and
/// Σ size) / DTD generation it was measured. Sub-queries replayed under
/// a different Σ flip [`CostEstimate::fuel_exact`]: the replayed fuel
/// is rescaled by the `|Σ|` ratio (saturation scans the FDs in rounds,
/// so chase fuel is first-order proportional to `|Σ|`), which keeps the
/// estimate calibrated but no longer tick-exact. Replays across a DTD
/// edit likewise flip the flag — even under the empty Σ the chase
/// saturates over the document tree, so a moved attribute or a fresh
/// element can shift a run's queue cost by a tick or two.
struct LedgerEntry {
    fuel: u64,
    generation: u64,
    sigma_len: u64,
    dtd_generation: u64,
}

/// Σ-generation sentinel for ∅-side ledger entries: chases under the
/// empty Σ scan no FDs, so a Σ edit never drifts their replayed fuel
/// (a DTD edit still can — see [`LedgerEntry`]).
const EMPTY_SIDE: u64 = u64::MAX;

/// Per-iteration oracle-call counts, mirroring what the real run's
/// per-iteration [`ImplicationCache`](crate::ImplicationCache) would do.
#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    lookups: u64,
    hits: u64,
    misses: u64,
    runs: u64,
}

/// Shared state behind the [`AnalyzeOracle`]: the cross-iteration
/// incremental caches, the fuel ledger, and the per-iteration tally.
struct OracleState {
    /// Verdicts under the current Σ, carried across iterations by delta
    /// transfer.
    sigma_cache: IncrementalCache,
    /// Verdicts under the empty Σ (triviality queries), carried across
    /// DTD edits the same way.
    empty_cache: IncrementalCache,
    /// Measured chase fuel per single-RHS sub-query.
    ledger: HashMap<(XmlFd, bool), LedgerEntry>,
    /// Composite-query memo for the current iteration — mirrors the
    /// per-iteration `ImplicationCache` memo of the real run, so
    /// hit/miss counts match exactly.
    seen: HashMap<(bool, XmlFd), bool>,
    tally: Tally,
    /// Chase fuel the predicted run will spend, accumulated across
    /// iterations.
    pred_chase_fuel: u64,
    fuel_exact: bool,
    /// Current iteration ordinal (Σ generation for the ledger).
    generation: u64,
    /// Bumped on every DTD edit (move/create/fold): ledger replays
    /// crossing an edit are calibrated but not tick-exact.
    dtd_generation: u64,
    /// Off during warm-up passes whose queries the real run does not
    /// make (anomaly provenance): verdicts and ledger entries are still
    /// recorded, predictions are not.
    metering: bool,
}

impl OracleState {
    /// One single-RHS sub-query against the appropriate incremental
    /// cache, with fuel metering: a measured chase records its fuel, a
    /// cache hit replays the recorded fuel (the real run, whose memo
    /// dies with each iteration, pays the chase again).
    fn single(
        &mut self,
        empty: bool,
        sub: &XmlFd,
        meter: &Budget,
    ) -> std::result::Result<bool, Exhausted> {
        let sigma_len = self.sigma_cache.sigma().len() as u64;
        let cache = if empty {
            &mut self.empty_cache
        } else {
            &mut self.sigma_cache
        };
        let before = meter.ticks();
        let verdict = match cache.implies(sub) {
            Ok(v) => v,
            Err(CoreError::Exhausted(e)) => return Err(e),
            Err(e) => unreachable!("analyze sub-queries resolve against the current paths: {e}"),
        };
        let spent = meter.ticks() - before;
        let key = (sub.clone(), empty);
        if spent > 1 {
            // A real chase ran: `spent` = the batch-entry lookup tick +
            // the per-fd lookup tick + the chase's own charges.
            let fuel = spent - 2;
            if self.metering {
                self.pred_chase_fuel += fuel;
            }
            let generation = if empty { EMPTY_SIDE } else { self.generation };
            self.ledger.insert(
                key,
                LedgerEntry {
                    fuel,
                    generation,
                    sigma_len,
                    dtd_generation: self.dtd_generation,
                },
            );
        } else if self.metering {
            // Cache hit (exactly the one lookup tick): the real run
            // will chase — replay the recorded fuel. A σ-side entry
            // measured under an earlier (larger) Σ is rescaled by the
            // `|Σ|` ratio and flips the exactness flag.
            match self.ledger.get(&key) {
                Some(entry) => {
                    if empty || entry.generation == self.generation {
                        self.pred_chase_fuel += entry.fuel;
                        // The chase saturates over the tree, so fuel
                        // measured under an earlier DTD is calibrated
                        // but not tick-exact after an edit.
                        if entry.dtd_generation != self.dtd_generation {
                            self.fuel_exact = false;
                        }
                    } else {
                        let then = entry.sigma_len.max(1);
                        self.pred_chase_fuel += (entry.fuel * sigma_len + then / 2) / then;
                        self.fuel_exact = false;
                    }
                }
                None => self.fuel_exact = false,
            }
        }
        Ok(verdict)
    }
}

/// The [`Implication`] oracle `analyze` feeds to
/// [`decide_iteration`](crate::normalize::decide_iteration): answers
/// from the incremental caches while counting exactly the lookups,
/// hits, misses and chase runs the real run's per-iteration cache
/// would perform.
struct AnalyzeOracle<'a> {
    paths: &'a PathSet,
    meter: &'a Budget,
    state: &'a Mutex<OracleState>,
}

impl Implication for AnalyzeOracle<'_> {
    fn implies(&self, sigma: &[ResolvedFd], fd: &ResolvedFd) -> bool {
        self.try_implies(sigma, fd)
            .expect("ungoverned analyze oracle cannot exhaust")
    }

    fn try_implies(
        &self,
        sigma: &[ResolvedFd],
        fd: &ResolvedFd,
    ) -> std::result::Result<bool, Exhausted> {
        let empty = sigma.is_empty();
        let key = (empty, fd.to_fd(self.paths));
        let mut g = self.state.lock().expect("analyze oracle poisoned");
        if g.metering {
            g.tally.lookups += 1;
        }
        if let Some(&v) = g.seen.get(&key) {
            if g.metering {
                g.tally.hits += 1;
            }
            return Ok(v);
        }
        if g.metering {
            g.tally.misses += 1;
        }
        // Decompose exactly as the chase's `run_with` does: one
        // single-RHS run per conjunct, short-circuiting at the first
        // failure — so `tally.runs` counts the real run's `chase.run`
        // charges one-for-one.
        let mut verdict = true;
        for &q in &fd.rhs {
            let sub = ResolvedFd::from_ids(fd.lhs.iter().copied(), [q]).to_fd(self.paths);
            if g.metering {
                g.tally.runs += 1;
            }
            if !g.single(empty, &sub, self.meter)? {
                verdict = false;
                break;
            }
        }
        g.seen.insert(key, verdict);
        Ok(verdict)
    }
}

/// Statically analyzes `(D, Σ)`: predicts the full normalization plan
/// and its governed cost, computes a minimal cover, the FD interaction
/// graph, anomaly provenance and dead attributes — without running
/// [`normalize`](crate::normalize()).
pub fn analyze(dtd: &Dtd, sigma: &XmlFdSet, options: &AnalyzeOptions) -> Result<Analysis> {
    if dtd.is_recursive() {
        return Err(CoreError::RecursiveNormalization);
    }
    // The analysis meters itself on a governed budget: the caller's, or
    // (for ungoverned callers) an internal limitless one, so tick deltas
    // are observable either way.
    let meter = if options.budget.is_governed() {
        options.budget.clone()
    } else {
        Budget::builder().build()
    };
    let fuel_start = meter.ticks();
    let norm_options = NormalizeOptions {
        use_implication: options.use_implication,
        max_steps: options.max_steps,
        threads: 1,
        budget: meter.clone(),
    };

    // ---------------- Preprocessing (identical to `normalize`) --------
    let mut work_dtd = dtd.clone();
    let mut steps: Vec<Step> = Vec::new();
    let mut fds: Vec<XmlFd> = sigma.iter().flat_map(XmlFd::split_rhs).collect();
    {
        let _span = meter.recorder().span("analyze.preprocess", "analyze");
        fold_text_paths(&mut work_dtd, &mut fds, &mut steps)?;
        fix_lhs_element_paths(&mut work_dtd, &mut fds, &mut steps)?;
    }
    let mut work_sigma = XmlFdSet::from_fds(fds);

    let state = Mutex::new(OracleState {
        sigma_cache: IncrementalCache::new(work_dtd.clone(), work_sigma.clone())
            .with_budget(meter.clone()),
        empty_cache: IncrementalCache::new(work_dtd.clone(), XmlFdSet::new())
            .with_budget(meter.clone()),
        ledger: HashMap::new(),
        seen: HashMap::new(),
        tally: Tally::default(),
        pred_chase_fuel: 0,
        fuel_exact: true,
        generation: 0,
        dtd_generation: 0,
        metering: false,
    });
    let empty_sigma = XmlFdSet::new();

    // ---------------- Anomaly provenance ------------------------------
    // One unmetered sweep over the preprocessed spec: its verdicts load
    // the caches (iteration 0 re-asks them as hits, at no extra chase
    // cost) and its violations are the input's anomalous FDs.
    let mut exhausted_out: Option<Exhausted> = None;
    let initial_violations: Vec<(String, Path)> = {
        let _span = meter.recorder().span("analyze.provenance", "analyze");
        let paths = work_dtd.paths()?;
        let resolved = work_sigma.resolve(&paths)?;
        let oracle = AnalyzeOracle {
            paths: &paths,
            meter: &meter,
            state: &state,
        };
        match find_anomalous_fd(&oracle, &paths, &resolved, 1, &meter) {
            Ok(violations) => violations
                .into_iter()
                .map(|(fd, p)| (fd.to_fd(&paths).to_string(), paths.path(p)))
                .collect(),
            Err(e) => {
                exhausted_out = Some(e);
                Vec::new()
            }
        }
    };

    // ---------------- Plan simulation (Figure 4, shared decide) -------
    let mut est = CostEstimate::default();
    let mut ap_trace: Vec<usize> = Vec::new();
    let mut stats = NormalizeStats::default();
    let mut done = false;
    for iteration in 0..options.max_steps {
        if exhausted_out.is_some() {
            break;
        }
        if let Err(e) = meter.checkpoint("analyze.iteration") {
            exhausted_out = Some(e);
            break;
        }
        let _iter_span = meter.recorder().span("analyze.iteration", "analyze");
        let paths = work_dtd.paths()?;
        let resolved = work_sigma.resolve(&paths)?;
        let chase_fuel_before = {
            let mut g = state.lock().expect("analyze state poisoned");
            g.seen.clear();
            g.tally = Tally::default();
            g.generation = iteration as u64;
            g.metering = true;
            g.pred_chase_fuel
        };
        let oracle = AnalyzeOracle {
            paths: &paths,
            meter: &meter,
            state: &state,
        };
        let decided = decide_iteration(
            &oracle,
            &paths,
            &resolved,
            &norm_options,
            &mut stats,
            &mut ap_trace,
        );
        let (tally, chase_fuel, action, guards, cost) = {
            let mut g = state.lock().expect("analyze state poisoned");
            g.metering = false;
            match decided {
                Ok((action, guards, cost)) => (
                    g.tally,
                    g.pred_chase_fuel - chase_fuel_before,
                    action,
                    guards,
                    cost,
                ),
                Err(e) => {
                    exhausted_out = Some(e);
                    break;
                }
            }
        };
        est.iterations += 1;
        est.chase_runs += tally.runs;
        est.cache_lookups += tally.lookups;
        est.cache_hits += tally.hits;
        est.cache_misses += tally.misses;
        // The governed run's tick bill for this iteration:
        // `normalize.iteration` + per-shard `chase.shard` + `chase.merge`
        // + per-candidate `xnf.candidate` + per-oracle-call `cache.lookup`
        // + the chase fuel of every miss + per-round `normalize.minimize`
        // + per-FD `normalize.guard` + `normalize.apply`.
        est.predicted_fuel += 1
            + cost.shards
            + 1
            + cost.candidates
            + tally.lookups
            + chase_fuel
            + cost.minimize_rounds
            + cost.guard_checks
            + 1;
        for g in guards {
            work_sigma.push(g);
        }
        match action {
            Action::Done => {
                done = true;
                break;
            }
            Action::Move(q_attr, q) => {
                apply_move(
                    &mut work_dtd,
                    &mut work_sigma,
                    &paths,
                    q_attr,
                    q,
                    &mut steps,
                )?;
            }
            Action::Create(lhs, target) => {
                apply_create(
                    &mut work_dtd,
                    &mut work_sigma,
                    &paths,
                    &lhs,
                    target,
                    &mut steps,
                )?;
            }
            Action::Fold(s_path) => {
                let mut fds: Vec<XmlFd> = work_sigma.iter().cloned().collect();
                fold_one_text_path(&mut work_dtd, &mut fds, &s_path, &mut steps)?;
                work_sigma = XmlFdSet::from_fds(fds);
                // Mirror `normalize`: a fold resolves no violation, so
                // its AP sample is dropped from the trace.
                ap_trace.pop();
            }
        }
        // Carry the caches over the edit: transferred verdicts are the
        // entire cost saving of the analysis.
        let transfer = {
            let mut g = state.lock().expect("analyze state poisoned");
            g.dtd_generation += 1;
            let dtd_delta = DtdDelta::between(g.sigma_cache.dtd(), &work_dtd);
            let sigma_delta = SigmaDelta::between(g.sigma_cache.sigma(), &work_sigma);
            g.sigma_cache
                .apply_delta(&dtd_delta, &sigma_delta)
                .and_then(|_| {
                    let dtd_delta = DtdDelta::between(g.empty_cache.dtd(), &work_dtd);
                    let sigma_delta = SigmaDelta::unchanged(&empty_sigma);
                    g.empty_cache.apply_delta(&dtd_delta, &sigma_delta)
                })
        };
        match transfer {
            Ok(_) => {}
            Err(CoreError::Exhausted(e)) => {
                exhausted_out = Some(e);
                break;
            }
            Err(e) => return Err(e),
        }
    }
    if !done && exhausted_out.is_none() {
        return Err(CoreError::TooManySteps);
    }

    // ---------------- Cover, graph, dead attributes -------------------
    let cover = if exhausted_out.is_none() {
        match minimal_cover(dtd, sigma, &meter) {
            Ok(cover) => cover,
            Err(CoreError::Exhausted(e)) => {
                exhausted_out = Some(e);
                Vec::new()
            }
            Err(e) => return Err(e),
        }
    } else {
        Vec::new()
    };
    let graph = {
        let _span = meter.recorder().span("analyze.graph", "analyze");
        FdGraph::new(&cover)
    };
    let dead_attributes = dead_attributes(dtd, sigma)?;
    let anomalies = attribute_anomalies(&initial_violations, &steps);

    est.steps = steps.len() as u64;
    est.fuel_exact = state
        .into_inner()
        .expect("analyze state poisoned")
        .fuel_exact;
    if exhausted_out.is_some() {
        // A truncated simulation never charged the remaining iterations:
        // the prediction is a lower bound, not an exact bill.
        est.fuel_exact = false;
    }
    est.analyze_fuel = meter.ticks() - fuel_start;
    Ok(Analysis {
        dtd: work_dtd,
        sigma: work_sigma,
        cover,
        graph,
        anomalies,
        dead_attributes,
        plan: steps,
        ap_trace,
        cost: est,
        exhausted: exhausted_out,
    })
}

/// The backward slice of `fds` that can influence an implication query
/// with right-hand side `rhs`: the fixpoint of "an FD is relevant iff
/// some path it writes interferes with the goal set", where the goal
/// set grows by each relevant FD's sides. Two paths interfere when one
/// step-prefixes the other — vertex equality propagates up the
/// ancestor chain, down through single-occurrence children, and from
/// an element to its attribute and text coordinates, so any
/// comparable pair is conservatively treated as coupled; incomparable
/// coordinates cannot pass facts to each other.
fn relevant_fds(fds: &[XmlFd], rhs: &[Path]) -> Vec<XmlFd> {
    let interferes =
        |a: &Path, b: &Path| a.steps().starts_with(b.steps()) || b.steps().starts_with(a.steps());
    let mut goal: Vec<Path> = rhs.to_vec();
    let mut relevant = vec![false; fds.len()];
    loop {
        let mut grew = false;
        for (i, fd) in fds.iter().enumerate() {
            if relevant[i] {
                continue;
            }
            if fd
                .rhs()
                .iter()
                .any(|q| goal.iter().any(|g| interferes(q, g)))
            {
                relevant[i] = true;
                goal.extend(fd.lhs().iter().cloned());
                goal.extend(fd.rhs().iter().cloned());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    fds.iter()
        .zip(&relevant)
        .filter(|(_, &r)| r)
        .map(|(f, _)| f.clone())
        .collect()
}

/// A textbook minimal cover of Σ, with the chase as the implication
/// oracle: split right-hand sides, left-reduce each FD, then drop FDs
/// implied by the rest. Deterministic: candidates are processed in the
/// canonical (sorted) Σ order.
///
/// Each implication test chases only the [`relevant_fds`] slice of the
/// premise set. The slice is a subset of the full premises, so by
/// monotonicity every `Implied` verdict — hence every reduction the
/// cover performs — stays sound even if the relevance closure were too
/// tight; a missed relevance could only leave the cover less reduced.
/// On specs whose FDs live in disjoint subtrees the slice is empty and
/// a redundancy test costs one premise-free chase instead of a full
/// saturation over Σ.
fn minimal_cover(dtd: &Dtd, sigma: &XmlFdSet, meter: &Budget) -> Result<Vec<XmlFd>> {
    let _span = meter.recorder().span("analyze.cover", "analyze");
    let paths = dtd.paths()?;
    let chase = Chase::new(dtd, &paths).with_budget(meter.clone());
    let implied = |fds: &[XmlFd], fd: &XmlFd| -> Result<bool> {
        meter.checkpoint("analyze.cover")?;
        let resolved: Vec<ResolvedFd> = relevant_fds(fds, fd.rhs())
            .iter()
            .map(|f| f.resolve(&paths))
            .collect::<Result<_>>()?;
        let target = fd.resolve(&paths)?;
        Ok(matches!(
            chase.try_run(&resolved, &target)?,
            ChaseOutcome::Implied
        ))
    };
    let split = XmlFdSet::from_fds(sigma.iter().flat_map(XmlFd::split_rhs));
    let mut fds: Vec<XmlFd> = split.iter().cloned().collect();
    // Left-reduction: drop extraneous LHS paths while the rest of the
    // current Σ still implies the smaller FD.
    for i in 0..fds.len() {
        let mut lhs: Vec<Path> = fds[i].lhs().to_vec();
        let rhs: Vec<Path> = fds[i].rhs().to_vec();
        let mut j = 0;
        while lhs.len() > 1 && j < lhs.len() {
            let mut smaller = lhs.clone();
            smaller.remove(j);
            let candidate = XmlFd::new(smaller.clone(), rhs.clone()).expect("non-empty sides");
            if implied(&fds, &candidate)? {
                lhs = smaller;
                fds[i] = XmlFd::new(lhs.clone(), rhs.clone()).expect("non-empty sides");
            } else {
                j += 1;
            }
        }
    }
    // Re-canonicalize (reduction can create duplicates), then drop FDs
    // implied by the remaining ones.
    let mut fds: Vec<XmlFd> = XmlFdSet::from_fds(fds).iter().cloned().collect();
    let mut i = 0;
    while i < fds.len() {
        let fd = fds.remove(i);
        if implied(&fds, &fd)? {
            continue; // redundant: stay at position i
        }
        fds.insert(i, fd);
        i += 1;
    }
    Ok(fds)
}

/// The E22 benchmark family: `k` independent key/value fragments, each
/// carrying one anomalous FD `root.keyNN → root.valNN.itemNN.@aNN`.
///
/// The shape is chosen so the analysis' incremental caches transfer
/// maximally: canonical Σ order follows the resolved LHS path ids (the
/// `key` elements, declared in forward order), while normalize resolves
/// anomalies by smallest anomalous RHS path id (the `val` fragments,
/// declared in *reverse*). Each iteration therefore removes the
/// canonically-last remaining FD, and every cross-fragment verdict
/// either trace-replays or transfers by Σ-monotonicity — the real
/// `normalize` re-chases all of them every iteration, which is exactly
/// the gap experiment E22 measures.
pub fn e22_family(k: usize) -> (Dtd, XmlFdSet) {
    let keys = (1..=k).map(|i| format!("key{i:02}*")).collect::<Vec<_>>();
    let vals = (1..=k)
        .rev()
        .map(|i| format!("val{i:02}*"))
        .collect::<Vec<_>>();
    let mut dtd_src = format!(
        "<!ELEMENT root ({}, {})>\n",
        keys.join(", "),
        vals.join(", ")
    );
    let mut fds_src = String::new();
    for i in 1..=k {
        dtd_src.push_str(&format!(
            "<!ELEMENT key{i:02} EMPTY>\n<!ELEMENT val{i:02} (item{i:02}*)>\n\
             <!ELEMENT item{i:02} EMPTY>\n<!ATTLIST item{i:02} a{i:02} CDATA #REQUIRED>\n"
        ));
        fds_src.push_str(&format!(
            "root.key{i:02} -> root.val{i:02}.item{i:02}.@a{i:02}\n"
        ));
    }
    let dtd = xnf_dtd::parse_dtd(&dtd_src).expect("generated family DTD parses");
    let sigma = XmlFdSet::parse(&fds_src).expect("generated family FDs parse");
    (dtd, sigma)
}

/// Attribute paths of `dtd` that no FD of `sigma` mentions.
fn dead_attributes(dtd: &Dtd, sigma: &XmlFdSet) -> Result<Vec<String>> {
    let paths = dtd.paths()?;
    let mentioned: BTreeSet<Path> = sigma
        .iter()
        .flat_map(|fd| fd.lhs().iter().chain(fd.rhs()).cloned())
        .collect();
    Ok(paths
        .iter()
        .filter(|&p| matches!(paths.step(p), PathStep::Attr(_)))
        .map(|p| paths.path(p))
        .filter(|p| !mentioned.contains(p))
        .map(|p| p.to_string())
        .collect())
}

/// Matches each initial violation to the plan step that resolves its
/// path (see [`AnomalyInfo::predicted_move`]).
fn attribute_anomalies(violations: &[(String, Path)], steps: &[Step]) -> Vec<AnomalyInfo> {
    violations
        .iter()
        .map(|(fd, path)| {
            let hit = steps.iter().enumerate().find_map(|(i, step)| match step {
                Step::MoveAttribute { from, .. } if from == path => Some((i, "move-attribute")),
                Step::CreateElement { value_attr, .. } if value_attr == path => {
                    Some((i, "create-element"))
                }
                Step::FoldText { elem_path, .. } if Some(elem_path) == path.parent().as_ref() => {
                    Some((i, "fold-text"))
                }
                _ => None,
            });
            AnomalyInfo {
                fd: fd.clone(),
                path: path.to_string(),
                predicted_move: hit.map_or("rewrite", |(_, kind)| kind).to_string(),
                resolved_by_step: hit.map(|(i, _)| i),
            }
        })
        .collect()
}

impl Analysis {
    /// Renders the analysis as a self-contained JSON document
    /// (`docs/analyze.schema.json` pins the shape; `version` gates
    /// consumers against future changes).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n");
        out.push_str(&format!("  \"dtd\": \"{}\",\n", esc(&self.dtd.to_string())));
        out.push_str(&format!(
            "  \"sigma\": \"{}\",\n",
            esc(&self.sigma.to_string())
        ));
        out.push_str(&format!(
            "  \"cover\": [{}],\n",
            join(
                self.cover
                    .iter()
                    .map(|fd| format!("\"{}\"", esc(&fd.to_string())))
            )
        ));
        out.push_str("  \"graph\": {\n");
        out.push_str(&format!(
            "    \"nodes\": [{}],\n",
            join(self.graph.nodes.iter().map(|n| format!("\"{}\"", esc(n))))
        ));
        out.push_str(&format!(
            "    \"feeds\": [{}],\n",
            join(self.graph.feeds.iter().map(|&(i, j)| format!("[{i}, {j}]")))
        ));
        out.push_str(&format!(
            "    \"shares_pivot\": [{}],\n",
            join(
                self.graph
                    .shares_pivot
                    .iter()
                    .map(|&(i, j)| format!("[{i}, {j}]"))
            )
        ));
        out.push_str(&format!(
            "    \"clusters\": [{}]\n  }},\n",
            join(
                self.graph
                    .clusters
                    .iter()
                    .map(|c| format!("[{}]", join(c.iter().map(|i| i.to_string()))))
            )
        ));
        out.push_str(&format!(
            "  \"anomalies\": [{}],\n",
            join(self.anomalies.iter().map(|a| format!(
                "{{\"fd\": \"{}\", \"path\": \"{}\", \"predicted_move\": \"{}\", \
                 \"resolved_by_step\": {}}}",
                esc(&a.fd),
                esc(&a.path),
                esc(&a.predicted_move),
                a.resolved_by_step
                    .map_or("null".to_string(), |i| i.to_string())
            )))
        ));
        out.push_str(&format!(
            "  \"dead_attributes\": [{}],\n",
            join(
                self.dead_attributes
                    .iter()
                    .map(|p| format!("\"{}\"", esc(p)))
            )
        ));
        out.push_str(&format!(
            "  \"plan\": [{}],\n",
            join(self.plan.iter().map(step_json))
        ));
        out.push_str(&format!(
            "  \"ap_trace\": [{}],\n",
            join(self.ap_trace.iter().map(|n| n.to_string()))
        ));
        let c = &self.cost;
        out.push_str(&format!(
            "  \"cost\": {{\"iterations\": {}, \"steps\": {}, \"chase_runs\": {}, \
             \"cache_lookups\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"predicted_fuel\": {}, \"fuel_exact\": {}, \"analyze_fuel\": {}}},\n",
            c.iterations,
            c.steps,
            c.chase_runs,
            c.cache_lookups,
            c.cache_hits,
            c.cache_misses,
            c.predicted_fuel,
            c.fuel_exact,
            c.analyze_fuel,
        ));
        out.push_str(&format!(
            "  \"exhausted\": {}\n}}\n",
            self.exhausted
                .as_ref()
                .map_or("null".to_string(), |e| format!(
                    "\"{}\"",
                    esc(&e.to_string())
                ))
        ));
        out
    }
}

/// One plan step as a JSON object (`kind` discriminates).
fn step_json(step: &Step) -> String {
    match step {
        Step::FoldText { elem_path, attr } => format!(
            "{{\"kind\": \"fold_text\", \"elem_path\": \"{}\", \"attr\": \"{}\"}}",
            esc(&elem_path.to_string()),
            esc(attr)
        ),
        Step::AddId { elem_path, attr } => format!(
            "{{\"kind\": \"add_id\", \"elem_path\": \"{}\", \"attr\": \"{}\"}}",
            esc(&elem_path.to_string()),
            esc(attr)
        ),
        Step::MoveAttribute { from, to, new_attr } => format!(
            "{{\"kind\": \"move_attribute\", \"from\": \"{}\", \"to\": \"{}\", \
             \"new_attr\": \"{}\"}}",
            esc(&from.to_string()),
            esc(&to.to_string()),
            esc(new_attr)
        ),
        Step::CreateElement {
            q,
            lhs_attrs,
            value_attr,
            tau,
            tau_children,
        } => format!(
            "{{\"kind\": \"create_element\", \"q\": \"{}\", \"lhs_attrs\": [{}], \
             \"value_attr\": \"{}\", \"tau\": \"{}\", \"tau_children\": [{}]}}",
            esc(&q.to_string()),
            join(
                lhs_attrs
                    .iter()
                    .map(|p| format!("\"{}\"", esc(&p.to_string())))
            ),
            esc(&value_attr.to_string()),
            esc(tau),
            join(tau_children.iter().map(|t| format!("\"{}\"", esc(t))))
        ),
    }
}

fn join(items: impl Iterator<Item = String>) -> String {
    items.collect::<Vec<_>>().join(", ")
}

/// Minimal JSON string escaping (the rendered values are DTD/FD/path
/// text: quotes, backslashes and control characters are the only
/// hazards).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// DOT label escaping (labels are FD renderings: quotes and backslashes).
fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{DBLP_FDS, UNIVERSITY_FDS};
    use crate::fixtures::{dblp_dtd, university_dtd};
    use crate::normalize::{normalize, NormalizeOptions};

    /// Runs `normalize` on a governed-but-limitless budget, returning
    /// the result plus the exact tick bill.
    fn normalize_metered(dtd: &Dtd, sigma: &XmlFdSet) -> (crate::NormalizeResult, u64) {
        let budget = Budget::builder().build();
        let r = normalize(
            dtd,
            sigma,
            &NormalizeOptions {
                budget: budget.clone(),
                ..NormalizeOptions::default()
            },
        )
        .unwrap();
        assert!(r.exhausted.is_none());
        (r, budget.ticks())
    }

    fn assert_plan_matches(dtd: &Dtd, fds: &str) -> (Analysis, u64) {
        let sigma = XmlFdSet::parse(fds).unwrap();
        let a = analyze(dtd, &sigma, &AnalyzeOptions::default()).unwrap();
        assert!(a.exhausted.is_none());
        let (r, ticks) = normalize_metered(dtd, &sigma);
        assert_eq!(a.plan, r.steps, "predicted plan diverged from the trace");
        assert_eq!(a.ap_trace, r.ap_trace);
        assert_eq!(a.dtd.to_string(), r.dtd.to_string());
        assert_eq!(a.sigma.to_string(), r.sigma.to_string());
        assert_eq!(a.cost.iterations, r.stats.iterations);
        assert_eq!(a.cost.steps, r.steps.len() as u64);
        assert_eq!(a.cost.chase_runs, r.stats.chase.get("chase.runs"));
        assert_eq!(a.cost.cache_hits, r.stats.chase.get("cache.hits"));
        assert_eq!(a.cost.cache_misses, r.stats.chase.get("cache.misses"));
        (a, ticks)
    }

    #[test]
    fn dblp_plan_and_counters_match_normalize() {
        let (a, ticks) = assert_plan_matches(&dblp_dtd(), DBLP_FDS);
        if a.cost.fuel_exact {
            assert_eq!(a.cost.predicted_fuel, ticks);
        } else {
            let (lo, hi) = (ticks * 3 / 4, ticks * 5 / 4);
            assert!(
                (lo..=hi).contains(&a.cost.predicted_fuel),
                "predicted {} vs actual {ticks}",
                a.cost.predicted_fuel
            );
        }
    }

    #[test]
    fn university_plan_and_counters_match_normalize() {
        let (a, ticks) = assert_plan_matches(&university_dtd(), UNIVERSITY_FDS);
        if a.cost.fuel_exact {
            assert_eq!(a.cost.predicted_fuel, ticks);
        } else {
            let (lo, hi) = (ticks * 3 / 4, ticks * 5 / 4);
            assert!(
                (lo..=hi).contains(&a.cost.predicted_fuel),
                "predicted {} vs actual {ticks}",
                a.cost.predicted_fuel
            );
        }
    }

    #[test]
    fn xnf_input_predicts_empty_plan_with_exact_fuel() {
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse("courses.course.@cno -> courses.course").unwrap();
        let a = analyze(&dtd, &sigma, &AnalyzeOptions::default()).unwrap();
        assert!(a.plan.is_empty());
        assert!(a.anomalies.is_empty());
        assert_eq!(a.ap_trace, vec![0]);
        assert!(a.cost.fuel_exact, "one iteration cannot drift");
        let (_, ticks) = normalize_metered(&dtd, &sigma);
        assert_eq!(a.cost.predicted_fuel, ticks);
    }

    #[test]
    fn provenance_names_the_dblp_move() {
        let a = analyze(
            &dblp_dtd(),
            &XmlFdSet::parse(DBLP_FDS).unwrap(),
            &AnalyzeOptions::default(),
        )
        .unwrap();
        let year = a
            .anomalies
            .iter()
            .find(|an| an.path == "db.conf.issue.inproceedings.@year")
            .expect("the @year anomaly is detected");
        assert_eq!(year.predicted_move, "move-attribute");
        assert_eq!(year.resolved_by_step, Some(0));
    }

    #[test]
    fn cover_drops_redundant_and_reduces_lhs() {
        let dtd = dblp_dtd();
        // FD2 plus a weakened copy with an extraneous LHS path, plus an
        // exact duplicate phrased with a two-path RHS: the cover must
        // collapse all of it back to the split originals.
        let sigma = XmlFdSet::parse(
            "db.conf.issue.inproceedings.@key -> db.conf.issue.inproceedings\n\
             db.conf.issue.inproceedings.@key, db.conf.issue.inproceedings.@pages \
             -> db.conf.issue.inproceedings",
        )
        .unwrap();
        let a = analyze(&dtd, &sigma, &AnalyzeOptions::default()).unwrap();
        assert_eq!(
            a.cover.iter().map(|fd| fd.to_string()).collect::<Vec<_>>(),
            vec!["db.conf.issue.inproceedings.@key -> db.conf.issue.inproceedings"]
        );
    }

    #[test]
    fn graph_connects_sharing_and_feeding_fds() {
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let a = analyze(&dtd, &sigma, &AnalyzeOptions::default()).unwrap();
        assert_eq!(a.graph.nodes.len(), a.cover.len());
        assert!(!a.graph.clusters.is_empty());
        let in_some_cluster: usize = a.graph.clusters.iter().map(Vec::len).sum();
        assert_eq!(in_some_cluster, a.graph.nodes.len());
        let dot = a.graph.to_dot();
        assert!(dot.starts_with("digraph"));
        for i in 0..a.graph.nodes.len() {
            assert!(dot.contains(&format!("n{i} ")));
        }
    }

    #[test]
    fn dblp_dead_attributes_are_key_and_pages() {
        let a = analyze(
            &dblp_dtd(),
            &XmlFdSet::parse(DBLP_FDS).unwrap(),
            &AnalyzeOptions::default(),
        )
        .unwrap();
        assert_eq!(
            a.dead_attributes,
            vec![
                "db.conf.issue.inproceedings.@key",
                "db.conf.issue.inproceedings.@pages"
            ]
        );
    }

    #[test]
    fn paper_specs_stay_tick_exact_with_bounded_overhead() {
        // The paper specs are tiny (1-3 iterations): nothing transfers
        // across generations, so the prediction is tick-exact, and the
        // analysis' own one-shot overhead (provenance + cover + graph)
        // stays within 2x of one full normalize run.
        for (dtd, fds) in [(university_dtd(), UNIVERSITY_FDS), (dblp_dtd(), DBLP_FDS)] {
            let sigma = XmlFdSet::parse(fds).unwrap();
            let a = analyze(&dtd, &sigma, &AnalyzeOptions::default()).unwrap();
            let (_, ticks) = normalize_metered(&dtd, &sigma);
            assert!(a.cost.fuel_exact);
            assert_eq!(a.cost.predicted_fuel, ticks);
            assert!(
                a.cost.analyze_fuel <= 2 * ticks,
                "analyze spent {} vs normalize {ticks}",
                a.cost.analyze_fuel
            );
        }
    }

    #[test]
    fn e22_family_analyze_is_5x_cheaper_than_normalize() {
        let (dtd, sigma) = e22_family(25);
        let a = analyze(&dtd, &sigma, &AnalyzeOptions::default()).unwrap();
        let (r, ticks) = normalize_metered(&dtd, &sigma);
        assert_eq!(a.plan, r.steps, "predicted plan diverged from the trace");
        assert_eq!(a.plan.len(), 25);
        // The headline E22 gap: cross-fragment verdicts transfer across
        // iterations inside analyze, while normalize re-chases them all.
        assert!(
            a.cost.analyze_fuel * 5 <= ticks,
            "analyze spent {} vs normalize {ticks} — less than the 5x saving",
            a.cost.analyze_fuel
        );
        // Transferred verdicts replay rescaled chase fuel, so the
        // prediction is flagged inexact — and stays within 2x.
        assert!(!a.cost.fuel_exact);
        assert!(
            (ticks / 2..=ticks * 2).contains(&a.cost.predicted_fuel),
            "predicted {} vs actual {ticks}",
            a.cost.predicted_fuel
        );
    }

    #[test]
    fn governed_analyze_degrades_gracefully() {
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let full = analyze(&dtd, &sigma, &AnalyzeOptions::default()).unwrap();
        let mut saw_partial = false;
        for fuel in [1, 10, 100, 1_000, 10_000] {
            let opts = AnalyzeOptions {
                budget: Budget::builder().fuel(fuel).build(),
                ..AnalyzeOptions::default()
            };
            let a = analyze(&dtd, &sigma, &opts).unwrap();
            match &a.exhausted {
                Some(_) => {
                    saw_partial = true;
                    assert!(a.plan.len() <= full.plan.len());
                    assert_eq!(a.plan[..], full.plan[..a.plan.len()]);
                    assert!(!a.cost.fuel_exact, "partial predictions are not exact");
                }
                None => {
                    assert_eq!(a.plan, full.plan);
                    assert_eq!(a.cover, full.cover);
                }
            }
        }
        assert!(saw_partial, "tiny budgets must exhaust");
    }

    #[test]
    fn rerun_with_larger_budget_converges() {
        let dtd = dblp_dtd();
        let sigma = XmlFdSet::parse(DBLP_FDS).unwrap();
        let full = analyze(&dtd, &sigma, &AnalyzeOptions::default()).unwrap();
        let mut fuel = 1u64;
        loop {
            let opts = AnalyzeOptions {
                budget: Budget::builder().fuel(fuel).build(),
                ..AnalyzeOptions::default()
            };
            let a = analyze(&dtd, &sigma, &opts).unwrap();
            if a.exhausted.is_none() {
                assert_eq!(a.plan, full.plan);
                assert_eq!(a.cost.predicted_fuel, full.cost.predicted_fuel);
                break;
            }
            fuel *= 4;
            assert!(fuel < 1 << 40, "never converged");
        }
    }

    #[test]
    fn recursive_dtd_rejected() {
        let d = xnf_dtd::parse_dtd(
            "<!ELEMENT r (part)>
             <!ELEMENT part (part*)>",
        )
        .unwrap();
        assert!(matches!(
            analyze(&d, &XmlFdSet::new(), &AnalyzeOptions::default()),
            Err(CoreError::RecursiveNormalization)
        ));
    }

    #[test]
    fn json_export_is_well_formed() {
        let a = analyze(
            &dblp_dtd(),
            &XmlFdSet::parse(DBLP_FDS).unwrap(),
            &AnalyzeOptions::default(),
        )
        .unwrap();
        let json = a.to_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"predicted_fuel\""));
        assert!(json.contains("\"move_attribute\""));
        // Balanced braces/brackets outside strings — a cheap
        // well-formedness smoke (the schema job in CI does it properly).
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
