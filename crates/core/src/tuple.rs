//! Tree tuples — Definition 4 — and their tree representation `tree_D(t)`
//! — Definition 5.
//!
//! A tree tuple `t` in a DTD `D` assigns to every path of `paths(D)` a
//! vertex, a string, or `⊥`, such that: element paths get vertices (the
//! root is non-null), non-element paths get strings, distinct paths never
//! share a vertex, nulls propagate downward, and only finitely many paths
//! are non-null. We represent a tuple densely over an enumerated
//! [`PathSet`], using [`Value`] from the relational layer so that sets of
//! tuples *are* Codd tables.

use crate::{CoreError, Result};
use std::collections::HashMap;
use xnf_dtd::{PathId, PathSet, Step};
use xnf_relational::Value;
use xnf_xml::XmlTree;

/// A tree tuple: one [`Value`] per path of the enumerated path set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TreeTuple {
    values: Vec<Value>,
}

impl TreeTuple {
    /// The all-null tuple over a path set of `n` paths (not itself a valid
    /// tree tuple — the root must be set before use).
    pub fn empty(n: usize) -> TreeTuple {
        TreeTuple {
            values: vec![Value::Null; n],
        }
    }

    /// Builds a tuple from a dense value vector.
    pub fn from_values(values: Vec<Value>) -> TreeTuple {
        TreeTuple { values }
    }

    /// `t.p` — the value at path `p`.
    pub fn get(&self, p: PathId) -> &Value {
        &self.values[p.index()]
    }

    /// Sets the value at path `p`.
    pub fn set(&mut self, p: PathId, v: Value) {
        self.values[p.index()] = v;
    }

    /// The dense value vector, aligned with the path set's id order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Whether `t.S = t'.S` for a set of paths (value equality; `⊥ = ⊥`).
    pub fn agree_on(&self, other: &TreeTuple, paths: &[PathId]) -> bool {
        paths.iter().all(|&p| self.get(p) == other.get(p))
    }

    /// Whether `t.S ≠ ⊥`: all the given paths are non-null.
    pub fn non_null_on(&self, paths: &[PathId]) -> bool {
        paths.iter().all(|&p| !self.get(p).is_null())
    }

    /// Whether `self ⊑ other` in the information ordering: wherever `self`
    /// is non-null, `other` has the same value.
    pub fn subsumed_by(&self, other: &TreeTuple) -> bool {
        self.values
            .iter()
            .zip(&other.values)
            .all(|(a, b)| a.is_null() || a == b)
    }

    /// Validates the Definition 4 conditions against `paths`:
    /// element paths hold vertices (root non-null), non-element paths hold
    /// strings, vertices are not shared between distinct paths, and nulls
    /// propagate downward.
    pub fn validate(&self, paths: &PathSet) -> Result<()> {
        if self.values.len() != paths.len() {
            return Err(CoreError::InconsistentTuples(format!(
                "tuple has {} values for {} paths",
                self.values.len(),
                paths.len()
            )));
        }
        if self.get(paths.root()).is_null() {
            return Err(CoreError::InconsistentTuples("t(r) = ⊥".to_string()));
        }
        let mut seen_verts: HashMap<u64, PathId> = HashMap::new();
        for p in paths.iter() {
            match (paths.is_element_path(p), self.get(p)) {
                (true, Value::Str(_)) => {
                    return Err(CoreError::InconsistentTuples(format!(
                        "element path {} holds a string",
                        paths.format(p)
                    )))
                }
                (false, Value::Vert(_)) => {
                    return Err(CoreError::InconsistentTuples(format!(
                        "non-element path {} holds a vertex",
                        paths.format(p)
                    )))
                }
                (true, Value::Vert(v)) => {
                    if let Some(prev) = seen_verts.insert(*v, p) {
                        return Err(CoreError::InconsistentTuples(format!(
                            "vertex v{} shared by {} and {}",
                            v,
                            paths.format(prev),
                            paths.format(p)
                        )));
                    }
                }
                _ => {}
            }
            if let Some(parent) = paths.parent(p) {
                if self.get(parent).is_null() && !self.get(p).is_null() {
                    return Err(CoreError::InconsistentTuples(format!(
                        "null does not propagate: {} is null but {} is not",
                        paths.format(parent),
                        paths.format(p)
                    )));
                }
            }
        }
        Ok(())
    }

    /// `tree_D(t)` (Definition 5): the XML tree over the tuple's non-null
    /// values. Children are ordered lexicographically by path id, matching
    /// the definition's lexicographic ordering.
    ///
    /// Also returns the mapping from created tree nodes back to the
    /// tuple's vertex values.
    pub fn tree(&self, paths: &PathSet) -> Result<(XmlTree, HashMap<u64, xnf_xml::NodeId>)> {
        self.validate(paths)?;
        let root_vert = match self.get(paths.root()) {
            Value::Vert(v) => *v,
            _ => return Err(CoreError::InconsistentTuples("root is not a vertex".into())),
        };
        let root_label = match paths.step(paths.root()) {
            Step::Elem(n) => n.clone(),
            _ => unreachable!("the root path is an element path"),
        };
        let mut tree = XmlTree::new(root_label);
        let mut node_of: HashMap<u64, xnf_xml::NodeId> = HashMap::new();
        node_of.insert(root_vert, tree.root());
        // Path ids are BFS-ordered, so parents are processed before
        // children.
        for p in paths.iter() {
            if p == paths.root() || self.get(p).is_null() {
                continue;
            }
            let parent = paths.parent(p).expect("non-root has a parent");
            let parent_vert = match self.get(parent) {
                Value::Vert(v) => *v,
                _ => unreachable!("validate() guarantees vertex parents"),
            };
            let parent_node = node_of[&parent_vert];
            match (paths.step(p), self.get(p)) {
                (Step::Elem(name), Value::Vert(v)) => {
                    let node = tree.add_child(parent_node, name.clone());
                    node_of.insert(*v, node);
                }
                (Step::Attr(name), Value::Str(s)) => {
                    tree.set_attr(parent_node, name.clone(), s.clone());
                }
                (Step::Text, Value::Str(s)) => {
                    tree.set_text(parent_node, s.clone());
                }
                _ => unreachable!("validate() guarantees sort consistency"),
            }
        }
        Ok((tree, node_of))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::university_dtd;

    fn paths() -> PathSet {
        university_dtd().paths().unwrap()
    }

    /// Builds the tree tuple of Figure 2(a).
    fn figure2_tuple(ps: &PathSet) -> TreeTuple {
        let mut t = TreeTuple::empty(ps.len());
        let set = |t: &mut TreeTuple, path: &str, v: Value| {
            t.set(ps.resolve_str(path).unwrap(), v);
        };
        set(&mut t, "courses", Value::Vert(0));
        set(&mut t, "courses.course", Value::Vert(1));
        set(&mut t, "courses.course.@cno", Value::str("csc200"));
        set(&mut t, "courses.course.title", Value::Vert(2));
        set(
            &mut t,
            "courses.course.title.S",
            Value::str("Automata Theory"),
        );
        set(&mut t, "courses.course.taken_by", Value::Vert(3));
        set(&mut t, "courses.course.taken_by.student", Value::Vert(4));
        set(
            &mut t,
            "courses.course.taken_by.student.@sno",
            Value::str("st1"),
        );
        set(
            &mut t,
            "courses.course.taken_by.student.name",
            Value::Vert(5),
        );
        set(
            &mut t,
            "courses.course.taken_by.student.name.S",
            Value::str("Deere"),
        );
        set(
            &mut t,
            "courses.course.taken_by.student.grade",
            Value::Vert(6),
        );
        set(
            &mut t,
            "courses.course.taken_by.student.grade.S",
            Value::str("A+"),
        );
        t
    }

    #[test]
    fn figure2_tuple_is_valid() {
        let ps = paths();
        figure2_tuple(&ps).validate(&ps).unwrap();
    }

    #[test]
    fn figure2_tree_matches_figure_2b() {
        let ps = paths();
        let (tree, node_of) = figure2_tuple(&ps).tree(&ps).unwrap();
        // The tree of Figure 2(b): one course, one student.
        let expected = xnf_xml::parse(
            r#"<courses><course cno="csc200"><title>Automata Theory</title>
               <taken_by><student sno="st1"><name>Deere</name><grade>A+</grade></student>
               </taken_by></course></courses>"#,
        )
        .unwrap();
        assert!(xnf_xml::unordered_eq(&tree, &expected));
        assert_eq!(node_of.len(), 7);
        assert_eq!(tree.num_nodes(), 7);
    }

    #[test]
    fn root_must_be_non_null() {
        let ps = paths();
        let t = TreeTuple::empty(ps.len());
        assert!(matches!(
            t.validate(&ps),
            Err(CoreError::InconsistentTuples(_))
        ));
    }

    #[test]
    fn null_propagation_checked() {
        let ps = paths();
        let mut t = TreeTuple::empty(ps.len());
        t.set(ps.resolve_str("courses").unwrap(), Value::Vert(0));
        // course is null but its title is set: invalid.
        t.set(
            ps.resolve_str("courses.course.title").unwrap(),
            Value::Vert(2),
        );
        assert!(t.validate(&ps).is_err());
    }

    #[test]
    fn vertex_sharing_rejected() {
        let ps = paths();
        let mut t = figure2_tuple(&ps);
        t.set(
            ps.resolve_str("courses.course.title").unwrap(),
            Value::Vert(0), // shared with the root
        );
        assert!(t.validate(&ps).is_err());
    }

    #[test]
    fn sort_mismatch_rejected() {
        let ps = paths();
        let mut t = figure2_tuple(&ps);
        t.set(
            ps.resolve_str("courses.course").unwrap(),
            Value::str("oops"),
        );
        assert!(t.validate(&ps).is_err());
        let mut t = figure2_tuple(&ps);
        t.set(
            ps.resolve_str("courses.course.@cno").unwrap(),
            Value::Vert(99),
        );
        assert!(t.validate(&ps).is_err());
    }

    #[test]
    fn information_ordering() {
        let ps = paths();
        let full = figure2_tuple(&ps);
        let mut partial = full.clone();
        partial.set(
            ps.resolve_str("courses.course.taken_by.student.grade")
                .unwrap(),
            Value::Null,
        );
        partial.set(
            ps.resolve_str("courses.course.taken_by.student.grade.S")
                .unwrap(),
            Value::Null,
        );
        assert!(partial.subsumed_by(&full));
        assert!(!full.subsumed_by(&partial));
        assert!(full.subsumed_by(&full));
    }

    #[test]
    fn agree_and_non_null_helpers() {
        let ps = paths();
        let t = figure2_tuple(&ps);
        let mut t2 = t.clone();
        let sno = ps
            .resolve_str("courses.course.taken_by.student.@sno")
            .unwrap();
        let cno = ps.resolve_str("courses.course.@cno").unwrap();
        assert!(t.agree_on(&t2, &[sno, cno]));
        t2.set(sno, Value::str("st9"));
        assert!(!t.agree_on(&t2, &[sno]));
        assert!(t.non_null_on(&[sno, cno]));
        let mut t3 = t.clone();
        t3.set(sno, Value::Null);
        assert!(!t3.non_null_on(&[sno]));
        // ⊥ = ⊥ counts as agreement.
        let mut t4 = t.clone();
        t4.set(sno, Value::Null);
        assert!(t3.agree_on(&t4, &[sno]));
    }
}
