//! XNF — the XML normal form (Definition 8) — and anomalous FDs/paths.
//!
//! `(D, Σ)` is in XNF iff every non-trivial FD `S → p.@l` (or `S → p.S`)
//! in `(D, Σ)⁺` also has `S → p` in `(D, Σ)⁺`: whenever a set of values
//! determines an attribute or text value, it must determine the *node*
//! carrying it — otherwise the value is stored redundantly.
//!
//! Testing membership in `(D, Σ)⁺` for *all* implied FDs is not needed:
//! for relational DTDs (Proposition 10) — and every disjunctive DTD is
//! relational (Proposition 9) — it suffices to check the FDs **in Σ**.
//! That is what [`is_xnf`] does, making the test a quadratic number of
//! implication queries (Corollary 1's cubic bound for simple DTDs).

use crate::fd::{ResolvedFd, XmlFd, XmlFdSet};
use crate::implication::{Chase, Implication};
use crate::Result;
use std::collections::BTreeSet;
use xnf_dtd::{Dtd, Path, PathId, PathSet, Step};
use xnf_govern::{Budget, Exhausted};

/// A detected XNF violation: the witnessing anomalous FD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The anomalous FD `S → p.@l` (with a single right-hand path).
    pub fd: XmlFd,
    /// The anomalous path (the FD's right-hand side).
    pub path: Path,
}

/// Enumerates the anomalous FDs among (the singleton-RHS split of) `Σ`:
/// non-trivial `S → p.@l` / `S → p.S` in `Σ` with `S → p ∉ (D, Σ)⁺`.
///
/// By Proposition 10 this is exactly the XNF test for relational DTDs
/// (which include all simple and disjunctive DTDs, Proposition 9); for
/// non-relational DTDs the answer is sound for "violation found" and the
/// general test would additionally quantify over implied FDs.
pub fn anomalous_fds(dtd: &Dtd, sigma: &XmlFdSet) -> Result<Vec<Violation>> {
    anomalous_fds_threaded(dtd, sigma, 1)
}

/// Parallel variant of [`anomalous_fds`]: the per-candidate implication
/// queries are fanned across `threads` scoped workers (`0` = all cores,
/// `1` = sequential) sharing one memoizing oracle. The output is
/// byte-identical for every thread count.
pub fn anomalous_fds_threaded(
    dtd: &Dtd,
    sigma: &XmlFdSet,
    threads: usize,
) -> Result<Vec<Violation>> {
    anomalous_fds_with(dtd, sigma, None, threads, Budget::unlimited())
}

/// [`anomalous_fds_threaded`] with an explicit shard count: the
/// candidate space is partitioned by root-child fragment and coalesced
/// to at most `shards` scheduling units before being fanned across
/// `threads` work-stealing workers (see
/// [`run_sharded`](crate::implication::run_sharded)). The output is
/// byte-identical for every `(shards, threads)` pair — the differential
/// suite `tests/differential_sharded.rs` pins this against the
/// sequential path over a generated corpus.
pub fn anomalous_fds_sharded(
    dtd: &Dtd,
    sigma: &XmlFdSet,
    shards: usize,
    threads: usize,
) -> Result<Vec<Violation>> {
    anomalous_fds_with(dtd, sigma, Some(shards), threads, Budget::unlimited())
}

/// Budget-governed [`anomalous_fds`]: implication queries charge `budget`
/// and the search aborts with [`CoreError::Exhausted`](crate::CoreError)
/// when it runs out. An `Err` means the verdict is *unknown* — never
/// "no violations".
pub fn anomalous_fds_governed(
    dtd: &Dtd,
    sigma: &XmlFdSet,
    budget: &Budget,
) -> Result<Vec<Violation>> {
    anomalous_fds_with(dtd, sigma, None, 1, budget.clone())
}

fn anomalous_fds_with(
    dtd: &Dtd,
    sigma: &XmlFdSet,
    shards: Option<usize>,
    threads: usize,
    budget: Budget,
) -> Result<Vec<Violation>> {
    let paths = dtd.paths()?;
    let chase = Chase::new(dtd, &paths).with_budget(budget);
    let resolved = sigma.resolve(&paths)?;
    let oracle = crate::implication::ImplicationCache::new(&chase, &resolved);
    crate::normalize::find_anomalous_fd_sharded(
        &oracle,
        &paths,
        &resolved,
        shards,
        threads,
        chase.budget(),
    )?
    .into_iter()
    .map(|(fd, p)| {
        Ok(Violation {
            fd: fd.to_fd(&paths),
            path: paths.path(p),
        })
    })
    .collect()
}

/// Tests one candidate of the anomalous-FD search: given `S → … q …` in
/// Σ with `q` a value path, returns `Some((S → q, q))` iff that FD is
/// anomalous — non-trivial with `S → parent(q) ∉ (D, Σ)⁺`.
pub(crate) fn anomalous_candidate(
    oracle: &impl Implication,
    paths: &PathSet,
    sigma: &[ResolvedFd],
    fd: &ResolvedFd,
    q: PathId,
    budget: &Budget,
) -> std::result::Result<Option<(ResolvedFd, PathId)>, Exhausted> {
    budget.checkpoint("xnf.candidate")?;
    let _span = budget.recorder().span("xnf.candidate", "xnf");
    // Only value paths (attributes / text) can be anomalous.
    if matches!(paths.step(q), Step::Elem(_)) {
        return Ok(None);
    }
    let single = ResolvedFd::from_ids(fd.lhs.iter().copied(), [q]);
    // Non-trivial: not implied by the DTD alone.
    if oracle.try_is_trivial(&single)? {
        return Ok(None);
    }
    // Σ ⊢ S → q holds by assumption (q ∈ rhs of an FD in Σ); the
    // XNF condition asks for S → parent(q).
    let parent = paths.parent(q).expect("value paths have parents");
    let node_fd = ResolvedFd::from_ids(fd.lhs.iter().copied(), [parent]);
    if !oracle.try_implies(sigma, &node_fd)? {
        Ok(Some((single, q)))
    } else {
        Ok(None)
    }
}

/// Whether `(D, Σ)` is in XNF (Definition 8, via the Proposition 10 test).
pub fn is_xnf(dtd: &Dtd, sigma: &XmlFdSet) -> Result<bool> {
    Ok(anomalous_fds(dtd, sigma)?.is_empty())
}

/// Budget-governed [`is_xnf`]. Returns
/// `Err(CoreError::Exhausted(..))` — never a wrong `bool` — when
/// `budget` runs out before the verdict is decided.
pub fn is_xnf_governed(dtd: &Dtd, sigma: &XmlFdSet, budget: &Budget) -> Result<bool> {
    Ok(anomalous_fds_governed(dtd, sigma, budget)?.is_empty())
}

/// The set of anomalous paths `AP(D, Σ)`: right-hand sides of anomalous
/// FDs. Proposition 6 guarantees every normalization step strictly
/// shrinks this set — the termination measure of the algorithm.
pub fn anomalous_paths(dtd: &Dtd, sigma: &XmlFdSet) -> Result<BTreeSet<Path>> {
    Ok(anomalous_fds(dtd, sigma)?
        .into_iter()
        .map(|v| v.path)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{DBLP_FDS, UNIVERSITY_FDS};
    use crate::fixtures::{dblp_dtd, university_dtd};

    #[test]
    fn example_5_1_university_not_in_xnf() {
        let d = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        assert!(!is_xnf(&d, &sigma).unwrap());
        let violations = anomalous_fds(&d, &sigma).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(
            violations[0].path.to_string(),
            "courses.course.taken_by.student.name.S"
        );
        let ap = anomalous_paths(&d, &sigma).unwrap();
        assert_eq!(ap.len(), 1);
    }

    #[test]
    fn example_5_2_dblp_not_in_xnf() {
        let d = dblp_dtd();
        let sigma = XmlFdSet::parse(DBLP_FDS).unwrap();
        assert!(!is_xnf(&d, &sigma).unwrap());
        let violations = anomalous_fds(&d, &sigma).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(
            violations[0].path.to_string(),
            "db.conf.issue.inproceedings.@year"
        );
    }

    #[test]
    fn keys_are_not_anomalous() {
        // FD1 and FD2 alone (keys) leave the design in XNF.
        let d = university_dtd();
        let sigma = XmlFdSet::parse(
            "courses.course.@cno -> courses.course
             courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student",
        )
        .unwrap();
        assert!(is_xnf(&d, &sigma).unwrap());
    }

    #[test]
    fn trivial_fds_never_anomalous() {
        // p.@l → p.@l is trivial and must not flag a violation even though
        // p.@l → p usually fails (the remark after Definition 8).
        let d = university_dtd();
        let sigma = XmlFdSet::parse("courses.course.@cno -> courses.course.@cno").unwrap();
        assert!(is_xnf(&d, &sigma).unwrap());
    }

    #[test]
    fn empty_sigma_is_xnf() {
        let d = university_dtd();
        assert!(is_xnf(&d, &XmlFdSet::new()).unwrap());
    }

    #[test]
    fn revised_dblp_is_in_xnf() {
        // Example 5.2's fix: year becomes an attribute of issue; FD5 turns
        // into the trivial issue → issue.@year and is dropped.
        let d = xnf_dtd::parse_dtd(
            "<!ELEMENT db (conf*)>
             <!ELEMENT conf (title, issue+)>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT issue (inproceedings+)>
             <!ATTLIST issue year CDATA #REQUIRED>
             <!ELEMENT inproceedings (author+, title, booktitle)>
             <!ATTLIST inproceedings
                 key CDATA #REQUIRED
                 pages CDATA #REQUIRED>
             <!ELEMENT author (#PCDATA)>
             <!ELEMENT booktitle (#PCDATA)>",
        )
        .unwrap();
        let sigma = XmlFdSet::parse("db.conf.title.S -> db.conf").unwrap();
        assert!(is_xnf(&d, &sigma).unwrap());
        // And the would-be FD issue → issue.@year is trivial now, hence
        // harmless even if stated.
        let sigma2 = XmlFdSet::parse(
            "db.conf.title.S -> db.conf
             db.conf.issue -> db.conf.issue.@year",
        )
        .unwrap();
        assert!(is_xnf(&d, &sigma2).unwrap());
    }

    #[test]
    fn revised_university_is_in_xnf() {
        // The Example 1.1(b) DTD with the info/number structure, FDs from
        // Example 5.1.
        let d = xnf_dtd::parse_dtd(
            "<!ELEMENT courses (course*, info*)>
             <!ELEMENT course (title, taken_by)>
             <!ATTLIST course cno CDATA #REQUIRED>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT taken_by (student*)>
             <!ELEMENT student (grade)>
             <!ATTLIST student sno CDATA #REQUIRED>
             <!ELEMENT grade (#PCDATA)>
             <!ELEMENT info (number*, name)>
             <!ELEMENT number EMPTY>
             <!ATTLIST number sno CDATA #REQUIRED>
             <!ELEMENT name (#PCDATA)>",
        )
        .unwrap();
        let sigma = XmlFdSet::parse(
            "courses.course.@cno -> courses.course
             courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student
             courses.info.number.@sno -> courses.info",
        )
        .unwrap();
        assert!(is_xnf(&d, &sigma).unwrap());
    }

    #[test]
    fn governed_is_xnf_agrees_or_errs_never_lies() {
        let d = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let truth = is_xnf(&d, &sigma).unwrap();
        // Generous budget: same verdict as ungoverned.
        let generous = Budget::builder().fuel(10_000_000).build();
        assert_eq!(is_xnf_governed(&d, &sigma, &generous).unwrap(), truth);
        // Starving budgets: every outcome is either the true verdict or a
        // structured Exhausted error — never the opposite verdict.
        for fuel in 1..200 {
            let tight = Budget::builder().fuel(fuel).build();
            match is_xnf_governed(&d, &sigma, &tight) {
                Ok(v) => assert_eq!(v, truth, "fuel={fuel} produced a wrong verdict"),
                Err(crate::CoreError::Exhausted(_)) => {}
                Err(e) => panic!("fuel={fuel}: unexpected error {e}"),
            }
        }
    }
}
