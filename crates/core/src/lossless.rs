//! Lossless decompositions — Section 6.
//!
//! The paper defines `(D₁,Σ₁) ≼ (D₂,Σ₂)` via relational algebra queries
//! `Q₁, Q₁', Q₂` making the `tuples_D` diagram commute (Proposition 8
//! proves each normalization step is lossless in this sense). This module
//! realizes the definition *constructively*: every [`Step`] of the
//! decomposition algorithm has a document-level transformation
//! ([`apply_step`]) and an inverse ([`undo_step`]); the inverse plays the
//! role of `Q₁'∘Q₂` and [`verify_lossless`] checks the diagram on a
//! concrete document — forward-transform, conformance + Σ' satisfaction,
//! backward-transform, and equality with the original as unordered trees
//! (which entails equality of the `tuples_D` relations up to node ids;
//! the node ids are exactly what `Q₂` discards).

use crate::normalize::{NormalizeResult, Step};
use crate::tuples::tuples_d;
use crate::{CoreError, Result};
use std::collections::HashMap;
use xnf_dtd::{Dtd, Path, Step as PathStep};
use xnf_xml::{NodeContent, NodeId, XmlTree};

use xnf_xml::nodes_at;

/// Deep-copies `tree` while letting `edit` adjust each node: returning
/// `false` drops the node (and its subtree).
fn rebuild(
    tree: &XmlTree,
    keep: &impl Fn(&XmlTree, NodeId) -> bool,
    extra_attrs: &HashMap<NodeId, Vec<(String, String)>>,
    drop_attrs: &HashMap<NodeId, Vec<String>>,
) -> XmlTree {
    fn copy(
        src: &XmlTree,
        dst: &mut XmlTree,
        src_node: NodeId,
        dst_node: NodeId,
        keep: &impl Fn(&XmlTree, NodeId) -> bool,
        extra_attrs: &HashMap<NodeId, Vec<(String, String)>>,
        drop_attrs: &HashMap<NodeId, Vec<String>>,
    ) {
        let dropped = drop_attrs.get(&src_node);
        for (name, value) in src.attrs(src_node) {
            if dropped.is_some_and(|d| d.iter().any(|a| a == name)) {
                continue;
            }
            dst.set_attr(dst_node, name, value);
        }
        if let Some(extra) = extra_attrs.get(&src_node) {
            for (name, value) in extra {
                dst.set_attr(dst_node, name.as_str(), value.as_str());
            }
        }
        match src.content(src_node) {
            NodeContent::Text(s) => dst.set_text(dst_node, s.clone()),
            NodeContent::Children(children) => {
                for &c in children {
                    if !keep(src, c) {
                        continue;
                    }
                    let new_child = dst.add_child(dst_node, src.label(c));
                    copy(src, dst, c, new_child, keep, extra_attrs, drop_attrs);
                }
            }
        }
    }
    let mut out = XmlTree::new(tree.label(tree.root()));
    let root = out.root();
    copy(
        tree,
        &mut out,
        tree.root(),
        root,
        keep,
        extra_attrs,
        drop_attrs,
    );
    out
}

/// The co-occurrence table of two paths: for each non-null pair
/// `(t.a, t.b)` over `tuples_D(T)`, the pairs of values.
fn co_occurrences(
    tree: &XmlTree,
    dtd: &Dtd,
    a: &Path,
    b: &Path,
) -> Result<Vec<(xnf_relational::Value, xnf_relational::Value)>> {
    let paths = dtd.paths()?;
    let pa = paths
        .resolve(a)
        .ok_or_else(|| xnf_dtd::DtdError::NoSuchPath(a.to_string()))?;
    let pb = paths
        .resolve(b)
        .ok_or_else(|| xnf_dtd::DtdError::NoSuchPath(b.to_string()))?;
    let tuples = tuples_d(tree, dtd, &paths)?;
    let mut out = Vec::new();
    for t in &tuples {
        let va = t.get(pa);
        let vb = t.get(pb);
        if !va.is_null() && !vb.is_null() {
            out.push((va.clone(), vb.clone()));
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

/// Applies one schema-transformation [`Step`] to a document that conforms
/// to the *before* DTD, producing a document for the *after* DTD.
pub fn apply_step(dtd_before: &Dtd, tree: &XmlTree, step: &Step) -> Result<XmlTree> {
    match step {
        Step::FoldText { elem_path, attr } => {
            let parent_path = elem_path.parent().expect("folded element has a parent");
            let PathStep::Elem(folded_label) = elem_path.last() else {
                unreachable!("FoldText records an element path");
            };
            let mut extra: HashMap<NodeId, Vec<(String, String)>> = HashMap::new();
            let mut drop_nodes: Vec<NodeId> = Vec::new();
            for v in nodes_at(tree, &parent_path) {
                let kids = tree.children_labelled(v, folded_label);
                let Some(&child) = kids.first() else {
                    return Err(CoreError::UnrepresentableNull {
                        path: elem_path.to_string(),
                    });
                };
                let text = tree.text(child).unwrap_or("");
                extra
                    .entry(v)
                    .or_default()
                    .push((attr.clone(), text.to_string()));
                drop_nodes.extend(kids);
            }
            Ok(rebuild(
                tree,
                &|_, n| !drop_nodes.contains(&n),
                &extra,
                &HashMap::new(),
            ))
        }
        Step::AddId { elem_path, attr } => {
            let mut extra: HashMap<NodeId, Vec<(String, String)>> = HashMap::new();
            for (i, v) in nodes_at(tree, elem_path).into_iter().enumerate() {
                extra
                    .entry(v)
                    .or_default()
                    .push((attr.clone(), format!("id{i}")));
            }
            Ok(rebuild(tree, &|_, _| true, &extra, &HashMap::new()))
        }
        Step::MoveAttribute { from, to, new_attr } => {
            // For every q-node, the value of p.@l is unique over the
            // tuples through it (q → S → p.@l); materialize via
            // co-occurrences of q and p.@l.
            let q_nodes = nodes_at(tree, to);
            let pairs = co_occurrences(tree, dtd_before, to, from)?;
            let mut value_of: HashMap<u64, String> = HashMap::new();
            for (qv, av) in pairs {
                let (xnf_relational::Value::Vert(q), xnf_relational::Value::Str(a)) = (qv, av)
                else {
                    continue;
                };
                if let Some(prev) = value_of.insert(q, a.to_string()) {
                    if prev != *value_of.get(&q).expect("just inserted") {
                        return Err(CoreError::InconsistentTuples(format!(
                            "document violates {to} -> {from}"
                        )));
                    }
                }
            }
            let p_path = from.parent().expect("attribute paths have parents");
            let PathStep::Attr(old_attr) = from.last() else {
                unreachable!("MoveAttribute records an attribute path");
            };
            let mut extra: HashMap<NodeId, Vec<(String, String)>> = HashMap::new();
            for v in q_nodes {
                let value = value_of.get(&(v.index() as u64)).ok_or_else(|| {
                    CoreError::UnrepresentableNull {
                        path: from.to_string(),
                    }
                })?;
                extra
                    .entry(v)
                    .or_default()
                    .push((new_attr.clone(), value.clone()));
            }
            let mut drops: HashMap<NodeId, Vec<String>> = HashMap::new();
            for v in nodes_at(tree, &p_path) {
                drops.entry(v).or_default().push(old_attr.to_string());
            }
            Ok(rebuild(tree, &|_, _| true, &extra, &drops))
        }
        Step::CreateElement {
            q,
            lhs_attrs,
            value_attr,
            tau,
            tau_children,
        } => {
            // Gather, per q-node, the projection of tuples_D(T) onto
            // (p₁.@l₁, …, pₙ.@lₙ, p.@l).
            let paths = dtd_before.paths()?;
            let resolve = |p: &Path| {
                paths
                    .resolve(p)
                    .ok_or_else(|| xnf_dtd::DtdError::NoSuchPath(p.to_string()))
            };
            let q_id = resolve(q)?;
            let lhs_ids: Vec<_> = lhs_attrs
                .iter()
                .map(resolve)
                .collect::<std::result::Result<_, _>>()?;
            let value_id = resolve(value_attr)?;
            let tuples = tuples_d(tree, dtd_before, &paths)?;
            // rows[q_vert] = set of (lhs values, value).
            let mut rows: HashMap<u64, Vec<(Vec<String>, String)>> = HashMap::new();
            for t in &tuples {
                let xnf_relational::Value::Vert(qv) = t.get(q_id) else {
                    continue;
                };
                let xnf_relational::Value::Str(value) = t.get(value_id) else {
                    continue; // footnote-1 null: contributes no τ entry
                };
                let mut lhs_vals = Vec::with_capacity(lhs_ids.len());
                let mut complete = true;
                for &l in &lhs_ids {
                    match t.get(l) {
                        xnf_relational::Value::Str(s) => lhs_vals.push(s.to_string()),
                        _ => {
                            complete = false;
                            break;
                        }
                    }
                }
                if !complete {
                    continue;
                }
                let entry = rows.entry(*qv).or_default();
                let row = (lhs_vals, value.to_string());
                if !entry.contains(&row) {
                    entry.push(row);
                }
            }
            // Drop @l from p-nodes; then rebuild and append τ subtrees
            // under each q-node.
            let p_path = value_attr.parent().expect("attribute paths have parents");
            let PathStep::Attr(old_attr) = value_attr.last() else {
                unreachable!("CreateElement records an attribute path");
            };
            let mut drops: HashMap<NodeId, Vec<String>> = HashMap::new();
            for v in nodes_at(tree, &p_path) {
                drops.entry(v).or_default().push(old_attr.to_string());
            }
            let mut out = rebuild(tree, &|_, _| true, &HashMap::new(), &drops);
            // Node ids survive `rebuild` only when nothing is dropped —
            // which holds here (attribute drops don't change the shape),
            // so q-node ids map 1:1 in allocation order.
            let q_nodes_src = nodes_at(tree, q);
            let q_nodes_dst = nodes_at(&out, q);
            debug_assert_eq!(q_nodes_src.len(), q_nodes_dst.len());
            let attr_names: Vec<String> = lhs_attrs
                .iter()
                .map(|p| match p.last() {
                    PathStep::Attr(a) => a.to_string(),
                    _ => unreachable!("LHS attribute paths"),
                })
                .collect();
            let PathStep::Attr(value_name) = value_attr.last() else {
                unreachable!("value path is an attribute path");
            };
            for (src, dst) in q_nodes_src.iter().zip(&q_nodes_dst) {
                let Some(entries) = rows.get(&(src.index() as u64)) else {
                    continue;
                };
                if lhs_attrs.len() == 1 {
                    // Group by value (the paper's info/number layout: all
                    // the @l₁ keys sharing one value live under one τ).
                    let mut by_value: Vec<(String, Vec<String>)> = Vec::new();
                    for (lhs_vals, value) in entries {
                        match by_value.iter_mut().find(|(v, _)| v == value) {
                            Some((_, keys)) => {
                                if !keys.contains(&lhs_vals[0]) {
                                    keys.push(lhs_vals[0].clone());
                                }
                            }
                            None => by_value.push((value.clone(), vec![lhs_vals[0].clone()])),
                        }
                    }
                    by_value.sort();
                    for (value, mut keys) in by_value {
                        keys.sort();
                        let tau_node = out.add_child(*dst, tau.as_str());
                        out.set_attr(tau_node, value_name.clone(), value);
                        for key in keys {
                            let child = out.add_child(tau_node, tau_children[0].as_str());
                            out.set_attr(child, attr_names[0].as_str(), key);
                        }
                    }
                } else {
                    // n ≠ 1: one τ node per distinct LHS combination (the
                    // safe grouping for composite determinants — see
                    // DESIGN.md).
                    let mut sorted = entries.clone();
                    sorted.sort();
                    for (lhs_vals, value) in sorted {
                        let tau_node = out.add_child(*dst, tau.as_str());
                        out.set_attr(tau_node, value_name.clone(), value);
                        for ((child_name, attr_name), v) in
                            tau_children.iter().zip(&attr_names).zip(&lhs_vals)
                        {
                            let child = out.add_child(tau_node, child_name.as_str());
                            out.set_attr(child, attr_name.as_str(), v.as_str());
                        }
                    }
                }
            }
            Ok(out)
        }
    }
}

/// Inverts one [`Step`] on a document conforming to the *after* DTD.
pub fn undo_step(dtd_after: &Dtd, tree: &XmlTree, step: &Step) -> Result<XmlTree> {
    match step {
        Step::FoldText { elem_path, attr } => {
            let parent_path = elem_path.parent().expect("folded element has a parent");
            let PathStep::Elem(folded_label) = elem_path.last() else {
                unreachable!("FoldText records an element path");
            };
            let mut drops: HashMap<NodeId, Vec<String>> = HashMap::new();
            let mut texts: HashMap<NodeId, String> = HashMap::new();
            for v in nodes_at(tree, &parent_path) {
                let value = tree
                    .attr(v, attr)
                    .ok_or_else(|| CoreError::UnrepresentableNull {
                        path: format!("{parent_path}.@{attr}"),
                    })?;
                drops.entry(v).or_default().push(attr.clone());
                texts.insert(v, value.to_string());
            }
            let mut out = rebuild(tree, &|_, _| true, &HashMap::new(), &drops);
            for (src, dst) in nodes_at(tree, &parent_path)
                .iter()
                .zip(nodes_at(&out, &parent_path))
            {
                let child = out.add_child(dst, folded_label.clone());
                let text = &texts[src];
                if !text.is_empty() {
                    out.set_text(child, text.as_str());
                }
            }
            Ok(out)
        }
        Step::AddId { elem_path, attr } => {
            let mut drops: HashMap<NodeId, Vec<String>> = HashMap::new();
            for v in nodes_at(tree, elem_path) {
                drops.entry(v).or_default().push(attr.clone());
            }
            Ok(rebuild(tree, &|_, _| true, &HashMap::new(), &drops))
        }
        Step::MoveAttribute { from, to, new_attr } => {
            // Restore @l on each p-node from the @m of any co-occurring
            // q-node (unique by q → p.@l; see Section 6).
            let p_path = from.parent().expect("attribute paths have parents");
            let PathStep::Attr(old_attr) = from.last() else {
                unreachable!("MoveAttribute records an attribute path");
            };
            let new_path = to.child_attr(new_attr.as_str());
            let pairs = co_occurrences(tree, dtd_after, &p_path, &new_path)?;
            let mut value_of: HashMap<u64, String> = HashMap::new();
            for (pv, mv) in pairs {
                let (xnf_relational::Value::Vert(p), xnf_relational::Value::Str(m)) = (pv, mv)
                else {
                    continue;
                };
                value_of.entry(p).or_insert_with(|| m.to_string());
            }
            let mut extra: HashMap<NodeId, Vec<(String, String)>> = HashMap::new();
            for v in nodes_at(tree, &p_path) {
                let value = value_of.get(&(v.index() as u64)).ok_or_else(|| {
                    CoreError::UnrepresentableNull {
                        path: from.to_string(),
                    }
                })?;
                extra
                    .entry(v)
                    .or_default()
                    .push((old_attr.to_string(), value.clone()));
            }
            let mut drops: HashMap<NodeId, Vec<String>> = HashMap::new();
            for v in nodes_at(tree, to) {
                drops.entry(v).or_default().push(new_attr.clone());
            }
            Ok(rebuild(tree, &|_, _| true, &extra, &drops))
        }
        Step::CreateElement {
            q,
            lhs_attrs,
            value_attr,
            tau,
            tau_children,
        } => {
            // Rebuild the (q-node, lhs-values) → value mapping from the τ
            // subtrees, restore @l on the matching p-nodes, drop the τs.
            let attr_names: Vec<String> = lhs_attrs
                .iter()
                .map(|p| match p.last() {
                    PathStep::Attr(a) => a.to_string(),
                    _ => unreachable!("LHS attribute paths"),
                })
                .collect();
            let PathStep::Attr(value_name) = value_attr.last() else {
                unreachable!("value path is an attribute path");
            };
            // mapping[(q_vert, lhs values)] = value.
            let mut mapping: HashMap<(u64, Vec<String>), String> = HashMap::new();
            for v in nodes_at(tree, q) {
                for &t in &tree.children_labelled(v, tau) {
                    let value = tree.attr(t, value_name).unwrap_or("").to_string();
                    if lhs_attrs.len() == 1 {
                        for &c in &tree.children_labelled(t, tau_children[0].as_str()) {
                            let key = tree.attr(c, attr_names[0].as_str()).unwrap_or("");
                            mapping
                                .insert((v.index() as u64, vec![key.to_string()]), value.clone());
                        }
                    } else {
                        let mut combo = Vec::with_capacity(tau_children.len());
                        for (child_name, attr_name) in tau_children.iter().zip(&attr_names) {
                            let c = tree
                                .children_labelled(t, child_name.as_str())
                                .first()
                                .copied();
                            combo.push(
                                c.and_then(|c| tree.attr(c, attr_name.as_str()))
                                    .unwrap_or("")
                                    .to_string(),
                            );
                        }
                        mapping.insert((v.index() as u64, combo), value.clone());
                    }
                }
            }
            // For each tuple through a p-node, look up the value.
            let paths = dtd_after.paths()?;
            let p_path = value_attr.parent().expect("attribute paths have parents");
            let resolve = |p: &Path| {
                paths
                    .resolve(p)
                    .ok_or_else(|| xnf_dtd::DtdError::NoSuchPath(p.to_string()))
            };
            let q_id = resolve(q)?;
            let p_id = resolve(&p_path)?;
            let lhs_ids: Vec<_> = lhs_attrs
                .iter()
                .map(resolve)
                .collect::<std::result::Result<_, _>>()?;
            let tuples = tuples_d(tree, dtd_after, &paths)?;
            let mut restored: HashMap<u64, String> = HashMap::new();
            for t in &tuples {
                let (xnf_relational::Value::Vert(qv), xnf_relational::Value::Vert(pv)) =
                    (t.get(q_id), t.get(p_id))
                else {
                    continue;
                };
                let mut combo = Vec::with_capacity(lhs_ids.len());
                let mut complete = true;
                for &l in &lhs_ids {
                    match t.get(l) {
                        xnf_relational::Value::Str(s) => combo.push(s.to_string()),
                        _ => {
                            complete = false;
                            break;
                        }
                    }
                }
                if !complete {
                    continue;
                }
                if let Some(value) = mapping.get(&(*qv, combo)) {
                    restored.entry(*pv).or_insert_with(|| value.clone());
                }
            }
            let mut extra: HashMap<NodeId, Vec<(String, String)>> = HashMap::new();
            for v in nodes_at(tree, &p_path) {
                let value = restored.get(&(v.index() as u64)).ok_or_else(|| {
                    CoreError::UnrepresentableNull {
                        path: value_attr.to_string(),
                    }
                })?;
                extra
                    .entry(v)
                    .or_default()
                    .push((value_name.to_string(), value.clone()));
            }
            Ok(rebuild(
                tree,
                &|t, n| t.label(n) != tau.as_str(),
                &extra,
                &HashMap::new(),
            ))
        }
    }
}

/// Forward-applies all steps of a normalization to a document.
pub fn transform_document(dtd0: &Dtd, result: &NormalizeResult, tree: &XmlTree) -> Result<XmlTree> {
    let mut current = tree.clone();
    let mut dtd_before = dtd0.clone();
    for (step, (dtd_after, _)) in result.steps.iter().zip(&result.stages) {
        current = apply_step(&dtd_before, &current, step)?;
        dtd_before = dtd_after.clone();
    }
    Ok(current)
}

/// Backward-applies all steps, reconstructing the original document.
pub fn restore_document(result: &NormalizeResult, transformed: &XmlTree) -> Result<XmlTree> {
    let mut current = transformed.clone();
    for (step, (dtd_after, _)) in result.steps.iter().zip(&result.stages).rev() {
        current = undo_step(dtd_after, &current, step)?;
    }
    Ok(current)
}

/// The outcome of a losslessness check on one document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LosslessReport {
    /// The transformed document conforms to the revised DTD.
    pub conforms: bool,
    /// The transformed document satisfies the revised Σ.
    pub satisfies_sigma: bool,
    /// The inverse transformation reconstructs the original document up to
    /// unordered-tree equivalence `≡` — the commuting `tuples_D` diagram
    /// of Section 6, realized constructively.
    pub round_trip: bool,
}

impl LosslessReport {
    /// Whether every check passed.
    pub fn ok(&self) -> bool {
        self.conforms && self.satisfies_sigma && self.round_trip
    }
}

/// Checks losslessness of a whole normalization run on a concrete
/// document: `T ⊨ (D₁, Σ₁)` must map to some `T' ⊨ (D₂, Σ₂)` from which
/// `T` is reconstructible (Proposition 8).
pub fn verify_lossless(
    dtd0: &Dtd,
    result: &NormalizeResult,
    tree: &XmlTree,
) -> Result<LosslessReport> {
    let transformed = transform_document(dtd0, result, tree)?;
    let conforms = xnf_xml::conforms(&transformed, &result.dtd).is_ok();
    let paths = result.dtd.paths()?;
    let satisfies_sigma = result
        .sigma
        .satisfied_by(&transformed, &result.dtd, &paths)?;
    let restored = restore_document(result, &transformed)?;
    let round_trip = xnf_xml::unordered_eq(&restored, tree);
    Ok(LosslessReport {
        conforms,
        satisfies_sigma,
        round_trip,
    })
}

/// The outcome of one [`Step`] of a traced losslessness check
/// (see [`verify_lossless_trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepReport {
    /// Position of the step in `result.steps`.
    pub index: usize,
    /// The step itself (cloned, so the report is self-contained).
    pub step: Step,
    /// Whether this step's stage snapshot is exact. Preprocessing batches
    /// share one post-batch `(D, Σ)` snapshot (see
    /// [`normalize`](crate::normalize::normalize)), so only the last step
    /// of a batch can be checked against its snapshot; the conformance and
    /// Σ checks of inexact steps are vacuously `true`.
    pub exact_stage: bool,
    /// The intermediate document conforms to this stage's DTD.
    pub conforms: bool,
    /// The intermediate document satisfies this stage's Σ.
    pub satisfies_sigma: bool,
    /// Undoing just this step reproduces the step's input document (up to
    /// unordered-tree equivalence).
    pub round_trip: bool,
}

impl StepReport {
    /// Whether every per-step check passed.
    pub fn ok(&self) -> bool {
        self.conforms && self.satisfies_sigma && self.round_trip
    }
}

/// Step-by-step reconstruction trace: applies each [`Step`] in turn and
/// checks, *per step*, conformance to the stage DTD, satisfaction of the
/// stage Σ, and the local round trip `undo(apply(T)) ≡ T`.
///
/// [`verify_lossless`] only reports the end-to-end verdict; when it fails,
/// this trace localizes the first offending step — the fuzz driver attaches
/// it to failure reports.
pub fn verify_lossless_trace(
    dtd0: &Dtd,
    result: &NormalizeResult,
    tree: &XmlTree,
) -> Result<Vec<StepReport>> {
    let mut reports = Vec::with_capacity(result.steps.len());
    let mut current = tree.clone();
    let mut dtd_before = dtd0.clone();
    for (index, (step, (dtd_after, sigma_after))) in
        result.steps.iter().zip(&result.stages).enumerate()
    {
        let next = apply_step(&dtd_before, &current, step)?;
        // Consecutive identical snapshots mark a batched preprocessing
        // group: only its last step sees the state the snapshot records.
        let exact_stage = result
            .stages
            .get(index + 1)
            .is_none_or(|(d, s)| d != dtd_after || s != sigma_after);
        let (conforms, satisfies_sigma) = if exact_stage {
            let paths = dtd_after.paths()?;
            (
                xnf_xml::conforms(&next, dtd_after).is_ok(),
                sigma_after.satisfied_by(&next, dtd_after, &paths)?,
            )
        } else {
            (true, true)
        };
        let undone = undo_step(dtd_after, &next, step)?;
        let round_trip = xnf_xml::unordered_eq(&undone, &current);
        reports.push(StepReport {
            index,
            step: step.clone(),
            exact_stage,
            conforms,
            satisfies_sigma,
            round_trip,
        });
        current = next;
        dtd_before = dtd_after.clone();
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{XmlFdSet, DBLP_FDS, UNIVERSITY_FDS};
    use crate::fixtures::{dblp_doc, dblp_dtd, figure_1a, university_dtd};
    use crate::normalize::{normalize, NormalizeOptions};

    #[test]
    fn dblp_document_transformation_matches_paper() {
        let dtd = dblp_dtd();
        let sigma = XmlFdSet::parse(DBLP_FDS).unwrap();
        let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
        let doc = dblp_doc();
        let transformed = transform_document(&dtd, &result, &doc).unwrap();
        // year now sits on issue.
        let issue = transformed.descend(&["conf", "issue"]).unwrap();
        assert_eq!(transformed.attr(issue, "year"), Some("2001"));
        let inproc = transformed
            .descend(&["conf", "issue", "inproceedings"])
            .unwrap();
        assert_eq!(transformed.attr(inproc, "year"), None);
        assert!(xnf_xml::conforms(&transformed, &result.dtd).is_ok());
    }

    #[test]
    fn dblp_round_trip_is_lossless() {
        let dtd = dblp_dtd();
        let sigma = XmlFdSet::parse(DBLP_FDS).unwrap();
        let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
        let report = verify_lossless(&dtd, &result, &dblp_doc()).unwrap();
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn university_document_transformation_matches_figure_1b() {
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
        let doc = figure_1a();
        let transformed = transform_document(&dtd, &result, &doc).unwrap();
        assert!(xnf_xml::conforms(&transformed, &result.dtd).is_ok());
        // Students keep sno, lose the name child.
        let student = transformed
            .descend(&["course", "taken_by", "student"])
            .unwrap();
        assert!(transformed.children_labelled(student, "name").is_empty());
        assert!(transformed.attr(student, "sno").is_some());
        // Info nodes under the root: one for Deere {st1}, one for Smith
        // {st2, st3} — exactly the grouping of Figure 1(b).
        let root = transformed.root();
        let infos = transformed.children_labelled(root, "info");
        assert_eq!(infos.len(), 2);
        let mut summary: Vec<(String, Vec<String>)> = infos
            .iter()
            .map(|&i| {
                let name = transformed.attr(i, "name").unwrap().to_string();
                let mut snos: Vec<String> = transformed
                    .children(i)
                    .iter()
                    .map(|&c| transformed.attr(c, "sno").unwrap().to_string())
                    .collect();
                snos.sort();
                (name, snos)
            })
            .collect();
        summary.sort();
        assert_eq!(
            summary,
            vec![
                ("Deere".to_string(), vec!["st1".to_string()]),
                (
                    "Smith".to_string(),
                    vec!["st2".to_string(), "st3".to_string()]
                ),
            ]
        );
    }

    #[test]
    fn university_round_trip_is_lossless() {
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
        let report = verify_lossless(&dtd, &result, &figure_1a()).unwrap();
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn round_trip_preserves_tuples_projection() {
        // The Q₂-style check: the string-valued projection of tuples_D(T)
        // is preserved through the round trip.
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
        let doc = figure_1a();
        let transformed = transform_document(&dtd, &result, &doc).unwrap();
        let restored = restore_document(&result, &transformed).unwrap();
        let ps = dtd.paths().unwrap();
        let rel_before = crate::tuples::tuples_relation(&doc, &dtd, &ps).unwrap();
        let rel_after = crate::tuples::tuples_relation(&restored, &dtd, &ps).unwrap();
        let string_cols: Vec<String> = ps
            .iter()
            .filter(|&p| !ps.is_element_path(p))
            .map(|p| ps.format(p))
            .collect();
        assert_eq!(
            rel_before.project(&string_cols).unwrap(),
            rel_after.project(&string_cols).unwrap()
        );
    }

    #[test]
    fn trace_localizes_every_step_as_lossless() {
        for (dtd, fds, doc) in [
            (university_dtd(), UNIVERSITY_FDS, figure_1a()),
            (dblp_dtd(), DBLP_FDS, dblp_doc()),
        ] {
            let sigma = XmlFdSet::parse(fds).unwrap();
            let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
            let trace = verify_lossless_trace(&dtd, &result, &doc).unwrap();
            assert_eq!(trace.len(), result.steps.len());
            for report in &trace {
                assert!(report.ok(), "step {} failed: {report:?}", report.index);
            }
        }
    }

    #[test]
    fn lossless_on_larger_synthetic_document() {
        // More courses, shared student names, shared numbers across
        // courses.
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
        let mut xml = String::from("<courses>");
        for c in 0..6 {
            xml.push_str(&format!(
                r#"<course cno="c{c}"><title>T{c}</title><taken_by>"#
            ));
            for s in 0..4 {
                let sno = (c + s) % 8;
                xml.push_str(&format!(
                    r#"<student sno="st{sno}"><name>N{}</name><grade>g{c}{s}</grade></student>"#,
                    sno % 3
                ));
            }
            xml.push_str("</taken_by></course>");
        }
        xml.push_str("</courses>");
        let doc = xnf_xml::parse(&xml).unwrap();
        let ps = dtd.paths().unwrap();
        assert!(sigma.satisfied_by(&doc, &dtd, &ps).unwrap());
        let report = verify_lossless(&dtd, &result, &doc).unwrap();
        assert!(report.ok(), "{report:?}");
    }
}
