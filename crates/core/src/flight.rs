//! A shared, sharded, single-flight result cache: the serving-layer
//! complement of the per-run [`ImplicationCache`].
//!
//! `xnf-serve` handles many concurrent requests over a small set of hot
//! schemas, so the expensive artifacts — a normalization trace, an XNF
//! verdict, a full analysis — should be computed **once per distinct
//! `(D, Σ)` and operation** and served from memory thereafter. This
//! module provides the machinery:
//!
//! * [`spec_cache_key`] — a canonical content key for `(D, Σ)`: the
//!   parsed DTD and FD set are re-rendered through their canonical
//!   `Display` forms, so two textually different but semantically
//!   identical specs (whitespace, comments, FD order is *not*
//!   canonicalized by design — `Σ` is ordered in this system) share an
//!   entry exactly when the engine would treat them identically.
//! * [`ShardedCache`] — `N`-way sharded map with per-shard locks, an
//!   LRU byte cap bounding the resident set, and **single-flight**
//!   computation: concurrent requests for the same key coalesce onto
//!   one computing leader while the rest block on the result. A failed
//!   or exhausted computation caches *nothing* — waiters observe the
//!   miss and retry as new leaders, so a fault can never poison the
//!   cache with a partial verdict.
//!
//! The cache stores opaque `Arc<V>` values plus a caller-supplied byte
//! size (for the LRU cap); it deliberately knows nothing about HTTP.
//!
//! [`ImplicationCache`]: crate::ImplicationCache

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::fd::XmlFdSet;
use xnf_dtd::Dtd;

/// Canonical content key for a `(D, Σ)` pair under a named operation
/// (and an operation-options fingerprint, e.g. `"sigma-only"` — the
/// empty string for defaults). Built from the *parsed* spec's canonical
/// renderings, so formatting differences in the source text coalesce.
pub fn spec_cache_key(op: &str, dtd: &Dtd, sigma: &XmlFdSet, options: &str) -> String {
    format!("{op}\u{1}{options}\u{1}{dtd}\u{1}{sigma}")
}

/// Aggregate counters of a [`ShardedCache`] since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a resident entry.
    pub hits: u64,
    /// Lookups that computed (as leader) or waited on a leader that
    /// failed (and then led a retry).
    pub misses: u64,
    /// Lookups that blocked on another request's in-flight computation
    /// and received its result (coalesced work).
    pub joined: u64,
    /// Entries evicted by the LRU byte cap.
    pub evictions: u64,
    /// Resident payload bytes across all shards.
    pub resident_bytes: u64,
    /// Resident entry count across all shards.
    pub entries: u64,
}

/// One in-flight computation: waiters block on the condvar until the
/// leader publishes `Some(result)` (success) or `None` (failure — the
/// entry is gone and a waiter must retry as the new leader).
struct Flight<V> {
    done: Mutex<Option<Option<Arc<V>>>>,
    cv: Condvar,
}

enum Slot<V> {
    Pending(Arc<Flight<V>>),
    Ready {
        value: Arc<V>,
        bytes: usize,
        last_used: u64,
    },
}

struct Shard<V> {
    map: HashMap<String, Slot<V>>,
    resident_bytes: usize,
}

/// A sharded, byte-capped, single-flight cache of `Arc<V>` results
/// keyed by [`spec_cache_key`]-style strings. See the module docs.
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// Per-shard byte cap (total cap divided across shards), so one
    /// global lock is never needed for eviction.
    shard_byte_cap: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    joined: AtomicU64,
    evictions: AtomicU64,
}

impl<V> std::fmt::Debug for ShardedCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("shard_byte_cap", &self.shard_byte_cap)
            .finish_non_exhaustive()
    }
}

/// Publishes a flight's verdict and wakes every waiter (free function
/// so the panic-abort guard in `lead` can call it without a `Self`
/// type).
fn publish_flight<V>(flight: &Flight<V>, result: Option<Arc<V>>) {
    if let Ok(mut done) = flight.done.lock() {
        *done = Some(result);
    }
    flight.cv.notify_all();
}

fn shard_of(key: &str, n: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % n
}

impl<V> ShardedCache<V> {
    /// A cache with `shards` independent shards and a total resident
    /// byte cap of `byte_cap` (split evenly across shards; each shard
    /// evicts LRU entries once its slice would overflow). A `byte_cap`
    /// of 0 still caches in-flight computations (single-flight keeps
    /// coalescing) but retains no completed entries.
    pub fn new(shards: usize, byte_cap: usize) -> ShardedCache<V> {
        let n = shards.max(1);
        ShardedCache {
            shards: (0..n)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        resident_bytes: 0,
                    })
                })
                .collect(),
            shard_byte_cap: byte_cap / n,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            joined: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`; on a miss, runs `compute` (as the single leader —
    /// concurrent callers with the same key block and share the result).
    /// `compute` returns the value plus its resident byte size. On
    /// `Err`, nothing is cached and every waiter retries leadership, so
    /// no error and no partial result ever becomes resident.
    ///
    /// Returns the value and whether it was served from cache (a
    /// coalesced join counts as a hit for reporting purposes).
    ///
    /// # Errors
    ///
    /// Propagates the leader's `compute` error to the leader only;
    /// waiters retry and surface their own outcome.
    pub fn get_or_compute<E>(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<(V, usize), E>,
    ) -> Result<(Arc<V>, bool), E> {
        let shard_ix = shard_of(key, self.shards.len());
        loop {
            let flight = {
                // A poisoned shard (a panicking compute elsewhere)
                // degrades to compute-without-caching: correctness
                // over reuse.
                let Ok(mut shard) = self.shards[shard_ix].lock() else {
                    let (v, _) = compute()?;
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::new(v), false));
                };
                match shard.map.get_mut(key) {
                    Some(Slot::Ready {
                        value, last_used, ..
                    }) => {
                        *last_used = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((Arc::clone(value), true));
                    }
                    Some(Slot::Pending(f)) => Arc::clone(f),
                    None => {
                        // Claim leadership: install the flight, drop the
                        // shard lock, compute outside it.
                        let flight = Arc::new(Flight {
                            done: Mutex::new(None),
                            cv: Condvar::new(),
                        });
                        shard
                            .map
                            .insert(key.to_string(), Slot::Pending(Arc::clone(&flight)));
                        drop(shard);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        return self.lead(key, shard_ix, &flight, compute);
                    }
                }
            };
            // Joiner path: wait for the leader's verdict; on a failed
            // leader, loop and contend for leadership again.
            if let Some(value) = self.join(&flight) {
                self.joined.fetch_add(1, Ordering::Relaxed);
                return Ok((value, true));
            }
        }
    }

    fn lead<E>(
        &self,
        key: &str,
        shard_ix: usize,
        flight: &Arc<Flight<V>>,
        compute: impl FnOnce() -> Result<(V, usize), E>,
    ) -> Result<(Arc<V>, bool), E> {
        // If `compute` panics, the unwind must not strand the pending
        // slot (and the waiters parked on it): this guard removes the
        // slot and publishes a failure so every waiter retries. It is
        // disarmed on the normal path, where the code below does the
        // same bookkeeping with the actual outcome in hand.
        struct Abort<'a, V> {
            shard: &'a Mutex<Shard<V>>,
            key: &'a str,
            flight: &'a Arc<Flight<V>>,
            armed: bool,
        }
        impl<V> Drop for Abort<'_, V> {
            fn drop(&mut self) {
                if !self.armed {
                    return;
                }
                if let Ok(mut shard) = self.shard.lock() {
                    shard.map.remove(self.key);
                }
                publish_flight(self.flight, None);
            }
        }
        let mut abort = Abort {
            shard: &self.shards[shard_ix],
            key,
            flight,
            armed: true,
        };
        let outcome = compute();
        abort.armed = false;
        drop(abort);
        let Ok(mut shard) = self.shards[shard_ix].lock() else {
            // Can't publish; wake waiters with a failure so they
            // retry rather than hang, then surface our own outcome.
            Self::publish(flight, None);
            return outcome.map(|(v, _)| (Arc::new(v), false));
        };
        match outcome {
            Ok((value, bytes)) => {
                let value = Arc::new(value);
                if bytes <= self.shard_byte_cap {
                    self.make_room(&mut shard, bytes, key);
                    shard.map.insert(
                        key.to_string(),
                        Slot::Ready {
                            value: Arc::clone(&value),
                            bytes,
                            last_used: self.clock.fetch_add(1, Ordering::Relaxed) + 1,
                        },
                    );
                    shard.resident_bytes += bytes;
                } else {
                    // Oversized result: serve it, cache nothing.
                    shard.map.remove(key);
                }
                drop(shard);
                Self::publish(flight, Some(Arc::clone(&value)));
                Ok((value, false))
            }
            Err(e) => {
                // Remove the pending slot so the failure is not
                // observable later — no poisoned entries.
                shard.map.remove(key);
                drop(shard);
                Self::publish(flight, None);
                Err(e)
            }
        }
    }

    /// Evicts least-recently-used entries until `bytes` more fit under
    /// the shard cap. Pending flights are never evicted; `incoming_key`
    /// keeps the leader's own pending slot out of consideration.
    fn make_room(&self, shard: &mut Shard<V>, bytes: usize, incoming_key: &str) {
        while shard.resident_bytes + bytes > self.shard_byte_cap {
            let victim = shard
                .map
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready { last_used, .. } if k != incoming_key => {
                        Some((*last_used, k.clone()))
                    }
                    _ => None,
                })
                .min();
            let Some((_, victim_key)) = victim else {
                return;
            };
            if let Some(Slot::Ready { bytes: freed, .. }) = shard.map.remove(&victim_key) {
                shard.resident_bytes -= freed;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn publish(flight: &Arc<Flight<V>>, result: Option<Arc<V>>) {
        publish_flight(flight, result);
    }

    /// Blocks until the flight's leader publishes; `None` means the
    /// leader failed and the caller should retry. The published verdict
    /// is *read*, never taken: any number of waiters can join one
    /// flight, and each must observe the same outcome.
    fn join(&self, flight: &Arc<Flight<V>>) -> Option<Arc<V>> {
        let mut done = flight.done.lock().ok()?;
        loop {
            if let Some(outcome) = done.as_ref() {
                return outcome.clone();
            }
            done = flight.cv.wait(done).ok()?;
        }
    }

    /// Point-in-time counters (resident figures summed across shards).
    pub fn stats(&self) -> CacheStats {
        let mut resident_bytes = 0u64;
        let mut entries = 0u64;
        for shard in &self.shards {
            if let Ok(s) = shard.lock() {
                resident_bytes += s.resident_bytes as u64;
                entries += s
                    .map
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready { .. }))
                    .count() as u64;
            }
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            joined: self.joined.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_waiter_of_one_flight_receives_the_result() {
        // One slow leader, several joiners on the same key: all of
        // them must return the published value (a regression here
        // hangs — the old `take()`-based join woke only one waiter).
        let cache: Arc<ShardedCache<String>> = Arc::new(ShardedCache::new(2, 1 << 20));
        let gate = Arc::new(std::sync::Barrier::new(4));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let cache = Arc::clone(&cache);
            let gate = Arc::clone(&gate);
            handles.push(std::thread::spawn(move || {
                gate.wait();
                let (v, _) = cache
                    .get_or_compute("k", || {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        Ok::<_, ()>(("slow".to_string(), 4))
                    })
                    .unwrap();
                (*v).clone()
            }));
        }
        gate.wait();
        for h in handles {
            assert_eq!(h.join().unwrap(), "slow");
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1, "{s:?}");
        assert_eq!(s.hits + s.joined, 2, "{s:?}");
    }

    #[test]
    fn a_panicking_leader_does_not_strand_waiters() {
        let cache: Arc<ShardedCache<String>> = Arc::new(ShardedCache::new(1, 1 << 20));
        let gate = Arc::new(std::sync::Barrier::new(2));
        // Leader: panics mid-compute.
        let leader = {
            let cache = Arc::clone(&cache);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = cache.get_or_compute::<()>("k", || {
                        gate.wait();
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        panic!("leader dies")
                    });
                }));
            })
        };
        // Waiter: joins the pending flight, must not hang, and must be
        // able to win leadership on retry.
        gate.wait();
        let (v, hit) = cache
            .get_or_compute("k", || Ok::<_, ()>(("recovered".to_string(), 9)))
            .unwrap();
        assert_eq!(*v, "recovered");
        assert!(!hit);
        leader.join().unwrap();
        // No partial entry: the resident value is the waiter's.
        let (again, hit) = cache
            .get_or_compute("k", || Err::<(String, usize), &str>("cached"))
            .unwrap();
        assert!(hit);
        assert_eq!(*again, "recovered");
    }

    #[test]
    fn hit_after_miss_returns_the_same_arc() {
        let cache: ShardedCache<String> = ShardedCache::new(8, 1 << 20);
        let (a, hit) = cache
            .get_or_compute("k", || Ok::<_, ()>(("value".to_string(), 5)))
            .unwrap();
        assert!(!hit);
        let (b, hit) = cache
            .get_or_compute("k", || Err::<(String, usize), &str>("must not recompute"))
            .unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.resident_bytes, 5);
    }

    #[test]
    fn errors_are_never_cached() {
        let cache: ShardedCache<String> = ShardedCache::new(2, 1 << 20);
        let err = cache
            .get_or_compute("k", || Err::<(String, usize), _>("boom"))
            .unwrap_err();
        assert_eq!(err, "boom");
        // The next lookup computes fresh and can succeed.
        let (v, hit) = cache
            .get_or_compute("k", || Ok::<_, &str>(("ok".to_string(), 2)))
            .unwrap();
        assert!(!hit);
        assert_eq!(*v, "ok");
    }

    #[test]
    fn lru_byte_cap_evicts_oldest() {
        // One shard so the cap is exact: room for two 4-byte entries.
        let cache: ShardedCache<String> = ShardedCache::new(1, 8);
        for key in ["a", "b"] {
            cache
                .get_or_compute(key, || Ok::<_, ()>((key.repeat(4), 4)))
                .unwrap();
        }
        // Touch "a" so "b" is the LRU victim when "c" arrives.
        let (_, hit) = cache
            .get_or_compute("a", || Ok::<_, ()>((String::new(), 0)))
            .unwrap();
        assert!(hit, "touching a resident entry must not recompute");
        cache
            .get_or_compute("c", || Ok::<_, ()>(("cccc".to_string(), 4)))
            .unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.resident_bytes, 8);
        // "a" survived, "b" was evicted.
        let (_, hit_a) = cache
            .get_or_compute("a", || Ok::<_, ()>(("resident".to_string(), 4)))
            .unwrap();
        assert!(hit_a);
        let (_, hit_b) = cache
            .get_or_compute("b", || Ok::<_, ()>(("fresh".to_string(), 4)))
            .unwrap();
        assert!(!hit_b);
    }

    #[test]
    fn oversized_results_are_served_but_not_resident() {
        let cache: ShardedCache<String> = ShardedCache::new(1, 4);
        let (v, hit) = cache
            .get_or_compute("big", || Ok::<_, ()>(("x".repeat(100), 100)))
            .unwrap();
        assert!(!hit);
        assert_eq!(v.len(), 100);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn concurrent_lookups_single_flight() {
        let cache: Arc<ShardedCache<String>> = Arc::new(ShardedCache::new(4, 1 << 20));
        let computed = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let (v, _) = cache
                        .get_or_compute("hot", || {
                            computed.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough that the
                            // other threads join rather than race past.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            Ok::<_, ()>(("shared".to_string(), 6))
                        })
                        .unwrap();
                    assert_eq!(*v, "shared");
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "exactly one leader");
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.joined + s.hits, 7);
    }

    #[test]
    fn failed_leader_hands_off_to_a_waiter() {
        let cache: Arc<ShardedCache<String>> = Arc::new(ShardedCache::new(1, 1 << 20));
        let attempts = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let ok = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let attempts = Arc::clone(&attempts);
                let barrier = Arc::clone(&barrier);
                let ok = Arc::clone(&ok);
                scope.spawn(move || {
                    barrier.wait();
                    let r = cache.get_or_compute("k", || {
                        let n = attempts.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        if n == 0 {
                            Err("first leader fails")
                        } else {
                            Ok(("recovered".to_string(), 9))
                        }
                    });
                    if let Ok((v, _)) = r {
                        assert_eq!(*v, "recovered");
                        ok.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        // Exactly one caller saw the injected failure; everyone else
        // got the recovered value (retried leadership or joined it).
        assert_eq!(ok.load(Ordering::SeqCst), 3);
        assert!(attempts.load(Ordering::SeqCst) >= 2);
    }

    #[test]
    fn spec_cache_key_is_canonical_over_formatting() {
        let a = xnf_dtd::parse_dtd("<!ELEMENT r (a*)><!ELEMENT a EMPTY>").unwrap();
        let b = xnf_dtd::parse_dtd("<!-- comment -->\n<!ELEMENT r  ( a* ) >\n<!ELEMENT a EMPTY>")
            .unwrap();
        let sigma = XmlFdSet::parse("r.a -> r\n").unwrap();
        let ka = spec_cache_key("normalize", &a, &sigma, "");
        let kb = spec_cache_key("normalize", &b, &sigma, "");
        assert_eq!(ka, kb);
        // Operation and options are part of the key.
        assert_ne!(ka, spec_cache_key("analyze", &a, &sigma, ""));
        assert_ne!(ka, spec_cache_key("normalize", &a, &sigma, "sigma-only"));
    }
}
