//! Functional dependencies for XML — Section 4.
//!
//! An FD over a DTD `D` is `S₁ → S₂` with `S₁, S₂` finite non-empty sets
//! of paths. A tree `T ◁ D` satisfies it iff for all
//! `t₁, t₂ ∈ tuples_D(T)`: `t₁.S₁ = t₂.S₁` and `t₁.S₁ ≠ ⊥` imply
//! `t₁.S₂ = t₂.S₂` — the standard semantics of FDs over relations with
//! nulls, instantiated on the tree-tuple relation.

use crate::tuples::tuples_d;
use crate::{CoreError, Result};
use std::fmt;
use std::str::FromStr;
use xnf_dtd::{Dtd, Path, PathId, PathSet};
use xnf_xml::XmlTree;

/// A functional dependency `S₁ → S₂` over owned, DTD-independent paths.
///
/// Paths are kept sorted and deduplicated, so equal FDs compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XmlFd {
    lhs: Vec<Path>,
    rhs: Vec<Path>,
}

impl XmlFd {
    /// Creates `lhs → rhs`. Fails if either side is empty.
    pub fn new(
        lhs: impl IntoIterator<Item = Path>,
        rhs: impl IntoIterator<Item = Path>,
    ) -> Result<XmlFd> {
        let mut lhs: Vec<Path> = lhs.into_iter().collect();
        let mut rhs: Vec<Path> = rhs.into_iter().collect();
        lhs.sort();
        lhs.dedup();
        rhs.sort();
        rhs.dedup();
        if lhs.is_empty() || rhs.is_empty() {
            return Err(CoreError::EmptyFd);
        }
        Ok(XmlFd { lhs, rhs })
    }

    /// Parses `"p1, p2 -> q1, q2"` using the dotted path syntax
    /// (`courses.course.@cno`).
    pub fn parse(s: &str) -> Result<XmlFd> {
        s.parse()
    }

    /// The left-hand side `S₁`.
    pub fn lhs(&self) -> &[Path] {
        &self.lhs
    }

    /// The right-hand side `S₂`.
    pub fn rhs(&self) -> &[Path] {
        &self.rhs
    }

    /// Splits into FDs with singleton right-hand sides (equivalent by the
    /// union rule; Section 7 assumes this form).
    pub fn split_rhs(&self) -> Vec<XmlFd> {
        self.rhs
            .iter()
            .map(|p| XmlFd {
                lhs: self.lhs.clone(),
                rhs: vec![p.clone()],
            })
            .collect()
    }

    /// Resolves both sides against an enumerated path set.
    pub fn resolve(&self, paths: &PathSet) -> Result<ResolvedFd> {
        let resolve_side = |side: &[Path]| -> Result<Vec<PathId>> {
            let mut out = Vec::with_capacity(side.len());
            for p in side {
                out.push(
                    paths
                        .resolve(p)
                        .ok_or_else(|| xnf_dtd::DtdError::NoSuchPath(p.to_string()))?,
                );
            }
            out.sort();
            out.dedup();
            Ok(out)
        };
        Ok(ResolvedFd {
            lhs: resolve_side(&self.lhs)?,
            rhs: resolve_side(&self.rhs)?,
        })
    }

    /// Whether `T` satisfies this FD (computes `tuples_D(T)`).
    pub fn satisfied_by(&self, tree: &XmlTree, dtd: &Dtd, paths: &PathSet) -> Result<bool> {
        let resolved = self.resolve(paths)?;
        let tuples = tuples_d(tree, dtd, paths)?;
        Ok(resolved.check_tuples(&tuples))
    }
}

impl fmt::Display for XmlFd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let join = |side: &[Path]| {
            side.iter()
                .map(Path::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        };
        write!(f, "{} -> {}", join(&self.lhs), join(&self.rhs))
    }
}

impl FromStr for XmlFd {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<XmlFd> {
        let (lhs, rhs) = s
            .split_once("->")
            .ok_or_else(|| CoreError::BadFdPath(format!("`{s}` has no `->`")))?;
        let parse_side = |side: &str| -> Result<Vec<Path>> {
            side.split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(|p| p.parse::<Path>().map_err(CoreError::from))
                .collect()
        };
        XmlFd::new(parse_side(lhs)?, parse_side(rhs)?)
    }
}

/// An FD resolved to dense path ids of one [`PathSet`]. The sides are
/// sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResolvedFd {
    /// Left-hand-side path ids.
    pub lhs: Vec<PathId>,
    /// Right-hand-side path ids.
    pub rhs: Vec<PathId>,
}

impl ResolvedFd {
    /// Creates a resolved FD directly from path ids.
    pub fn from_ids(
        lhs: impl IntoIterator<Item = PathId>,
        rhs: impl IntoIterator<Item = PathId>,
    ) -> ResolvedFd {
        let mut lhs: Vec<PathId> = lhs.into_iter().collect();
        let mut rhs: Vec<PathId> = rhs.into_iter().collect();
        lhs.sort();
        lhs.dedup();
        rhs.sort();
        rhs.dedup();
        ResolvedFd { lhs, rhs }
    }

    /// Converts back to an owned-path FD, re-establishing [`XmlFd`]'s
    /// sorted-path invariant (path-id order and path order differ, and an
    /// unsorted side would make equal FDs compare unequal).
    pub fn to_fd(&self, paths: &PathSet) -> XmlFd {
        XmlFd::new(
            self.lhs.iter().map(|&p| paths.path(p)),
            self.rhs.iter().map(|&p| paths.path(p)),
        )
        .expect("resolved FDs have non-empty sides")
    }

    /// Checks the Section 4 satisfaction condition on a materialized tuple
    /// set.
    ///
    /// Tuples with a fully non-null LHS are hash-grouped by their LHS
    /// projection; the FD holds iff every group agrees on the RHS
    /// projection — `O(n·(|S₁|+|S₂|))` instead of the naive pairwise
    /// `O(n²)`. Tuples with a null on the LHS never participate
    /// (the `t₁.S₁ ≠ ⊥` guard of the definition).
    pub fn check_tuples(&self, tuples: &[crate::tuple::TreeTuple]) -> bool {
        use std::collections::HashMap;
        use xnf_relational::Value;
        let mut witness: HashMap<Vec<&Value>, Vec<&Value>> = HashMap::new();
        for t in tuples {
            if !t.non_null_on(&self.lhs) {
                continue;
            }
            let key: Vec<&Value> = self.lhs.iter().map(|&p| t.get(p)).collect();
            let rhs: Vec<&Value> = self.rhs.iter().map(|&p| t.get(p)).collect();
            match witness.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(rhs);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != rhs {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// A set of XML FDs, with convenience constructors and bulk operations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct XmlFdSet {
    fds: Vec<XmlFd>,
}

impl XmlFdSet {
    /// The empty set.
    pub fn new() -> XmlFdSet {
        XmlFdSet::default()
    }

    /// Builds from FDs, deduplicating.
    pub fn from_fds(fds: impl IntoIterator<Item = XmlFd>) -> XmlFdSet {
        let mut fds: Vec<XmlFd> = fds.into_iter().collect();
        fds.sort();
        fds.dedup();
        XmlFdSet { fds }
    }

    /// Parses a newline- or semicolon-separated list of FDs in the text
    /// syntax; `#`-prefixed lines are comments.
    pub fn parse(input: &str) -> Result<XmlFdSet> {
        let mut fds = Vec::new();
        for line in input.split(['\n', ';']) {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            fds.push(line.parse()?);
        }
        Ok(XmlFdSet::from_fds(fds))
    }

    /// Adds an FD (keeping the set sorted and deduplicated).
    pub fn push(&mut self, fd: XmlFd) {
        if let Err(ix) = self.fds.binary_search(&fd) {
            self.fds.insert(ix, fd);
        }
    }

    /// The FDs, sorted.
    pub fn iter(&self) -> impl Iterator<Item = &XmlFd> {
        self.fds.iter()
    }

    /// Number of FDs.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Resolves every FD against a path set, in a canonical *structural*
    /// order: sorted by `(lhs, rhs)` path ids and deduplicated. The chase
    /// scans Σ in this order when picking case-split pivots, so it must
    /// not depend on name spellings — the set's own textual order sorts
    /// FDs lexicographically by path names and is not rename-equivariant.
    pub fn resolve(&self, paths: &PathSet) -> Result<Vec<ResolvedFd>> {
        let mut out: Vec<ResolvedFd> = self
            .fds
            .iter()
            .map(|fd| fd.resolve(paths))
            .collect::<Result<_>>()?;
        out.sort_by(|a, b| (&a.lhs, &a.rhs).cmp(&(&b.lhs, &b.rhs)));
        out.dedup();
        Ok(out)
    }

    /// Whether `T` satisfies every FD in the set (`T ⊨ Σ`), sharing one
    /// `tuples_D(T)` computation.
    pub fn satisfied_by(&self, tree: &XmlTree, dtd: &Dtd, paths: &PathSet) -> Result<bool> {
        let resolved = self.resolve(paths)?;
        let tuples = tuples_d(tree, dtd, paths)?;
        Ok(resolved.iter().all(|fd| fd.check_tuples(&tuples)))
    }
}

impl fmt::Display for XmlFdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for fd in &self.fds {
            writeln!(f, "{fd}")?;
        }
        Ok(())
    }
}

impl FromIterator<XmlFd> for XmlFdSet {
    fn from_iter<I: IntoIterator<Item = XmlFd>>(iter: I) -> Self {
        XmlFdSet::from_fds(iter)
    }
}

/// The FDs (FD1)–(FD3) of Example 4.1, in the text syntax.
pub const UNIVERSITY_FDS: &str = "\
courses.course.@cno -> courses.course
courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student
courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S";

/// The FDs (FD4)–(FD5) of Example 5.2, in the text syntax.
pub const DBLP_FDS: &str = "\
db.conf.title.S -> db.conf
db.conf.issue -> db.conf.issue.inproceedings.@year";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{dblp_doc, dblp_dtd, figure_1a, university_dtd};

    #[test]
    fn parse_and_display_roundtrip() {
        let fd: XmlFd =
            "courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student"
                .parse()
                .unwrap();
        assert_eq!(fd.lhs().len(), 2);
        let rendered = fd.to_string();
        let reparsed: XmlFd = rendered.parse().unwrap();
        assert_eq!(fd, reparsed);
    }

    #[test]
    fn empty_sides_rejected() {
        assert!(matches!(" -> a".parse::<XmlFd>(), Err(CoreError::EmptyFd)));
        assert!("no arrow".parse::<XmlFd>().is_err());
    }

    #[test]
    fn example_4_1_fds_hold_on_figure_1a() {
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let t = figure_1a();
        let fds = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        assert_eq!(fds.len(), 3);
        assert!(fds.satisfied_by(&t, &d, &ps).unwrap());
        for fd in fds.iter() {
            assert!(fd.satisfied_by(&t, &d, &ps).unwrap(), "{fd} should hold");
        }
    }

    #[test]
    fn fd3_violation_detected() {
        // Change one of st1's names: FD3 (sno → name.S) breaks.
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let t = xnf_xml::parse(
            r#"<courses>
              <course cno="csc200"><title>A</title><taken_by>
                <student sno="st1"><name>Deere</name><grade>A+</grade></student>
              </taken_by></course>
              <course cno="mat100"><title>B</title><taken_by>
                <student sno="st1"><name>Doe</name><grade>A-</grade></student>
              </taken_by></course>
            </courses>"#,
        )
        .unwrap();
        let fd3: XmlFd =
            "courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S"
                .parse()
                .unwrap();
        assert!(!fd3.satisfied_by(&t, &d, &ps).unwrap());
        // FD1 still holds.
        let fd1: XmlFd = "courses.course.@cno -> courses.course".parse().unwrap();
        assert!(fd1.satisfied_by(&t, &d, &ps).unwrap());
    }

    #[test]
    fn fd1_key_violation_detected() {
        // Two course elements with the same cno violate FD1 (node equality
        // on the RHS).
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let t = xnf_xml::parse(
            r#"<courses>
              <course cno="csc200"><title>A</title><taken_by/></course>
              <course cno="csc200"><title>B</title><taken_by/></course>
            </courses>"#,
        )
        .unwrap();
        let fd1: XmlFd = "courses.course.@cno -> courses.course".parse().unwrap();
        assert!(!fd1.satisfied_by(&t, &d, &ps).unwrap());
    }

    #[test]
    fn dblp_fds_hold() {
        let d = dblp_dtd();
        let ps = d.paths().unwrap();
        let t = dblp_doc();
        let fds = XmlFdSet::parse(DBLP_FDS).unwrap();
        assert!(fds.satisfied_by(&t, &d, &ps).unwrap());
    }

    #[test]
    fn dblp_fd5_violation() {
        // Two inproceedings in one issue with different years violate FD5.
        let d = dblp_dtd();
        let ps = d.paths().unwrap();
        let t = xnf_xml::parse(
            r#"<db><conf><title>PODS</title><issue>
              <inproceedings key="p1" pages="1" year="2001">
                <author>A</author><title>t1</title><booktitle>b</booktitle>
              </inproceedings>
              <inproceedings key="p2" pages="2" year="2002">
                <author>B</author><title>t2</title><booktitle>b</booktitle>
              </inproceedings>
            </issue></conf></db>"#,
        )
        .unwrap();
        let fd5: XmlFd = "db.conf.issue -> db.conf.issue.inproceedings.@year"
            .parse()
            .unwrap();
        assert!(!fd5.satisfied_by(&t, &d, &ps).unwrap());
    }

    #[test]
    fn unknown_path_is_an_error() {
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let fd: XmlFd = "courses.ghost -> courses".parse().unwrap();
        assert!(matches!(
            fd.satisfied_by(&figure_1a(), &d, &ps),
            Err(CoreError::Dtd(xnf_dtd::DtdError::NoSuchPath(_)))
        ));
    }

    #[test]
    fn split_rhs() {
        let fd: XmlFd = "a.b -> a.c, a.d".parse().unwrap();
        let split = fd.split_rhs();
        assert_eq!(split.len(), 2);
        assert!(split.iter().all(|f| f.rhs().len() == 1));
    }

    #[test]
    fn fdset_parse_skips_comments() {
        let set = XmlFdSet::parse("# comment\n\na.b -> a.c; a.c -> a.d").unwrap();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn null_lhs_never_triggers() {
        // Documents missing the LHS path satisfy any FD vacuously.
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let t = xnf_xml::parse(
            r#"<courses><course cno="c1"><title>T</title><taken_by>
               <student sno="s1"><name>N</name></student></taken_by></course>
               <course cno="c2"><title>T2</title><taken_by>
               <student sno="s2"><name>M</name></student></taken_by></course></courses>"#,
        )
        .unwrap();
        let fd: XmlFd =
            "courses.course.taken_by.student.grade.S -> courses.course.taken_by.student.@sno"
                .parse()
                .unwrap();
        assert!(fd.satisfied_by(&t, &d, &ps).unwrap());
    }
}
