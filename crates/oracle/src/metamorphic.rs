//! Metamorphic invariants of the Figure 4 decomposition.
//!
//! The normalization algorithm is defined on the *abstract* spec `(D, Σ)`;
//! none of the paper's constructions depend on what the element types are
//! called, nor on the order Σ is written down in. That gives executable
//! relations with no reference implementation needed:
//!
//! * **FD reordering** — `normalize(D, Σ)` is invariant under permuting
//!   the FDs of Σ (both through the text parser and through
//!   [`XmlFdSet::from_fds`]).
//! * **Element renaming** — for an injective renaming `ρ` of element
//!   types, `normalize(ρ(D), ρ(Σ))` equals `normalize(D, Σ)` *exactly, up
//!   to a name bijection*: every tie-break in the engine is derived from
//!   structural position (attribute declaration order, BFS path ids), so
//!   the two runs must take the very same steps in the very same order.
//! * **Attribute renaming** — same exact-commutation property for an
//!   injective renaming of the attributes.
//!
//! **Why "up to a name bijection".** The runs legitimately differ in the
//! *spelling* of minted fresh names: `CreateElement` derives `{l}_ref`
//! element names from attribute stems and `FoldText` derives attribute
//! names from element names, and collision suffixes (`info` vs `info2`)
//! depend on which spellings already exist. So the check derives a
//! bijection Φ — seeded with the renaming ρ and extended by unifying the
//! two step traces in lockstep — and then demands exact equality of the
//! step traces, the `|AP|` trace, every intermediate stage, and the final
//! `(D', Σ')` after pushing the base run through Φ. Any structural
//! divergence (different step kinds, different paths, different
//! declaration order, a non-injective name correspondence) is a
//! [`RenameOutcome::Violation`]. This is the exact-equality promotion of
//! the earlier weak-fingerprint check, enabled by making the engine's
//! tie-breaking rename-equivariant.

use std::collections::BTreeMap;
use xnf_core::normalize::{normalize, NormalizeOptions, NormalizeResult};
use xnf_core::{CoreError, Step, XmlFd, XmlFdSet};
use xnf_dtd::{ContentModel, Dtd, Path, Regex};

/// An element/attribute name bijection between two normalization runs.
///
/// Element names are a single global namespace (DTD element types are
/// unique); attribute names are scoped by the *base-side* element type
/// that declares them, since the same attribute name may recur on several
/// element types and map differently on each.
#[derive(Debug, Default)]
struct NameBijection {
    elem: BTreeMap<Box<str>, Box<str>>,
    elem_rev: BTreeMap<Box<str>, Box<str>>,
    attr: BTreeMap<(Box<str>, Box<str>), Box<str>>,
    attr_rev: BTreeMap<(Box<str>, Box<str>), Box<str>>,
}

impl NameBijection {
    fn bind_elem(&mut self, b: &str, r: &str) -> Result<(), String> {
        if let Some(cur) = self.elem.get(b) {
            return if **cur == *r {
                Ok(())
            } else {
                Err(format!("element `{b}` maps to both `{cur}` and `{r}`"))
            };
        }
        if let Some(other) = self.elem_rev.get(r) {
            return Err(format!("elements `{other}` and `{b}` both map to `{r}`"));
        }
        self.elem.insert(b.into(), r.into());
        self.elem_rev.insert(r.into(), b.into());
        Ok(())
    }

    fn bind_attr(&mut self, elem: &str, b: &str, r: &str) -> Result<(), String> {
        let key = (Box::from(elem), Box::from(b));
        if let Some(cur) = self.attr.get(&key) {
            return if **cur == *r {
                Ok(())
            } else {
                Err(format!(
                    "attribute `@{b}` of `{elem}` maps to both `@{cur}` and `@{r}`"
                ))
            };
        }
        let rev_key = (Box::from(elem), Box::from(r));
        if let Some(other) = self.attr_rev.get(&rev_key) {
            return Err(format!(
                "attributes `@{other}` and `@{b}` of `{elem}` both map to `@{r}`"
            ));
        }
        self.attr.insert(key, r.into());
        self.attr_rev.insert(rev_key, b.into());
        Ok(())
    }

    fn map_elem(&self, b: &str) -> Result<&str, String> {
        self.elem
            .get(b)
            .map(|r| &**r)
            .ok_or_else(|| format!("element `{b}` appears only in the base run"))
    }

    fn map_attr(&self, elem: &str, b: &str) -> Result<&str, String> {
        self.attr
            .get(&(Box::from(elem), Box::from(b)))
            .map(|r| &**r)
            .ok_or_else(|| format!("attribute `@{b}` of `{elem}` appears only in the base run"))
    }

    /// Requires `b` and `r` to be step-for-step identical after mapping
    /// base names through the bijection, binding names not yet seen.
    fn unify_path(&mut self, b: &Path, r: &Path) -> Result<(), String> {
        if b.len() != r.len() {
            return Err(format!("paths `{b}` and `{r}` differ in length"));
        }
        let mut cur_elem: Option<&str> = None;
        for (sb, sr) in b.steps().iter().zip(r.steps()) {
            match (sb, sr) {
                (xnf_dtd::Step::Elem(nb), xnf_dtd::Step::Elem(nr)) => {
                    self.bind_elem(nb, nr)?;
                    cur_elem = Some(nb);
                }
                (xnf_dtd::Step::Attr(ab), xnf_dtd::Step::Attr(ar)) => {
                    let elem = cur_elem.ok_or("attribute step with no parent element")?;
                    self.bind_attr(elem, ab, ar)?;
                }
                (xnf_dtd::Step::Text, xnf_dtd::Step::Text) => {}
                _ => return Err(format!("paths `{b}` and `{r}` differ in step kinds")),
            }
        }
        Ok(())
    }

    fn unify_step(&mut self, b: &Step, r: &Step) -> Result<(), String> {
        match (b, r) {
            (
                Step::FoldText {
                    elem_path: pb,
                    attr: ab,
                },
                Step::FoldText {
                    elem_path: pr,
                    attr: ar,
                },
            ) => {
                self.unify_path(pb, pr)?;
                // The minted attribute lands on the *parent* of the folded
                // element.
                let parent = pb.parent().ok_or("fold at the root")?;
                let elem = last_elem_name(&parent).ok_or("fold parent has no element")?;
                self.bind_attr(&elem, ab, ar)
            }
            (
                Step::AddId {
                    elem_path: pb,
                    attr: ab,
                },
                Step::AddId {
                    elem_path: pr,
                    attr: ar,
                },
            ) => {
                self.unify_path(pb, pr)?;
                let elem = last_elem_name(pb).ok_or("AddId path has no element")?;
                self.bind_attr(&elem, ab, ar)
            }
            (
                Step::MoveAttribute {
                    from: fb,
                    to: tb,
                    new_attr: ab,
                },
                Step::MoveAttribute {
                    from: fr,
                    to: tr,
                    new_attr: ar,
                },
            ) => {
                self.unify_path(fb, fr)?;
                self.unify_path(tb, tr)?;
                let elem = last_elem_name(tb).ok_or("move target has no element")?;
                self.bind_attr(&elem, ab, ar)
            }
            (
                Step::CreateElement {
                    q: qb,
                    lhs_attrs: lb,
                    value_attr: vb,
                    tau: taub,
                    tau_children: cb,
                },
                Step::CreateElement {
                    q: qr,
                    lhs_attrs: lr,
                    value_attr: vr,
                    tau: taur,
                    tau_children: cr,
                },
            ) => {
                self.unify_path(qb, qr)?;
                if lb.len() != lr.len() || cb.len() != cr.len() {
                    return Err("CreateElement arity differs".into());
                }
                for (pb, pr) in lb.iter().zip(lr) {
                    self.unify_path(pb, pr)?;
                }
                self.unify_path(vb, vr)?;
                self.bind_elem(taub, taur)?;
                // τ carries the moved value attribute; each τᵢ carries its
                // LHS attribute — bind them in their *new* element scope.
                self.bind_attr(taub, &attr_name_of(vb)?, &attr_name_of(vr)?)?;
                for ((childb, childr), (pb, pr)) in cb.iter().zip(cr).zip(lb.iter().zip(lr)) {
                    self.bind_elem(childb, childr)?;
                    self.bind_attr(childb, &attr_name_of(pb)?, &attr_name_of(pr)?)?;
                }
                Ok(())
            }
            _ => Err(format!(
                "step kinds differ: {} vs {}",
                step_kind(b),
                step_kind(r)
            )),
        }
    }

    fn map_path(&self, p: &Path) -> Result<Path, String> {
        let mut cur_elem: Option<Box<str>> = None;
        let mut out: Option<Path> = None;
        for step in p.steps() {
            let mapped = match step {
                xnf_dtd::Step::Elem(n) => {
                    let m = self.map_elem(n)?;
                    cur_elem = Some(Box::from(&**n));
                    xnf_dtd::Step::elem(m)
                }
                xnf_dtd::Step::Attr(a) => {
                    let elem = cur_elem
                        .as_deref()
                        .ok_or("attribute step with no parent element")?;
                    xnf_dtd::Step::attr(self.map_attr(elem, a)?)
                }
                xnf_dtd::Step::Text => xnf_dtd::Step::Text,
            };
            out = Some(match (out, mapped) {
                (None, xnf_dtd::Step::Elem(n)) => Path::root(n),
                (None, _) => return Err(format!("path `{p}` does not start at an element")),
                (Some(prefix), xnf_dtd::Step::Elem(n)) => prefix.child_elem(n),
                (Some(prefix), xnf_dtd::Step::Attr(a)) => prefix.child_attr(a),
                (Some(prefix), xnf_dtd::Step::Text) => prefix.child_text(),
            });
        }
        out.ok_or_else(|| "empty path".into())
    }

    fn map_regex(&self, re: &Regex) -> Result<Regex, String> {
        Ok(match re {
            Regex::Epsilon => Regex::Epsilon,
            Regex::Elem(n) => Regex::Elem(self.map_elem(n)?.into()),
            Regex::Seq(parts) => Regex::Seq(
                parts
                    .iter()
                    .map(|p| self.map_regex(p))
                    .collect::<Result<_, _>>()?,
            ),
            Regex::Alt(parts) => Regex::Alt(
                parts
                    .iter()
                    .map(|p| self.map_regex(p))
                    .collect::<Result<_, _>>()?,
            ),
            Regex::Star(inner) => Regex::Star(Box::new(self.map_regex(inner)?)),
            Regex::Opt(inner) => Regex::Opt(Box::new(self.map_regex(inner)?)),
            Regex::Plus(inner) => Regex::Plus(Box::new(self.map_regex(inner)?)),
        })
    }

    /// Rebuilds `d` with every name pushed through the bijection,
    /// preserving element and attribute declaration order exactly.
    fn map_dtd(&self, d: &Dtd) -> Result<Dtd, String> {
        let mut b = Dtd::builder(self.map_elem(d.root_name())?);
        for id in d.elements() {
            let name = d.name(id);
            let content = match d.content(id) {
                ContentModel::Text => ContentModel::Text,
                ContentModel::Regex(re) => ContentModel::Regex(self.map_regex(re)?),
            };
            let attrs = d
                .attrs(id)
                .map(|a| self.map_attr(name, a).map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?;
            b = b.decl(self.map_elem(name)?.to_string(), content, attrs);
        }
        b.build()
            .map_err(|e| format!("mapped DTD no longer builds: {e}"))
    }

    fn map_fds(&self, sigma: &XmlFdSet) -> Result<XmlFdSet, String> {
        let fds = sigma
            .iter()
            .map(|fd| {
                let map_side = |side: &[Path]| -> Result<Vec<Path>, String> {
                    side.iter().map(|p| self.map_path(p)).collect()
                };
                XmlFd::new(map_side(fd.lhs())?, map_side(fd.rhs())?)
                    .map_err(|e| format!("mapped FD no longer builds: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(XmlFdSet::from_fds(fds))
    }
}

fn last_elem_name(p: &Path) -> Option<Box<str>> {
    p.steps().iter().rev().find_map(|s| match s {
        xnf_dtd::Step::Elem(n) => Some(n.clone()),
        _ => None,
    })
}

fn attr_name_of(p: &Path) -> Result<Box<str>, String> {
    match p.last() {
        xnf_dtd::Step::Attr(a) => Ok(a.clone()),
        _ => Err(format!("`{p}` is not an attribute path")),
    }
}

fn step_kind(step: &Step) -> &'static str {
    match step {
        Step::FoldText { .. } => "fold_text",
        Step::AddId { .. } => "add_id",
        Step::MoveAttribute { .. } => "move_attribute",
        Step::CreateElement { .. } => "create_element",
    }
}

/// Applies an element-type renaming to a whole spec.
///
/// `map` sends old element names to new ones; element types not in the map
/// keep their name. FD paths are rewritten step-by-step; attribute and
/// text steps are untouched.
pub fn rename_spec(
    dtd: &Dtd,
    sigma: &XmlFdSet,
    map: &BTreeMap<String, String>,
) -> Result<(Dtd, XmlFdSet), CoreError> {
    let mut renamed = dtd.clone();
    for (old, new) in map {
        renamed.rename_element(old, new)?;
    }
    let rename_path = |p: &Path| rename_path(p, map);
    let fds: Result<Vec<XmlFd>, CoreError> = sigma
        .iter()
        .map(|fd| {
            XmlFd::new(
                fd.lhs().iter().map(rename_path),
                fd.rhs().iter().map(rename_path),
            )
        })
        .collect();
    Ok((renamed, XmlFdSet::from_fds(fds?)))
}

fn rename_path(p: &Path, map: &BTreeMap<String, String>) -> Path {
    let renamed = |name: &str| -> Box<str> {
        map.get(name)
            .map_or_else(|| name.into(), |n| n.as_str().into())
    };
    let mut steps = p.steps().iter();
    let mut out = match steps.next().expect("paths are non-empty") {
        xnf_dtd::Step::Elem(name) => Path::root(renamed(name)),
        _ => unreachable!("paths start at the root element"),
    };
    for step in steps {
        out = match step {
            xnf_dtd::Step::Elem(name) => out.child_elem(renamed(name)),
            xnf_dtd::Step::Attr(name) => out.child_attr(name.clone()),
            xnf_dtd::Step::Text => out.child_text(),
        };
    }
    out
}

/// Verdict of a renaming metamorphic check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenameOutcome {
    /// `normalize ∘ ρ = ρ ∘ normalize` held exactly: identical step trace,
    /// `|AP|` trace, stages, and output `(D', Σ')` up to the derived
    /// fresh-name bijection.
    Commutes,
    /// The invariant was violated; the string says how.
    Violation(String),
}

impl RenameOutcome {
    /// Whether the invariant held.
    pub fn ok(&self) -> bool {
        !matches!(self, RenameOutcome::Violation(_))
    }
}

/// Picks a prefix such that `prefix + name` collides with no existing
/// element or attribute name of `dtd`.
fn fresh_prefix(dtd: &Dtd) -> String {
    let mut prefix = String::from("r_");
    let collides = |p: &str| {
        dtd.elements()
            .any(|id| dtd.name(id).starts_with(p) || dtd.attrs(id).any(|a| a.starts_with(p)))
    };
    while collides(&prefix) {
        prefix.insert(0, 'r');
    }
    prefix
}

/// Derives the fresh-name bijection from the two runs' step traces and
/// demands exact equality of everything else under it.
fn compare_runs(
    base: &NormalizeResult,
    renamed: &NormalizeResult,
    mut phi: NameBijection,
) -> RenameOutcome {
    let violation = |msg: String| RenameOutcome::Violation(msg);
    if base.ap_trace != renamed.ap_trace {
        return violation(format!(
            "|AP| traces differ: {:?} vs {:?}",
            base.ap_trace, renamed.ap_trace
        ));
    }
    if base.steps.len() != renamed.steps.len() {
        return violation(format!(
            "step traces differ in length: {} vs {}",
            base.steps.len(),
            renamed.steps.len()
        ));
    }
    for (i, (b, r)) in base.steps.iter().zip(&renamed.steps).enumerate() {
        if let Err(e) = phi.unify_step(b, r) {
            return violation(format!("step {i} does not unify: {e}"));
        }
    }
    // With Φ complete, the outputs and every intermediate stage must agree
    // verbatim — including declaration order, which is structural.
    match phi.map_dtd(&base.dtd) {
        Ok(d) if d == renamed.dtd => {}
        Ok(d) => {
            return violation(format!(
                "output DTDs differ under Φ:\n{d}\nvs\n{}",
                renamed.dtd
            ))
        }
        Err(e) => return violation(format!("output DTD does not map: {e}")),
    }
    match phi.map_fds(&base.sigma) {
        Ok(s) if s == renamed.sigma => {}
        Ok(s) => {
            return violation(format!(
                "output Σ differ under Φ:\n{s}\nvs\n{}",
                renamed.sigma
            ))
        }
        Err(e) => return violation(format!("output Σ does not map: {e}")),
    }
    if base.stages.len() != renamed.stages.len() {
        return violation("stage traces differ in length".into());
    }
    for (i, ((bd, bs), (rd, rs))) in base.stages.iter().zip(&renamed.stages).enumerate() {
        match phi.map_dtd(bd) {
            Ok(d) if d == *rd => {}
            Ok(_) => return violation(format!("stage {i} DTDs differ under Φ")),
            Err(e) => return violation(format!("stage {i} DTD does not map: {e}")),
        }
        match phi.map_fds(bs) {
            Ok(s) if s == *rs => {}
            Ok(_) => return violation(format!("stage {i} Σ differ under Φ")),
            Err(e) => return violation(format!("stage {i} Σ does not map: {e}")),
        }
    }
    RenameOutcome::Commutes
}

/// Checks that normalization commutes *exactly* (up to the derived
/// fresh-name bijection) with a consistent renaming of every element type.
pub fn check_element_rename(dtd: &Dtd, sigma: &XmlFdSet) -> Result<RenameOutcome, CoreError> {
    let prefix = fresh_prefix(dtd);
    let map: BTreeMap<String, String> = dtd
        .elements()
        .map(|id| {
            let name = dtd.name(id);
            (name.to_string(), format!("{prefix}{name}"))
        })
        .collect();
    let (rdtd, rsigma) = rename_spec(dtd, sigma, &map)?;

    let base = normalize(dtd, sigma, &NormalizeOptions::default())?;
    let renamed = normalize(&rdtd, &rsigma, &NormalizeOptions::default())?;

    // Seed Φ with ρ on the elements and the identity on the original
    // attributes; everything minted during the runs is unified from the
    // step traces.
    let mut phi = NameBijection::default();
    for (old, new) in &map {
        phi.bind_elem(old, new).expect("ρ is injective");
    }
    for id in dtd.elements() {
        for a in dtd.attrs(id) {
            phi.bind_attr(dtd.name(id), a, a).expect("identity seed");
        }
    }
    Ok(compare_runs(&base, &renamed, phi))
}

/// Checks that normalization commutes *exactly* (up to the derived
/// fresh-name bijection) with a consistent renaming of every attribute.
pub fn check_attribute_rename(dtd: &Dtd, sigma: &XmlFdSet) -> Result<RenameOutcome, CoreError> {
    let prefix = fresh_prefix(dtd);
    let mut renamed = dtd.clone();
    for id in dtd.elements() {
        let attrs: Vec<String> = dtd.attrs(id).map(str::to_string).collect();
        // remove+append in declaration order keeps the structural
        // (insertion) order of the attribute list intact.
        for attr in attrs {
            renamed.remove_attribute(id, &attr);
            renamed.add_attribute(id, &format!("{prefix}{attr}"))?;
        }
    }
    let rename_path = |p: &Path| -> Path {
        let mut steps = p.steps().iter();
        let mut out = match steps.next().expect("paths are non-empty") {
            xnf_dtd::Step::Elem(name) => Path::root(name.clone()),
            _ => unreachable!("paths start at the root element"),
        };
        for step in steps {
            out = match step {
                xnf_dtd::Step::Elem(name) => out.child_elem(name.clone()),
                xnf_dtd::Step::Attr(name) => out.child_attr(format!("{prefix}{name}")),
                xnf_dtd::Step::Text => out.child_text(),
            };
        }
        out
    };
    let fds: Result<Vec<XmlFd>, CoreError> = sigma
        .iter()
        .map(|fd| {
            XmlFd::new(
                fd.lhs().iter().map(rename_path),
                fd.rhs().iter().map(rename_path),
            )
        })
        .collect();
    let rsigma = XmlFdSet::from_fds(fds?);

    let base = normalize(dtd, sigma, &NormalizeOptions::default())?;
    let renamed_run = normalize(&renamed, &rsigma, &NormalizeOptions::default())?;

    // Seed Φ with the identity on the elements and ρ on the original
    // attributes.
    let mut phi = NameBijection::default();
    for id in dtd.elements() {
        let name = dtd.name(id);
        phi.bind_elem(name, name).expect("identity seed");
        for a in dtd.attrs(id) {
            phi.bind_attr(name, a, &format!("{prefix}{a}"))
                .expect("ρ is injective");
        }
    }
    Ok(compare_runs(&base, &renamed_run, phi))
}

/// Checks that `normalize` is invariant under reordering of Σ.
///
/// Feeds the same FDs in reversed order through [`XmlFdSet::from_fds`] and
/// in rotated order through the text parser; all three runs must produce
/// identical `(D', Σ', steps)`.
pub fn check_fd_reorder(dtd: &Dtd, sigma: &XmlFdSet) -> Result<bool, CoreError> {
    let base = normalize(dtd, sigma, &NormalizeOptions::default())?;

    let reversed = {
        let mut fds: Vec<XmlFd> = sigma.iter().cloned().collect();
        fds.reverse();
        XmlFdSet::from_fds(fds)
    };
    let rot = {
        let mut lines: Vec<String> = sigma.iter().map(ToString::to_string).collect();
        let mid = lines.len() / 2;
        lines.rotate_left(mid);
        XmlFdSet::parse(&lines.join(";"))?
    };
    for variant in [reversed, rot] {
        let run = normalize(dtd, &variant, &NormalizeOptions::default())?;
        if run.dtd != base.dtd || run.sigma != base.sigma || run.steps != base.steps {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIVERSITY_DTD: &str = "<!ELEMENT courses (course*)>
         <!ELEMENT course (title, taken_by)>
         <!ATTLIST course cno CDATA #REQUIRED>
         <!ELEMENT title (#PCDATA)>
         <!ELEMENT taken_by (student*)>
         <!ELEMENT student (name, grade)>
         <!ATTLIST student sno CDATA #REQUIRED>
         <!ELEMENT name (#PCDATA)>
         <!ELEMENT grade (#PCDATA)>";

    fn university() -> (Dtd, XmlFdSet) {
        (
            xnf_dtd::parse_dtd(UNIVERSITY_DTD).unwrap(),
            XmlFdSet::parse(xnf_core::fd::UNIVERSITY_FDS).unwrap(),
        )
    }

    #[test]
    fn university_is_invariant_under_fd_reordering() {
        let (dtd, sigma) = university();
        assert!(check_fd_reorder(&dtd, &sigma).unwrap());
    }

    #[test]
    fn university_commutes_exactly_under_renamings() {
        // The university run folds text and creates elements — exactly the
        // fresh-name minting that used to force the weak-fingerprint
        // fallback. It must now commute exactly.
        let (dtd, sigma) = university();
        let elem = check_element_rename(&dtd, &sigma).unwrap();
        assert_eq!(elem, RenameOutcome::Commutes, "{elem:?}");
        let attr = check_attribute_rename(&dtd, &sigma).unwrap();
        assert_eq!(attr, RenameOutcome::Commutes, "{attr:?}");
    }

    #[test]
    fn rename_spec_round_trips_through_the_inverse_map() {
        let (dtd, sigma) = university();
        let map: BTreeMap<String, String> = dtd
            .elements()
            .map(|id| (dtd.name(id).to_string(), format!("z_{}", dtd.name(id))))
            .collect();
        let (rdtd, rsigma) = rename_spec(&dtd, &sigma, &map).unwrap();
        assert_eq!(rdtd.root_name(), "z_courses");
        let inverse: BTreeMap<String, String> =
            map.into_iter().map(|(old, new)| (new, old)).collect();
        let (back_dtd, back_sigma) = rename_spec(&rdtd, &rsigma, &inverse).unwrap();
        assert_eq!(back_dtd, dtd);
        assert_eq!(back_sigma, sigma);
    }

    #[test]
    fn a_move_attribute_only_spec_commutes_exactly() {
        // Figure 1(b)-style: @year on book is anomalous and gets moved; no
        // new element types are created.
        let dtd = xnf_dtd::parse_dtd(
            "<!ELEMENT db (conf*)>
             <!ELEMENT conf (issue*)>
             <!ATTLIST conf name CDATA #REQUIRED>
             <!ELEMENT issue (inproceedings*)>
             <!ELEMENT inproceedings (#PCDATA)>
             <!ATTLIST inproceedings key CDATA #REQUIRED year CDATA #REQUIRED>",
        )
        .unwrap();
        let sigma = XmlFdSet::parse(
            "db.conf.issue -> db.conf.issue.inproceedings.@year\n\
             db.conf.issue.inproceedings.@key -> db.conf.issue.inproceedings",
        )
        .unwrap();
        let outcome = check_element_rename(&dtd, &sigma).unwrap();
        assert_eq!(outcome, RenameOutcome::Commutes, "{outcome:?}");
    }

    #[test]
    fn a_tampered_run_is_a_violation() {
        // Unifying traces from *different* specs must not silently pass:
        // normalize two unrelated specs and force a comparison.
        let (dtd, sigma) = university();
        let base = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
        let other_sigma = XmlFdSet::parse("courses.course.@cno -> courses.course").unwrap();
        let other = normalize(&dtd, &other_sigma, &NormalizeOptions::default()).unwrap();
        let mut phi = NameBijection::default();
        for id in dtd.elements() {
            let name = dtd.name(id);
            phi.bind_elem(name, name).unwrap();
            for a in dtd.attrs(id) {
                phi.bind_attr(name, a, a).unwrap();
            }
        }
        assert!(!compare_runs(&base, &other, phi).ok());
    }
}
