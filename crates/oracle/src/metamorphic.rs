//! Metamorphic invariants of the Figure 4 decomposition.
//!
//! The normalization algorithm is defined on the *abstract* spec `(D, Σ)`;
//! none of the paper's constructions depend on what the element types are
//! called, nor on the order Σ is written down in. That gives executable
//! relations with no reference implementation needed:
//!
//! * **FD reordering** — `normalize(D, Σ)` is invariant under permuting
//!   the FDs of Σ (both through the text parser and through
//!   [`XmlFdSet::from_fds`]).
//! * **Element renaming** — for an injective renaming `ρ` of element
//!   types, `normalize(ρ(D), ρ(Σ))` must commute with `ρ` exactly when no
//!   step manufactures names derived from element names (`CreateElement`
//!   introduces `info`/`{l}_ref` elements and text folding derives fresh
//!   attribute names from element names).
//! * **Attribute renaming** — the spec-isomorphism invariants must be
//!   preserved.
//!
//! Renamings use a common fresh *prefix*, which preserves the
//! lexicographic order of names — the algorithm's deterministic
//! tie-breaking sorts by name, so order-preserving maps are exactly the
//! ones that must commute.
//!
//! **What "preserved" can mean.** Once a *derived* fresh name enters the
//! name pool (`fold_text` derives attribute names from element names,
//! `AddId` mints `id`, `CreateElement` mints `info`/`{l}_ref` element
//! names from attribute stems), its lexicographic position relative to
//! the renamed names differs from the original run, and the algorithm's
//! name-ordered tie-breaking may legitimately pick a different (equally
//! correct) decomposition from the second iteration on — fuzzing finds
//! such seeds readily. The invariants that hold unconditionally are the
//! parts fixed by the spec *up to isomorphism* before any derived name
//! exists: the first step's kind, the initial anomalous-FD count
//! `ap_trace[0]`, and `is_xnf` on the output ([`Fingerprint::weak`]).
//! The full [`Fingerprint`] — and exact commutation — is only demanded
//! when the run mints no order-shifting names.

use std::collections::BTreeMap;
use xnf_core::normalize::{normalize, NormalizeOptions, NormalizeResult};
use xnf_core::{is_xnf, CoreError, Step, XmlFd, XmlFdSet};
use xnf_dtd::{Dtd, Path};

/// A name-independent digest of one normalization run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// The kind of each applied step, in order.
    pub step_kinds: Vec<&'static str>,
    /// `|AP(D, Σ)|` trace (strictly decreasing by Proposition 6).
    pub ap_trace: Vec<usize>,
    /// Number of element types in the output DTD.
    pub output_elements: usize,
    /// Number of FDs in the output Σ.
    pub output_sigma_len: usize,
    /// Whether the output satisfies `is_xnf`.
    pub output_is_xnf: bool,
}

impl Fingerprint {
    /// The part of the digest fixed by the spec up to isomorphism (see the
    /// module docs): first step kind, initial anomalous-FD count, and
    /// whether the output is in XNF. Later steps may legitimately diverge
    /// under renamings once derived fresh names shift tie-breaking order.
    pub fn weak(&self) -> (Option<&'static str>, Option<usize>, bool) {
        (
            self.step_kinds.first().copied(),
            self.ap_trace.first().copied(),
            self.output_is_xnf,
        )
    }
}

fn step_kind(step: &Step) -> &'static str {
    match step {
        Step::FoldText { .. } => "fold_text",
        Step::AddId { .. } => "add_id",
        Step::MoveAttribute { .. } => "move_attribute",
        Step::CreateElement { .. } => "create_element",
    }
}

fn fingerprint_of(result: &NormalizeResult) -> Result<Fingerprint, CoreError> {
    Ok(Fingerprint {
        step_kinds: result.steps.iter().map(step_kind).collect(),
        ap_trace: result.ap_trace.clone(),
        output_elements: result.dtd.num_elements(),
        output_sigma_len: result.sigma.len(),
        output_is_xnf: is_xnf(&result.dtd, &result.sigma)?,
    })
}

/// Normalizes `(D, Σ)` and digests the run into a [`Fingerprint`].
pub fn fingerprint(dtd: &Dtd, sigma: &XmlFdSet) -> Result<Fingerprint, CoreError> {
    fingerprint_of(&normalize(dtd, sigma, &NormalizeOptions::default())?)
}

/// Applies an element-type renaming to a whole spec.
///
/// `map` sends old element names to new ones; element types not in the map
/// keep their name. FD paths are rewritten step-by-step; attribute and
/// text steps are untouched.
pub fn rename_spec(
    dtd: &Dtd,
    sigma: &XmlFdSet,
    map: &BTreeMap<String, String>,
) -> Result<(Dtd, XmlFdSet), CoreError> {
    let mut renamed = dtd.clone();
    for (old, new) in map {
        renamed.rename_element(old, new)?;
    }
    let rename_path = |p: &Path| rename_path(p, map);
    let fds: Result<Vec<XmlFd>, CoreError> = sigma
        .iter()
        .map(|fd| {
            XmlFd::new(
                fd.lhs().iter().map(rename_path),
                fd.rhs().iter().map(rename_path),
            )
        })
        .collect();
    Ok((renamed, XmlFdSet::from_fds(fds?)))
}

fn rename_path(p: &Path, map: &BTreeMap<String, String>) -> Path {
    let renamed = |name: &str| -> Box<str> {
        map.get(name)
            .map_or_else(|| name.into(), |n| n.as_str().into())
    };
    let mut steps = p.steps().iter();
    let mut out = match steps.next().expect("paths are non-empty") {
        xnf_dtd::Step::Elem(name) => Path::root(renamed(name)),
        _ => unreachable!("paths start at the root element"),
    };
    for step in steps {
        out = match step {
            xnf_dtd::Step::Elem(name) => out.child_elem(renamed(name)),
            xnf_dtd::Step::Attr(name) => out.child_attr(name.clone()),
            xnf_dtd::Step::Text => out.child_text(),
        };
    }
    out
}

/// Verdict of a renaming metamorphic check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenameOutcome {
    /// The strongest property held: `normalize ∘ ρ = ρ ∘ normalize` as an
    /// exact equality of revised DTDs and FD sets.
    Commutes,
    /// Fresh-name generation makes exact commutation inapplicable, but the
    /// spec-isomorphism invariants ([`Fingerprint::weak`]) were preserved.
    FingerprintMatch,
    /// The invariant was violated; the string says how.
    Violation(String),
}

impl RenameOutcome {
    /// Whether the invariant held (in either strength).
    pub fn ok(&self) -> bool {
        !matches!(self, RenameOutcome::Violation(_))
    }
}

/// Picks a prefix such that `prefix + name` collides with no existing
/// element or attribute name of `dtd`.
fn fresh_prefix(dtd: &Dtd) -> String {
    let mut prefix = String::from("r_");
    let collides = |p: &str| {
        dtd.elements()
            .any(|id| dtd.name(id).starts_with(p) || dtd.attrs(id).any(|a| a.starts_with(p)))
    };
    while collides(&prefix) {
        prefix.insert(0, 'r');
    }
    prefix
}

/// Checks that normalization commutes with a consistent renaming of every
/// element type (same-prefix, hence order-preserving).
pub fn check_element_rename(dtd: &Dtd, sigma: &XmlFdSet) -> Result<RenameOutcome, CoreError> {
    let prefix = fresh_prefix(dtd);
    let map: BTreeMap<String, String> = dtd
        .elements()
        .map(|id| {
            let name = dtd.name(id);
            (name.to_string(), format!("{prefix}{name}"))
        })
        .collect();
    let (rdtd, rsigma) = rename_spec(dtd, sigma, &map)?;

    let base = normalize(dtd, sigma, &NormalizeOptions::default())?;
    let renamed = normalize(&rdtd, &rsigma, &NormalizeOptions::default())?;

    let base_fp = fingerprint_of(&base)?;
    let renamed_fp = fingerprint_of(&renamed)?;
    if base_fp.weak() != renamed_fp.weak() {
        return Ok(RenameOutcome::Violation(format!(
            "weak fingerprint changed under element renaming: {base_fp:?} vs {renamed_fp:?}"
        )));
    }

    // `CreateElement` mints `info`/`{l}_ref` element types and text folding
    // derives fresh attribute names from element names; both break exact
    // equality of outputs. Without them the runs must agree verbatim.
    let exact_applies = !base
        .steps
        .iter()
        .any(|s| matches!(s, Step::CreateElement { .. } | Step::FoldText { .. }));
    if exact_applies {
        let (expected_dtd, expected_sigma) = rename_spec(&base.dtd, &base.sigma, &map)?;
        if renamed.dtd != expected_dtd {
            return Ok(RenameOutcome::Violation(
                "revised DTDs differ under element renaming".into(),
            ));
        }
        if renamed.sigma != expected_sigma {
            return Ok(RenameOutcome::Violation(
                "revised FD sets differ under element renaming".into(),
            ));
        }
        return Ok(RenameOutcome::Commutes);
    }
    Ok(RenameOutcome::FingerprintMatch)
}

/// Checks that the run [`Fingerprint`] is invariant under a consistent
/// renaming of every attribute (fresh names derive from attribute stems,
/// so only the name-independent digest is required to match).
pub fn check_attribute_rename(dtd: &Dtd, sigma: &XmlFdSet) -> Result<RenameOutcome, CoreError> {
    let prefix = fresh_prefix(dtd);
    let mut renamed = dtd.clone();
    for id in dtd.elements() {
        let attrs: Vec<String> = dtd.attrs(id).map(str::to_string).collect();
        for attr in attrs {
            renamed.remove_attribute(id, &attr);
            renamed.add_attribute(id, &format!("{prefix}{attr}"))?;
        }
    }
    let rename_path = |p: &Path| -> Path {
        let mut steps = p.steps().iter();
        let mut out = match steps.next().expect("paths are non-empty") {
            xnf_dtd::Step::Elem(name) => Path::root(name.clone()),
            _ => unreachable!("paths start at the root element"),
        };
        for step in steps {
            out = match step {
                xnf_dtd::Step::Elem(name) => out.child_elem(name.clone()),
                xnf_dtd::Step::Attr(name) => out.child_attr(format!("{prefix}{name}")),
                xnf_dtd::Step::Text => out.child_text(),
            };
        }
        out
    };
    let fds: Result<Vec<XmlFd>, CoreError> = sigma
        .iter()
        .map(|fd| {
            XmlFd::new(
                fd.lhs().iter().map(rename_path),
                fd.rhs().iter().map(rename_path),
            )
        })
        .collect();
    let rsigma = XmlFdSet::from_fds(fds?);

    let base = normalize(dtd, sigma, &NormalizeOptions::default())?;
    let base_fp = fingerprint_of(&base)?;
    let renamed_fp = fingerprint(&renamed, &rsigma)?;
    if base_fp.weak() != renamed_fp.weak() {
        return Ok(RenameOutcome::Violation(format!(
            "weak fingerprint changed under attribute renaming: {base_fp:?} vs {renamed_fp:?}"
        )));
    }
    // With no steps at all there is no fresh-name feedback: the renamed
    // spec must already be in XNF verbatim.
    if base.steps.is_empty() {
        let rerun = normalize(&renamed, &rsigma, &NormalizeOptions::default())?;
        if !rerun.steps.is_empty() || rerun.dtd != renamed {
            return Ok(RenameOutcome::Violation(
                "XNF spec became non-XNF under attribute renaming".into(),
            ));
        }
        return Ok(RenameOutcome::Commutes);
    }
    Ok(RenameOutcome::FingerprintMatch)
}

/// Checks that `normalize` is invariant under reordering of Σ.
///
/// Feeds the same FDs in reversed order through [`XmlFdSet::from_fds`] and
/// in rotated order through the text parser; all three runs must produce
/// identical `(D', Σ', steps)`.
pub fn check_fd_reorder(dtd: &Dtd, sigma: &XmlFdSet) -> Result<bool, CoreError> {
    let base = normalize(dtd, sigma, &NormalizeOptions::default())?;

    let reversed = {
        let mut fds: Vec<XmlFd> = sigma.iter().cloned().collect();
        fds.reverse();
        XmlFdSet::from_fds(fds)
    };
    let rot = {
        let mut lines: Vec<String> = sigma.iter().map(ToString::to_string).collect();
        let mid = lines.len() / 2;
        lines.rotate_left(mid);
        XmlFdSet::parse(&lines.join(";"))?
    };
    for variant in [reversed, rot] {
        let run = normalize(dtd, &variant, &NormalizeOptions::default())?;
        if run.dtd != base.dtd || run.sigma != base.sigma || run.steps != base.steps {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIVERSITY_DTD: &str = "<!ELEMENT courses (course*)>
         <!ELEMENT course (title, taken_by)>
         <!ATTLIST course cno CDATA #REQUIRED>
         <!ELEMENT title (#PCDATA)>
         <!ELEMENT taken_by (student*)>
         <!ELEMENT student (name, grade)>
         <!ATTLIST student sno CDATA #REQUIRED>
         <!ELEMENT name (#PCDATA)>
         <!ELEMENT grade (#PCDATA)>";

    fn university() -> (Dtd, XmlFdSet) {
        (
            xnf_dtd::parse_dtd(UNIVERSITY_DTD).unwrap(),
            XmlFdSet::parse(xnf_core::fd::UNIVERSITY_FDS).unwrap(),
        )
    }

    #[test]
    fn university_is_invariant_under_fd_reordering() {
        let (dtd, sigma) = university();
        assert!(check_fd_reorder(&dtd, &sigma).unwrap());
    }

    #[test]
    fn university_fingerprint_survives_renamings() {
        let (dtd, sigma) = university();
        let elem = check_element_rename(&dtd, &sigma).unwrap();
        assert!(elem.ok(), "{elem:?}");
        let attr = check_attribute_rename(&dtd, &sigma).unwrap();
        assert!(attr.ok(), "{attr:?}");
    }

    #[test]
    fn rename_spec_round_trips_through_the_inverse_map() {
        let (dtd, sigma) = university();
        let map: BTreeMap<String, String> = dtd
            .elements()
            .map(|id| (dtd.name(id).to_string(), format!("z_{}", dtd.name(id))))
            .collect();
        let (rdtd, rsigma) = rename_spec(&dtd, &sigma, &map).unwrap();
        assert_eq!(rdtd.root_name(), "z_courses");
        let inverse: BTreeMap<String, String> =
            map.into_iter().map(|(old, new)| (new, old)).collect();
        let (back_dtd, back_sigma) = rename_spec(&rdtd, &rsigma, &inverse).unwrap();
        assert_eq!(back_dtd, dtd);
        assert_eq!(back_sigma, sigma);
    }

    #[test]
    fn a_move_attribute_only_spec_commutes_exactly() {
        // Figure 1(b)-style: @year on book is anomalous and gets moved; no
        // new element types are created, so the exact commute applies.
        let dtd = xnf_dtd::parse_dtd(
            "<!ELEMENT db (conf*)>
             <!ELEMENT conf (issue*)>
             <!ATTLIST conf name CDATA #REQUIRED>
             <!ELEMENT issue (inproceedings*)>
             <!ELEMENT inproceedings (#PCDATA)>
             <!ATTLIST inproceedings key CDATA #REQUIRED year CDATA #REQUIRED>",
        )
        .unwrap();
        let sigma = XmlFdSet::parse(
            "db.conf.issue -> db.conf.issue.inproceedings.@year\n\
             db.conf.issue.inproceedings.@key -> db.conf.issue.inproceedings",
        )
        .unwrap();
        let outcome = check_element_rename(&dtd, &sigma).unwrap();
        assert!(outcome.ok(), "{outcome:?}");
    }
}
