//! # `xnf-oracle` — end-to-end conformance oracles
//!
//! The paper's central guarantee — the Figure 4 decomposition is
//! *lossless* (Section 6) and its output is in *XNF* — is asserted by the
//! unit tests of `xnf-core` on hand-picked specs. This crate **executes**
//! those definitions on concrete inputs, independently of the code under
//! test, so that every future refactor or optimization PR has a
//! machine-checked conformance layer to pass:
//!
//! * [`spec`] — the losslessness oracle: given `(D, Σ)`, normalize, check
//!   `is_xnf` on the output, then push generated Σ-satisfying conforming
//!   documents through the transformation and verify conformance, Σ'
//!   satisfaction, the reconstruction round trip, and (independently of
//!   the core tuple machinery) preservation of the document's
//!   value projection.
//! * [`brute`] — a brute-force FD-implication refuter: enumerate small
//!   Σ-satisfying documents and test the candidate FD on each through the
//!   Codd-table satisfaction path. A violating document is a *certified*
//!   proof of non-implication, differential-tested against the chase-based
//!   [`xnf_core::ImplicationCache`].
//! * [`metamorphic`] — normalize must be invariant under FD reordering and
//!   must commute *exactly* with consistent element and attribute
//!   renamings, up to a derived bijection on minted fresh names.
//! * [`fuzz`] — a seeded, minimizing fuzz driver over random specs; the
//!   `xnf-oracle fuzz` binary shrinks failures to checked-in corpus specs.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod brute;
pub mod fuzz;
pub mod metamorphic;
pub mod spec;

pub use brute::BruteForce;
pub use fuzz::{fuzz_range, fuzz_seed, minimize, FailureKind, FuzzConfig, FuzzFailure};
pub use metamorphic::{
    check_attribute_rename, check_element_rename, check_fd_reorder, rename_spec, RenameOutcome,
};
pub use spec::{check_spec, DocFailure, SpecOracleConfig, SpecOracleReport};
