//! The executable losslessness oracle on whole specs.
//!
//! For a spec `(D, Σ)` the oracle runs the Figure 4 decomposition once and
//! then checks, on `docs` generated conforming documents `T ⊨ (D, Σ)`:
//!
//! 1. **conformance + Σ'** — the transformed document conforms to the
//!    revised DTD and satisfies the revised Σ (the two side conditions of
//!    Proposition 8);
//! 2. **round trip** — the inverse transformation reconstructs `T` up to
//!    unordered-tree equivalence (the commuting `tuples_D` diagram of
//!    Section 6, realized constructively);
//! 3. **projection** — independently of the core tuple machinery, the
//!    [`xnf_xml::value_projection`] of the reconstructed document equals
//!    the original's (information preservation seen purely from the
//!    document side);
//!
//! 4. **shred round trip** — the document shreds into relational rows
//!    under the *original* spec and rebuilds exactly (ordered structural
//!    equality), an independent witness that the relational encoding of
//!    the tree-tuple machinery loses nothing;
//!
//! plus, once per spec, `is_xnf(normalize(D, Σ))` — the output really is
//! in XNF — and the differential Proposition 4 check: the normalized
//! output compiles to a relational design whose every table is BCNF
//! under its Σ'-derived FDs.

use xnf_core::lossless::{verify_lossless, verify_lossless_trace};
use xnf_core::normalize::{normalize, NormalizeOptions, NormalizeResult};
use xnf_core::shred::ShredSchema;
use xnf_core::{CoreError, XmlFdSet};
use xnf_dtd::Dtd;
use xnf_gen::doc::{satisfying_documents, DocParams};
use xnf_govern::Budget;
use xnf_xml::{ordered_eq, value_projection};

/// Configuration for [`check_spec`].
#[derive(Debug, Clone)]
pub struct SpecOracleConfig {
    /// Number of Σ-satisfying documents to check (the acceptance bar of
    /// `xnf-tool verify` is ≥ 100).
    pub docs: usize,
    /// Base RNG seed for document generation.
    pub seed: u64,
    /// Generation parameters for each candidate document.
    pub doc_params: DocParams,
    /// Cap on generation attempts (rejection sampling) across the run.
    pub max_attempts: usize,
    /// Resource budget for the normalization run and the per-document
    /// checks. Exhaustion surfaces as [`CoreError::Exhausted`] from
    /// [`check_spec`] — never as a passing report.
    pub budget: Budget,
}

impl Default for SpecOracleConfig {
    fn default() -> Self {
        SpecOracleConfig {
            docs: 100,
            seed: 0xA1,
            doc_params: DocParams {
                reps: (0, 3),
                value_alphabet: 3,
                max_nodes: 400,
            },
            max_attempts: 2_000,
            budget: Budget::unlimited(),
        }
    }
}

/// One failed document check (see [`SpecOracleReport::failures`]).
#[derive(Debug, Clone)]
pub struct DocFailure {
    /// Index of the document in the generated sequence.
    pub doc_index: usize,
    /// What went wrong, with the per-step trace when one was obtainable.
    pub detail: String,
}

/// The outcome of [`check_spec`] on one spec.
#[derive(Debug, Clone)]
pub struct SpecOracleReport {
    /// `is_xnf` holds on the normalization output.
    pub output_is_xnf: bool,
    /// The normalized output's shred schema has only BCNF tables (the
    /// executable direction of the Proposition 4 correspondence). Checked
    /// differentially against [`output_is_xnf`]: the two verdicts must
    /// agree.
    ///
    /// [`output_is_xnf`]: SpecOracleReport::output_is_xnf
    pub shred_tables_bcnf: bool,
    /// The non-BCNF tables with their violating FDs (as XML FDs over the
    /// revised DTD where representable), when that check failed.
    pub shred_violations: Vec<String>,
    /// Number of transformation steps the decomposition took.
    pub steps: usize,
    /// Documents requested by the configuration.
    pub docs_requested: usize,
    /// Documents actually generated and checked.
    pub docs_checked: usize,
    /// Documents skipped because the transformation hit a documented
    /// unrepresentable-null case (Section 6, footnote 1: a value required
    /// by the revised schema is `⊥` in the instance).
    pub docs_skipped: usize,
    /// Per-document losslessness/projection failures.
    pub failures: Vec<DocFailure>,
}

impl SpecOracleReport {
    /// Whether the spec passed every check.
    pub fn ok(&self) -> bool {
        self.output_is_xnf && self.shred_tables_bcnf && self.failures.is_empty()
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "xnf output check: {}\n",
            if self.output_is_xnf { "PASS" } else { "FAIL" }
        ));
        out.push_str(&format!(
            "shred schema BCNF check: {}\n",
            if self.shred_tables_bcnf {
                "PASS"
            } else {
                "FAIL"
            }
        ));
        for v in &self.shred_violations {
            out.push_str(&format!("  {v}\n"));
        }
        out.push_str(&format!(
            "losslessness: {} / {} documents checked ({} skipped on \
             unrepresentable nulls), {} failure(s)\n",
            self.docs_checked,
            self.docs_requested,
            self.docs_skipped,
            self.failures.len()
        ));
        for f in &self.failures {
            out.push_str(&format!("  doc {}: {}\n", f.doc_index, f.detail));
        }
        out
    }
}

/// Runs the losslessness oracle on `(D, Σ)`; see the module docs.
///
/// Errors only on spec-level problems (unresolvable Σ, recursive DTD, …);
/// per-document findings land in the report.
pub fn check_spec(
    dtd: &Dtd,
    sigma: &XmlFdSet,
    config: &SpecOracleConfig,
) -> Result<SpecOracleReport, CoreError> {
    let options = NormalizeOptions {
        budget: config.budget.clone(),
        ..NormalizeOptions::default()
    };
    let normalize_span = config.budget.recorder().span("oracle.normalize", "oracle");
    let result = normalize(dtd, sigma, &options)?;
    drop(normalize_span);
    if let Some(e) = result.exhausted {
        // A partial decomposition is useless to the oracle — there is no
        // final design to verify against. Surface the exhaustion instead
        // of reporting on a non-final result.
        return Err(CoreError::Exhausted(e));
    }
    let xnf_span = config
        .budget
        .recorder()
        .span("oracle.certify_xnf", "oracle");
    let output_is_xnf = xnf_core::is_xnf_governed(&result.dtd, &result.sigma, &config.budget)?;
    drop(xnf_span);
    // Differential Proposition 4 check: the normalized output must shred
    // to an all-BCNF relational design, and the verdict must agree with
    // `is_xnf` above. The *input* spec compiles too — its schema backs the
    // per-document shred round trip below.
    let shred_span = config.budget.recorder().span("oracle.shred", "oracle");
    let output_schema = xnf_core::compile_schema(&result.dtd, &result.sigma, &config.budget)?;
    let shred_violations: Vec<String> = output_schema
        .non_bcnf_tables()
        .into_iter()
        .map(|(ix, name, fd)| {
            let rendered = output_schema
                .violation_as_xml_fd(ix, &fd)
                .map_or_else(|| fd.to_string(), |xfd| xfd.to_string());
            format!("table `{name}` is not BCNF: {rendered}")
        })
        .collect();
    let input_schema = xnf_core::compile_schema(dtd, sigma, &config.budget)?;
    drop(shred_span);
    let gen_span = config
        .budget
        .recorder()
        .span("oracle.generate_docs", "oracle");
    let mut rng = xnf_gen::rng(config.seed);
    let docs = satisfying_documents(
        dtd,
        sigma,
        &mut rng,
        &config.doc_params,
        config.docs,
        config.max_attempts,
    );
    drop(gen_span);
    let mut report = SpecOracleReport {
        output_is_xnf,
        shred_tables_bcnf: shred_violations.is_empty(),
        shred_violations,
        steps: result.steps.len(),
        docs_requested: config.docs,
        docs_checked: 0,
        docs_skipped: 0,
        failures: Vec::new(),
    };
    let _check_span = config.budget.recorder().span("oracle.check_docs", "oracle");
    for (doc_index, doc) in docs.iter().enumerate() {
        config.budget.checkpoint("oracle.doc")?;
        let mut verdict = check_document(dtd, &result, doc);
        if matches!(verdict, DocVerdict::Pass) {
            verdict = check_shred_round_trip(&input_schema, doc, &config.budget)?;
        }
        match verdict {
            DocVerdict::Pass => report.docs_checked += 1,
            DocVerdict::Skip => report.docs_skipped += 1,
            DocVerdict::Fail(detail) => {
                report.docs_checked += 1;
                report.failures.push(DocFailure { doc_index, detail });
            }
        }
    }
    Ok(report)
}

/// The stage-4 check: shred `doc` into rows under the input spec's schema
/// and rebuild it; the result must be *exactly* the input (ordered
/// structural equality — the `pos` column preserves document order), and
/// the value projections must agree. Only exhaustion propagates as an
/// error; everything else is a per-document finding.
fn check_shred_round_trip(
    schema: &ShredSchema,
    doc: &xnf_xml::XmlTree,
    budget: &Budget,
) -> Result<DocVerdict, CoreError> {
    let outcome = xnf_core::shred_document(schema, doc, budget)
        .and_then(|rows| xnf_core::unshred_document(schema, &rows, budget));
    match outcome {
        Ok(rebuilt) => {
            if !ordered_eq(doc, &rebuilt) {
                Ok(DocVerdict::Fail(
                    "shred round trip altered the document".into(),
                ))
            } else if value_projection(&rebuilt) != value_projection(doc) {
                Ok(DocVerdict::Fail(
                    "shred round trip lost document values".into(),
                ))
            } else {
                Ok(DocVerdict::Pass)
            }
        }
        Err(CoreError::Exhausted(e)) => Err(CoreError::Exhausted(e)),
        Err(e) => Ok(DocVerdict::Fail(format!("shred round trip error: {e}"))),
    }
}

enum DocVerdict {
    Pass,
    Skip,
    Fail(String),
}

fn check_document(dtd: &Dtd, result: &NormalizeResult, doc: &xnf_xml::XmlTree) -> DocVerdict {
    match verify_lossless(dtd, result, doc) {
        Ok(report) if report.ok() => {}
        Ok(report) => {
            // Localize the first offending step for the failure report.
            let trace = match verify_lossless_trace(dtd, result, doc) {
                Ok(trace) => trace
                    .iter()
                    .find(|s| !s.ok())
                    .map(|s| format!("; first failing step: {s:?}"))
                    .unwrap_or_default(),
                Err(e) => format!("; trace unavailable: {e}"),
            };
            return DocVerdict::Fail(format!("losslessness violated: {report:?}{trace}"));
        }
        Err(CoreError::UnrepresentableNull { .. }) => return DocVerdict::Skip,
        Err(e) => return DocVerdict::Fail(format!("transformation error: {e}")),
    }
    // Independent projection check: transform + restore without consulting
    // tuples_D, compare the document-side value projections.
    let round_trip = xnf_core::transform_document(dtd, result, doc)
        .and_then(|t| xnf_core::restore_document(result, &t));
    match round_trip {
        Ok(restored) => {
            if value_projection(&restored) == value_projection(doc) {
                DocVerdict::Pass
            } else {
                DocVerdict::Fail("value projection not preserved by round trip".into())
            }
        }
        Err(CoreError::UnrepresentableNull { .. }) => DocVerdict::Skip,
        Err(e) => DocVerdict::Fail(format!("round-trip error: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIVERSITY_DTD: &str = "<!ELEMENT courses (course*)>
         <!ELEMENT course (title, taken_by)>
         <!ATTLIST course cno CDATA #REQUIRED>
         <!ELEMENT title (#PCDATA)>
         <!ELEMENT taken_by (student*)>
         <!ELEMENT student (name, grade)>
         <!ATTLIST student sno CDATA #REQUIRED>
         <!ELEMENT name (#PCDATA)>
         <!ELEMENT grade (#PCDATA)>";

    #[test]
    fn university_spec_passes_the_oracle() {
        let dtd = xnf_dtd::parse_dtd(UNIVERSITY_DTD).unwrap();
        let sigma = XmlFdSet::parse(xnf_core::fd::UNIVERSITY_FDS).unwrap();
        let config = SpecOracleConfig {
            docs: 25,
            ..SpecOracleConfig::default()
        };
        let report = check_spec(&dtd, &sigma, &config).unwrap();
        assert!(report.ok(), "{}", report.render());
        assert!(report.docs_checked > 0, "{}", report.render());
    }

    #[test]
    fn oracle_rejects_a_broken_round_trip() {
        // Sanity: the oracle is not vacuously green. Feed it a result whose
        // recorded steps were tampered with (the revised DTD no longer
        // matches the step list) and expect failures.
        let dtd = xnf_dtd::parse_dtd(UNIVERSITY_DTD).unwrap();
        let sigma = XmlFdSet::parse(xnf_core::fd::UNIVERSITY_FDS).unwrap();
        let mut result = normalize(&dtd, &sigma, &xnf_core::NormalizeOptions::default()).unwrap();
        result.steps.pop();
        let doc = xnf_gen::doc::university_document(4, 3, 6, 3);
        let verdict = check_document(&dtd, &result, &doc);
        assert!(
            !matches!(verdict, DocVerdict::Pass),
            "tampered result must not pass"
        );
    }
}
