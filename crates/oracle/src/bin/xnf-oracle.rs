//! `xnf-oracle` — the seeded fuzz driver.
//!
//! ```text
//! xnf-oracle fuzz [--seeds N] [--start S] [--docs M] [--fuel F] [--out DIR]
//!                 [--metrics FILE] [--obs-format FMT]
//! ```
//!
//! Runs the oracle battery (losslessness + metamorphic invariants) over
//! `N` consecutive seeds. Failures are minimized by greedy FD-subset
//! reduction and, with `--out`, written as `<seed>.dtd` / `<seed>.fds`
//! (plus a `<seed>.txt` finding report) ready to be checked into
//! `tests/oracle_corpus/`. `--fuel` caps per-seed engine work (exhausted
//! seeds are skipped, not failed) so a sweep over adversarial seeds is
//! time-bounded. `--metrics` enables an `xnf-obs` recorder for the whole
//! sweep — per-seed progress counters (`fuzz.seeds` / `fuzz.failures`)
//! plus every engine checkpoint-site tally — and writes it to FILE on
//! exit (Prometheus text by default; `--obs-format` picks
//! chrome|jsonl|prometheus). Exits nonzero iff any seed failed.

use std::process::ExitCode;
use xnf_govern::Recorder;
use xnf_obs::ObsFormat;
use xnf_oracle::{fuzz_seed, minimize, FuzzConfig};

const USAGE: &str = "xnf-oracle fuzz [--seeds N] [--start S] [--docs M] [--fuel F] [--out DIR] [--metrics FILE] [--obs-format FMT]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(failures) => {
            eprintln!("xnf-oracle: {failures} failing seed(s)");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("xnf-oracle: {msg}");
            eprintln!("usage: {USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<usize, String> {
    let mut args = args.iter();
    match args.next().map(String::as_str) {
        Some("fuzz") => {}
        Some(other) => return Err(format!("unknown subcommand `{other}`")),
        None => return Err("missing subcommand".to_string()),
    }

    let mut seeds: u64 = 100;
    let mut start: u64 = 0;
    let mut out: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut obs_format: Option<ObsFormat> = None;
    let mut cfg = FuzzConfig::default();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => seeds = parse(value("--seeds")?)?,
            "--start" => start = parse(value("--start")?)?,
            "--docs" => cfg.docs_per_spec = parse(value("--docs")?)?,
            "--fuel" => cfg.fuel_per_spec = Some(parse(value("--fuel")?)?),
            "--out" => out = Some(value("--out")?.clone()),
            "--metrics" => metrics = Some(value("--metrics")?.clone()),
            "--obs-format" => {
                let v = value("--obs-format")?;
                obs_format =
                    Some(ObsFormat::parse(v).ok_or_else(|| {
                        format!("--obs-format needs one of {}", ObsFormat::NAMES)
                    })?);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if metrics.is_some() {
        cfg.recorder = Recorder::enabled();
    }

    let mut failures = 0usize;
    for seed in start..start.saturating_add(seeds) {
        let Some(found) = fuzz_seed(seed, &cfg) else {
            continue;
        };
        failures += 1;
        let shrunk = minimize(&found, &cfg);
        println!(
            "seed {seed}: {} — {}",
            shrunk.kind.as_str(),
            shrunk.detail.trim_end()
        );
        if let Some(dir) = &out {
            write_corpus(dir, &shrunk).map_err(|e| format!("writing corpus: {e}"))?;
        }
    }
    if let Some(path) = &metrics {
        let format = obs_format.unwrap_or(ObsFormat::Prometheus);
        std::fs::write(path, cfg.recorder.export(format))
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    println!(
        "fuzzed seeds {start}..{}: {failures} failure(s)",
        start.saturating_add(seeds)
    );
    Ok(failures)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid number `{s}`"))
}

fn write_corpus(dir: &str, failure: &xnf_oracle::FuzzFailure) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let stem = format!("{dir}/seed-{}-{}", failure.seed, failure.kind.as_str());
    std::fs::write(format!("{stem}.dtd"), &failure.dtd_text)?;
    std::fs::write(format!("{stem}.fds"), &failure.fds_text)?;
    std::fs::write(
        format!("{stem}.txt"),
        format!(
            "seed: {}\nkind: {}\n{}\n",
            failure.seed,
            failure.kind.as_str(),
            failure.detail
        ),
    )
}
