//! Brute-force FD implication by document enumeration.
//!
//! `(D, Σ) ⊢ φ` means every tree `T ⊨ D`, `T ⊨ Σ` also satisfies `φ`
//! (Section 4). The contrapositive is directly executable: a single
//! conforming, Σ-satisfying document that violates `φ` *certifies*
//! non-implication. This module generates a pool of such documents for a
//! spec and tests candidate FDs against the pool through the Codd-table
//! satisfaction path ([`xnf_relational::Relation::satisfies_fd`] over
//! [`xnf_core::tuples_relation`]) — a code path disjoint from both the
//! chase engine and the hash-grouped `check_tuples` fast path, which is
//! what makes the differential test against
//! [`xnf_core::ImplicationCache`] meaningful.
//!
//! The oracle is one-sided by nature: finding a witness refutes
//! implication *soundly*; finding none is merely "no small witness" (the
//! pool is finite), which the differential harness treats as consistent
//! with either verdict unless the chase's own
//! [`xnf_core::CounterexampleSearch`] certifies non-implication.

use xnf_core::{tuples_relation, CoreError, XmlFd, XmlFdSet};
use xnf_dtd::{Dtd, Path, PathSet};
use xnf_gen::doc::{satisfying_documents, DocParams};
use xnf_relational::Relation;
use xnf_xml::XmlTree;

/// A document-pool implication refuter for one spec `(D, Σ)`.
#[derive(Debug)]
pub struct BruteForce<'a> {
    dtd: &'a Dtd,
    paths: PathSet,
    pool: Vec<(XmlTree, Relation)>,
}

impl<'a> BruteForce<'a> {
    /// Builds the pool: up to `pool_size` documents with `T ⊨ D`,
    /// `T ⊨ Σ`, materialized as Codd-table relations. The same pool is
    /// shared by every FD later tested against this spec.
    pub fn new(
        dtd: &'a Dtd,
        sigma: &XmlFdSet,
        seed: u64,
        pool_size: usize,
        params: &DocParams,
    ) -> Result<BruteForce<'a>, CoreError> {
        let paths = dtd.paths()?;
        let mut rng = xnf_gen::rng(seed);
        let docs = satisfying_documents(dtd, sigma, &mut rng, params, pool_size, pool_size * 20);
        let mut pool = Vec::with_capacity(docs.len());
        for doc in docs {
            let rel = tuples_relation(&doc, dtd, &paths)?;
            pool.push((doc, rel));
        }
        Ok(BruteForce { dtd, paths, pool })
    }

    /// Number of pooled witness candidates.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// The path set of the spec's DTD.
    pub fn paths(&self) -> &PathSet {
        &self.paths
    }

    /// Searches the pool for a document violating `fd`; returns its index.
    ///
    /// A `Some(i)` answer is a certified refutation of `(D, Σ) ⊢ fd`:
    /// [`Self::witness`]`(i)` conforms to `D`, satisfies `Σ`, and violates
    /// `fd`. `None` only means the pool contains no witness.
    pub fn refutes(&self, fd: &XmlFd) -> Result<Option<usize>, CoreError> {
        let lhs: Vec<String> = fd.lhs().iter().map(Path::to_string).collect();
        let rhs: Vec<String> = fd.rhs().iter().map(Path::to_string).collect();
        for (i, (_, rel)) in self.pool.iter().enumerate() {
            let sat = rel
                .satisfies_fd(&lhs, &rhs)
                .map_err(|e| CoreError::InconsistentTuples(format!("fd column lookup: {e}")))?;
            if !sat {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }

    /// The `i`-th pooled document.
    pub fn witness(&self, i: usize) -> &XmlTree {
        &self.pool[i].0
    }

    /// Debug-asserts the pool's invariants (used by the differential
    /// tests): every pooled document conforms to `D`.
    pub fn pool_conforms(&self) -> bool {
        self.pool
            .iter()
            .all(|(doc, _)| xnf_xml::conforms(doc, self.dtd).is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xnf_core::{Chase, Implication};

    #[test]
    fn brute_force_refutes_known_non_implications() {
        // Example 5.1: sno → student is not implied by the university Σ.
        let dtd = xnf_dtd::parse_dtd(
            "<!ELEMENT courses (course*)>
             <!ELEMENT course (title, taken_by)>
             <!ATTLIST course cno CDATA #REQUIRED>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT taken_by (student*)>
             <!ELEMENT student (name, grade)>
             <!ATTLIST student sno CDATA #REQUIRED>
             <!ELEMENT name (#PCDATA)>
             <!ELEMENT grade (#PCDATA)>",
        )
        .unwrap();
        let sigma = XmlFdSet::parse(xnf_core::fd::UNIVERSITY_FDS).unwrap();
        let brute = BruteForce::new(
            &dtd,
            &sigma,
            7,
            48,
            &DocParams {
                reps: (0, 3),
                value_alphabet: 2,
                max_nodes: 200,
            },
        )
        .unwrap();
        assert!(brute.pool_size() > 0);
        assert!(brute.pool_conforms());
        let not_implied =
            XmlFd::parse("courses.course.taken_by.student.@sno -> courses.course.taken_by.student")
                .unwrap();
        let witness = brute.refutes(&not_implied).unwrap();
        assert!(witness.is_some(), "expected a pool witness");
        // And the refutation never contradicts the (sound) chase.
        let paths = dtd.paths().unwrap();
        let chase = Chase::new(&dtd, &paths);
        let resolved_sigma = sigma.resolve(&paths).unwrap();
        assert!(!chase.implies(&resolved_sigma, &not_implied.resolve(&paths).unwrap()));
    }

    #[test]
    fn brute_force_never_refutes_an_implied_fd() {
        let dtd = xnf_dtd::parse_dtd(
            "<!ELEMENT courses (course*)>
             <!ELEMENT course (title)>
             <!ATTLIST course cno CDATA #REQUIRED>
             <!ELEMENT title (#PCDATA)>",
        )
        .unwrap();
        let sigma = XmlFdSet::parse("courses.course.@cno -> courses.course").unwrap();
        let brute = BruteForce::new(&dtd, &sigma, 11, 32, &DocParams::default()).unwrap();
        // Trivially implied (reflexivity through the node): course → title.S.
        let implied = XmlFd::parse("courses.course -> courses.course.title.S").unwrap();
        assert_eq!(brute.refutes(&implied).unwrap(), None);
        // In Σ itself: must never be refuted by a Σ-satisfying pool.
        let in_sigma = XmlFd::parse("courses.course.@cno -> courses.course").unwrap();
        assert_eq!(brute.refutes(&in_sigma).unwrap(), None);
    }
}
