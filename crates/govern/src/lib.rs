//! # `xnf-govern` — resource governance for the XNF engine
//!
//! The implication problem the engine solves is coNP-complete for general
//! DTDs (Theorem 5 of Arenas & Libkin), so every hot path — the chase,
//! the normalize loop, automaton construction and matching, document
//! parsing and conformance — accepts a [`Budget`]: a cheap, cloneable
//! handle carrying a wall-clock deadline, a step-fuel allowance, a memory
//! cap (in caller-defined units), and a cooperative cancellation flag.
//!
//! Code under governance calls [`Budget::checkpoint`] at loop heads and
//! recursion sites (and [`Budget::charge`] where it allocates) and
//! propagates the structured [`Exhausted`] error instead of doing
//! unbounded work. [`Budget::unlimited`] is a no-allocation handle whose
//! checkpoints compile to a single `Option` test, so governed code run
//! ungoverned stays on the pre-governance fast path.
//!
//! Budgets are shared by cloning: all clones see the same counters, so a
//! deadline or [`Budget::cancel`] call observed by one worker thread stops
//! the others at their next checkpoint.
//!
//! With the `fault-injection` feature (test-only) a deterministic
//! [`FaultPlan`] can trip a synthetic exhaustion at the Nth checkpoint,
//! and budgets record the distinct checkpoint site labels they visit —
//! the substrate for the property tests asserting every injection site
//! surfaces a clean error and never a wrong verdict.
//!
//! A governed budget can additionally carry an `xnf-obs` [`Recorder`]
//! ([`BudgetBuilder::recorder`]): every checkpoint site visit is then
//! forwarded to [`Recorder::count_site`], and governed code reaches the
//! recorder through [`Budget::recorder`] to bracket its phases with
//! spans — no extra parameters anywhere. An ungoverned budget (and a
//! governed one without a recorder) keeps the disabled recorder, whose
//! probes are a single `Option` test.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use xnf_obs::Recorder;

/// How often (in checkpoints) the wall-clock deadline is consulted.
/// `Instant::now` costs tens of nanoseconds; amortizing it keeps the
/// per-checkpoint overhead of a governed run within the <3% target.
const DEADLINE_STRIDE: u64 = 64;

/// The resource whose budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The wall-clock deadline passed.
    Deadline,
    /// The step-fuel allowance was spent.
    Fuel,
    /// The memory cap (in caller-defined units) was exceeded.
    Memory,
    /// The budget was cooperatively cancelled.
    Cancelled,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::Deadline => "wall-clock deadline",
            Resource::Fuel => "step fuel",
            Resource::Memory => "memory cap",
            Resource::Cancelled => "cancellation",
        })
    }
}

/// A budget ran out: the structured error every governed path returns
/// instead of doing unbounded work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exhausted {
    /// Which resource ran out.
    pub resource: Resource,
    /// Where governed execution stopped (checkpoint site label and
    /// ordinal) — enough to see how far the computation got.
    pub progress: String,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resource budget exhausted ({}) {}",
            self.resource, self.progress
        )
    }
}

impl std::error::Error for Exhausted {}

/// A deterministic failure plan: trips a synthetic [`Exhausted`] of the
/// given [`Resource`] at exactly the `trip_at`-th checkpoint (1-based).
///
/// Test-only (`fault-injection` feature): sweeping `trip_at` over the
/// checkpoint ordinals of a computation exercises every injection site.
#[cfg(feature = "fault-injection")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// 1-based checkpoint ordinal at which to trip.
    pub trip_at: u64,
    /// The resource the synthetic exhaustion reports.
    pub resource: Resource,
}

#[cfg(feature = "fault-injection")]
impl FaultPlan {
    /// Derives a plan from a seed: `trip_at ∈ 1..=max_ordinal` and a
    /// resource, both via a splitmix64 step so plans are reproducible
    /// without an RNG dependency.
    pub fn seeded(seed: u64, max_ordinal: u64) -> FaultPlan {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let trip_at = 1 + z % max_ordinal.max(1);
        let resource = match (z >> 33) % 4 {
            0 => Resource::Deadline,
            1 => Resource::Fuel,
            2 => Resource::Memory,
            _ => Resource::Cancelled,
        };
        FaultPlan { trip_at, resource }
    }
}

#[derive(Debug)]
struct Inner {
    deadline: Option<Instant>,
    /// Remaining fuel; `u64::MAX` means unmetered.
    fuel: AtomicU64,
    fuel_metered: bool,
    memory_cap: Option<u64>,
    memory_used: AtomicU64,
    cancelled: AtomicBool,
    /// Total checkpoints observed (drives deadline amortization and the
    /// fault plan's ordinals).
    ticks: AtomicU64,
    /// Observability sink; the disabled recorder unless the builder
    /// installed one, so the default governed path pays one `Option`
    /// test per checkpoint for it.
    recorder: Recorder,
    #[cfg(feature = "fault-injection")]
    fault: Option<FaultPlan>,
    /// Site label → ordinal of its first visit (1-based): both the
    /// coverage ledger and the targeting table for fault sweeps.
    #[cfg(feature = "fault-injection")]
    sites: std::sync::Mutex<std::collections::BTreeMap<&'static str, u64>>,
}

impl Inner {
    fn exhausted(&self, resource: Resource, site: &'static str, ordinal: u64) -> Exhausted {
        Exhausted {
            resource,
            progress: format!("at `{site}` after {ordinal} checkpoints"),
        }
    }

    fn tick(&self, site: &'static str, memory_units: u64) -> Result<(), Exhausted> {
        let ordinal = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        self.recorder.count_site(site, memory_units);
        #[cfg(feature = "fault-injection")]
        {
            if let Ok(mut sites) = self.sites.lock() {
                sites.entry(site).or_insert(ordinal);
            }
            if let Some(plan) = self.fault {
                if ordinal == plan.trip_at {
                    return Err(self.exhausted(plan.resource, site, ordinal));
                }
            }
        }
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(self.exhausted(Resource::Cancelled, site, ordinal));
        }
        if self.fuel_metered {
            let mut cur = self.fuel.load(Ordering::Relaxed);
            loop {
                if cur == 0 {
                    return Err(self.exhausted(Resource::Fuel, site, ordinal));
                }
                match self.fuel.compare_exchange_weak(
                    cur,
                    cur - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        if memory_units > 0 {
            if let Some(cap) = self.memory_cap {
                let used =
                    self.memory_used.fetch_add(memory_units, Ordering::Relaxed) + memory_units;
                if used > cap {
                    return Err(self.exhausted(Resource::Memory, site, ordinal));
                }
            }
        }
        if let Some(deadline) = self.deadline {
            if (ordinal == 1 || ordinal.is_multiple_of(DEADLINE_STRIDE))
                && Instant::now() >= deadline
            {
                return Err(self.exhausted(Resource::Deadline, site, ordinal));
            }
        }
        Ok(())
    }
}

/// Configures and builds a governed [`Budget`]; see [`Budget::builder`].
///
/// Every budget a builder produces is *governed* (it owns shared
/// counters, so it is cancellable) even when no limit is set; the
/// zero-overhead ungoverned handle is [`Budget::unlimited`].
#[derive(Debug, Default)]
pub struct BudgetBuilder {
    deadline: Option<Duration>,
    deadline_at: Option<Instant>,
    fuel: Option<u64>,
    memory: Option<u64>,
    recorder: Recorder,
    #[cfg(feature = "fault-injection")]
    fault: Option<FaultPlan>,
}

impl BudgetBuilder {
    /// Sets a wall-clock deadline `d` from now.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets an *absolute* wall-clock deadline. A service propagating one
    /// request deadline through several pipeline stages uses this so the
    /// clock is not restarted per stage; if both this and
    /// [`BudgetBuilder::deadline`] are given, the earlier instant wins.
    pub fn deadline_at(mut self, at: Instant) -> Self {
        self.deadline_at = Some(at);
        self
    }

    /// Sets the step-fuel allowance: each checkpoint consumes one unit.
    pub fn fuel(mut self, units: u64) -> Self {
        self.fuel = Some(units);
        self
    }

    /// Sets the memory cap, in the units governed code passes to
    /// [`Budget::charge`] (this library does not prescribe bytes).
    pub fn memory(mut self, units: u64) -> Self {
        self.memory = Some(units);
        self
    }

    /// Installs an observability [`Recorder`]: every checkpoint site
    /// visit is forwarded to it, and governed code reaches it through
    /// [`Budget::recorder`] to emit phase spans. The handle is a cheap
    /// shared clone, so the caller keeps its copy for export.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Installs a deterministic [`FaultPlan`] (test-only).
    #[cfg(feature = "fault-injection")]
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Builds the budget, starting the deadline clock now.
    pub fn build(self) -> Budget {
        let relative = self.deadline.map(|d| Instant::now() + d);
        let deadline = match (relative, self.deadline_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Budget {
            inner: Some(Arc::new(Inner {
                deadline,
                fuel: AtomicU64::new(self.fuel.unwrap_or(u64::MAX)),
                fuel_metered: self.fuel.is_some(),
                memory_cap: self.memory,
                memory_used: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
                ticks: AtomicU64::new(0),
                recorder: self.recorder,
                #[cfg(feature = "fault-injection")]
                fault: self.fault,
                #[cfg(feature = "fault-injection")]
                sites: std::sync::Mutex::new(std::collections::BTreeMap::new()),
            })),
        }
    }
}

/// A shared resource budget. Clones share the same counters.
///
/// The two construction paths:
///
/// * [`Budget::unlimited`] (also [`Default`]) — ungoverned: checkpoints
///   are a single pointer test, nothing can exhaust, [`Budget::cancel`]
///   is a no-op. Exactly the pre-governance behavior.
/// * [`Budget::builder`] — governed: deadline, fuel, and memory limits
///   are each optional, and the handle is cooperatively cancellable.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    inner: Option<Arc<Inner>>,
}

/// What a budget has consumed at one moment, from [`Budget::usage`]:
/// the per-request "tick snapshot" a service stamps into its access log
/// and flight-recorder records after the op finishes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetUsage {
    /// Checkpoints observed (0 for an ungoverned budget).
    pub ticks: u64,
    /// Remaining fuel, if fuel is metered.
    pub remaining_fuel: Option<u64>,
    /// Memory units charged (0 for an ungoverned budget).
    pub memory_used: u64,
}

impl Budget {
    /// The ungoverned budget: nothing is metered, nothing can exhaust.
    pub const fn unlimited() -> Budget {
        Budget { inner: None }
    }

    /// Starts configuring a governed budget.
    pub fn builder() -> BudgetBuilder {
        BudgetBuilder::default()
    }

    /// Whether this handle meters anything (false for [`unlimited`]).
    ///
    /// [`unlimited`]: Budget::unlimited
    pub fn is_governed(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one unit of work at the named site; errors once any
    /// resource is exhausted. Call this at loop heads and recursion
    /// sites of governed code.
    #[inline]
    pub fn checkpoint(&self, site: &'static str) -> Result<(), Exhausted> {
        match &self.inner {
            None => Ok(()),
            Some(inner) => inner.tick(site, 0),
        }
    }

    /// Like [`checkpoint`], additionally charging `units` against the
    /// memory cap. Units are caller-defined (nodes, states, tuples …).
    ///
    /// [`checkpoint`]: Budget::checkpoint
    #[inline]
    pub fn charge(&self, site: &'static str, units: u64) -> Result<(), Exhausted> {
        match &self.inner {
            None => Ok(()),
            Some(inner) => inner.tick(site, units),
        }
    }

    /// The budget's observability [`Recorder`] — the disabled recorder
    /// unless [`BudgetBuilder::recorder`] installed one (an ungoverned
    /// budget always reports the disabled recorder). Governed code uses
    /// this to bracket phases: `let _span = budget.recorder().span(…)`.
    pub fn recorder(&self) -> &Recorder {
        static DISABLED: Recorder = Recorder::disabled();
        match &self.inner {
            None => &DISABLED,
            Some(inner) => &inner.recorder,
        }
    }

    /// Cooperatively cancels every clone of this budget: the next
    /// checkpoint anywhere returns [`Resource::Cancelled`]. No-op on an
    /// ungoverned budget.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether [`cancel`] has been called on any clone.
    ///
    /// [`cancel`]: Budget::cancel
    pub fn is_cancelled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.cancelled.load(Ordering::Relaxed))
    }

    /// Total checkpoints observed so far (0 for an ungoverned budget).
    pub fn ticks(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.ticks.load(Ordering::Relaxed))
    }

    /// Remaining fuel, if fuel is metered.
    pub fn remaining_fuel(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .filter(|i| i.fuel_metered)
            .map(|i| i.fuel.load(Ordering::Relaxed))
    }

    /// The absolute wall-clock deadline, if one is set. A service layer
    /// uses this to compute the time still available for a nested stage
    /// (or a `Retry-After` hint) without threading the original
    /// `Duration` alongside the budget.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// Memory units charged so far (0 for an ungoverned budget).
    pub fn memory_used(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.memory_used.load(Ordering::Relaxed))
    }

    /// A point-in-time [`BudgetUsage`] snapshot — what this budget has
    /// consumed so far. A service layer takes one per finished request
    /// to stamp fuel ticks into its access log and flight records
    /// without holding onto the budget itself.
    pub fn usage(&self) -> BudgetUsage {
        BudgetUsage {
            ticks: self.ticks(),
            remaining_fuel: self.remaining_fuel(),
            memory_used: self.memory_used(),
        }
    }

    /// The distinct checkpoint site labels this budget has visited, in
    /// sorted order (test-only; the fault-injection property tests assert
    /// coverage of the injection surface with this).
    #[cfg(feature = "fault-injection")]
    pub fn sites(&self) -> Vec<&'static str> {
        self.inner
            .as_ref()
            .and_then(|i| i.sites.lock().ok().map(|s| s.keys().copied().collect()))
            .unwrap_or_default()
    }

    /// Each visited site with the 1-based ordinal of its *first* visit
    /// (test-only). On a deterministic workload these ordinals are the
    /// targeting table for a fault sweep: installing a [`FaultPlan`] that
    /// trips at a site's first-visit ordinal injects precisely there.
    #[cfg(feature = "fault-injection")]
    pub fn site_ordinals(&self) -> Vec<(&'static str, u64)> {
        self.inner
            .as_ref()
            .and_then(|i| {
                i.sites
                    .lock()
                    .ok()
                    .map(|s| s.iter().map(|(&k, &v)| (k, v)).collect())
            })
            .unwrap_or_default()
    }
}

/// A thread-safe token bucket: the per-tenant admission quota primitive
/// of `xnf-serve`. Capacity `burst` tokens, refilled continuously at
/// `per_sec` tokens per second; [`TokenBucket::try_take`] either debits
/// the cost or reports how long until enough tokens accumulate (the
/// `Retry-After` hint).
///
/// Time is injected by the caller ([`Instant`]s), so tests drive the
/// bucket deterministically without sleeping.
#[derive(Debug)]
pub struct TokenBucket {
    burst: f64,
    per_sec: f64,
    state: std::sync::Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket holding at most `burst` tokens, refilled at `per_sec`
    /// tokens per second, starting full at `now`.
    pub fn new(burst: f64, per_sec: f64, now: Instant) -> TokenBucket {
        TokenBucket {
            burst: burst.max(0.0),
            per_sec: per_sec.max(0.0),
            state: std::sync::Mutex::new(BucketState {
                tokens: burst.max(0.0),
                last: now,
            }),
        }
    }

    /// Attempts to debit `cost` tokens at time `now`. On refusal,
    /// returns the duration after which the debit would succeed —
    /// `None` if it never can (cost exceeds the burst capacity, with a
    /// zero refill rate).
    #[allow(clippy::missing_errors_doc)]
    pub fn try_take(&self, cost: f64, now: Instant) -> Result<(), Option<Duration>> {
        // A poisoned bucket fails closed: refuse with a short retry
        // hint rather than admit unmetered load.
        let Ok(mut s) = self.state.lock() else {
            return Err(Some(Duration::from_secs(1)));
        };
        let elapsed = now.saturating_duration_since(s.last).as_secs_f64();
        s.tokens = (s.tokens + elapsed * self.per_sec).min(self.burst);
        s.last = now;
        if s.tokens >= cost {
            s.tokens -= cost;
            return Ok(());
        }
        // A full bucket could never cover it, or nothing refills: no
        // amount of waiting helps.
        if cost > self.burst || self.per_sec == 0.0 {
            return Err(None);
        }
        let deficit = cost - s.tokens;
        Err(Some(Duration::from_secs_f64(deficit / self.per_sec)))
    }

    /// Tokens currently available at time `now` (refill applied, no
    /// debit).
    pub fn available(&self, now: Instant) -> f64 {
        match self.state.lock() {
            Ok(s) => {
                let elapsed = now.saturating_duration_since(s.last).as_secs_f64();
                (s.tokens + elapsed * self.per_sec).min(self.burst)
            }
            Err(_) => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_snapshots_ticks_fuel_and_memory() {
        assert_eq!(Budget::unlimited().usage(), BudgetUsage::default());
        let b = Budget::builder().fuel(100).memory(1 << 20).build();
        b.checkpoint("test.site").unwrap();
        b.charge("test.site", 64).unwrap();
        let usage = b.usage();
        assert_eq!(usage.ticks, 2);
        assert_eq!(usage.remaining_fuel, Some(98));
        assert_eq!(usage.memory_used, 64);
    }

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.checkpoint("test.site").unwrap();
            b.charge("test.site", 1 << 40).unwrap();
        }
        assert!(!b.is_governed());
        assert_eq!(b.ticks(), 0);
        b.cancel();
        b.checkpoint("test.site").unwrap();
    }

    #[test]
    fn fuel_exhausts_after_exactly_n_checkpoints() {
        let b = Budget::builder().fuel(5).build();
        for _ in 0..5 {
            b.checkpoint("test.fuel").unwrap();
        }
        let err = b.checkpoint("test.fuel").unwrap_err();
        assert_eq!(err.resource, Resource::Fuel);
        assert!(err.progress.contains("test.fuel"), "{}", err.progress);
        // Exhaustion is sticky: fuel stays at zero.
        assert_eq!(b.remaining_fuel(), Some(0));
        assert!(b.checkpoint("test.fuel").is_err());
    }

    #[test]
    fn memory_cap_trips_on_the_overflowing_charge() {
        let b = Budget::builder().memory(10).build();
        b.charge("test.mem", 6).unwrap();
        let err = b.charge("test.mem", 6).unwrap_err();
        assert_eq!(err.resource, Resource::Memory);
        assert!(b.memory_used() >= 10);
    }

    #[test]
    fn expired_deadline_trips_on_the_first_checkpoint() {
        let b = Budget::builder().deadline(Duration::ZERO).build();
        let err = b.checkpoint("test.deadline").unwrap_err();
        assert_eq!(err.resource, Resource::Deadline);
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = Budget::builder()
            .deadline(Duration::from_secs(3600))
            .build();
        for _ in 0..1000 {
            b.checkpoint("test.deadline").unwrap();
        }
    }

    #[test]
    fn cancellation_is_seen_by_clones() {
        let b = Budget::builder().build();
        let clone = b.clone();
        clone.checkpoint("test.cancel").unwrap();
        b.cancel();
        let err = clone.checkpoint("test.cancel").unwrap_err();
        assert_eq!(err.resource, Resource::Cancelled);
        assert!(b.is_cancelled() && clone.is_cancelled());
    }

    #[test]
    fn absolute_deadline_is_honored_and_readable() {
        let at = Instant::now() + Duration::from_secs(3600);
        let b = Budget::builder().deadline_at(at).build();
        assert_eq!(b.deadline(), Some(at));
        b.checkpoint("test.abs").unwrap();
        // When both forms are given, the earlier instant wins.
        let past = Instant::now();
        let b = Budget::builder()
            .deadline(Duration::from_secs(3600))
            .deadline_at(past)
            .build();
        assert_eq!(b.deadline(), Some(past));
        let err = b.checkpoint("test.abs").unwrap_err();
        assert_eq!(err.resource, Resource::Deadline);
        // Unlimited and plain governed budgets expose no deadline.
        assert_eq!(Budget::unlimited().deadline(), None);
        assert_eq!(Budget::builder().build().deadline(), None);
    }

    #[test]
    fn token_bucket_debits_refuses_and_refills() {
        let t0 = Instant::now();
        let bucket = TokenBucket::new(2.0, 1.0, t0);
        assert!(bucket.try_take(1.0, t0).is_ok());
        assert!(bucket.try_take(1.0, t0).is_ok());
        // Empty: refusal carries the refill wait for the missing token.
        let wait = bucket.try_take(1.0, t0).unwrap_err();
        let wait = wait.expect("refill makes the debit reachable");
        assert!(wait <= Duration::from_secs(1), "{wait:?}");
        // 1.5 simulated seconds later one token has accumulated.
        let t1 = t0 + Duration::from_millis(1500);
        assert!(bucket.available(t1) >= 1.0);
        assert!(bucket.try_take(1.0, t1).is_ok());
        // A cost above burst capacity is unreachable forever.
        assert_eq!(bucket.try_take(5.0, t1), Err(None));
        // Zero refill rate: exhaustion is permanent.
        let frozen = TokenBucket::new(1.0, 0.0, t0);
        assert!(frozen.try_take(1.0, t0).is_ok());
        assert_eq!(
            frozen.try_take(1.0, t0 + Duration::from_secs(60)),
            Err(None)
        );
    }

    #[test]
    fn display_is_informative() {
        let b = Budget::builder().fuel(0).build();
        let err = b.checkpoint("chase.saturate.queue").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("step fuel"), "{msg}");
        assert!(msg.contains("chase.saturate.queue"), "{msg}");
    }

    #[test]
    fn recorder_sees_checkpoint_sites_and_units() {
        let rec = Recorder::enabled();
        let b = Budget::builder().recorder(rec.clone()).build();
        b.checkpoint("test.site").unwrap();
        b.checkpoint("test.site").unwrap();
        b.charge("test.charge", 5).unwrap();
        assert!(b.recorder().is_enabled());
        let sites = rec.sites();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].0, "test.charge");
        assert_eq!(sites[0].1.visits, 1);
        assert_eq!(sites[0].1.units, 5);
        assert_eq!(sites[1].0, "test.site");
        assert_eq!(sites[1].1.visits, 2);
    }

    #[test]
    fn ungoverned_budget_reports_the_disabled_recorder() {
        let b = Budget::unlimited();
        assert!(!b.recorder().is_enabled());
        // Probes through it are inert but safe.
        let _span = b.recorder().span("phase", "cat");
        b.recorder().bump("nothing");
        // A governed budget without an explicit recorder is also dark.
        assert!(!Budget::builder().build().recorder().is_enabled());
    }

    #[test]
    fn exhausting_checkpoint_is_still_counted() {
        let rec = Recorder::enabled();
        let b = Budget::builder().fuel(1).recorder(rec.clone()).build();
        b.checkpoint("test.fuel").unwrap();
        assert!(b.checkpoint("test.fuel").is_err());
        assert_eq!(rec.sites()[0].1.visits, 2);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn fault_plan_trips_at_exactly_the_nth_checkpoint() {
        let plan = FaultPlan {
            trip_at: 3,
            resource: Resource::Memory,
        };
        let b = Budget::builder().fault(plan).build();
        b.checkpoint("a").unwrap();
        b.checkpoint("b").unwrap();
        let err = b.checkpoint("c").unwrap_err();
        assert_eq!(err.resource, Resource::Memory);
        assert_eq!(b.sites(), vec!["a", "b", "c"]);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..200 {
            let a = FaultPlan::seeded(seed, 50);
            let b = FaultPlan::seeded(seed, 50);
            assert_eq!(a, b);
            assert!((1..=50).contains(&a.trip_at));
        }
    }
}
