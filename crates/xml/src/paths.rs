//! `paths(T)` — the paths realized by a document (Section 2).
//!
//! A string `w₁…wₙ` is a path of `T` if a root-based chain of nodes
//! matches it; the final step may be an element, an attribute `@l`, or
//! `S` when the node has string content. Compatibility `T ◁ D` is
//! `paths(T) ⊆ paths(D)` ([`crate::compatible`] checks it stepwise; this
//! module materializes the set, which Definition 6's tuple machinery and
//! diagnostics want).

use crate::tree::{NodeContent, NodeId, XmlTree};
use std::collections::{BTreeMap, BTreeSet};
use xnf_dtd::{Path, Step};

/// Enumerates `paths(T)`, deduplicated and sorted.
pub fn paths_of(tree: &XmlTree) -> Vec<Path> {
    let mut out: BTreeSet<Path> = BTreeSet::new();
    let mut stack: Vec<(NodeId, Path)> = vec![(tree.root(), Path::root(tree.label(tree.root())))];
    while let Some((v, path)) = stack.pop() {
        for (name, _) in tree.attrs(v) {
            out.insert(path.child_attr(name));
        }
        match tree.content(v) {
            NodeContent::Text(_) => {
                out.insert(path.child_text());
            }
            NodeContent::Children(children) => {
                for &c in children {
                    let child_path = path.child_elem(tree.label(c));
                    stack.push((c, child_path));
                }
            }
        }
        out.insert(path);
    }
    out.into_iter().collect()
}

/// All nodes of `tree` lying at the element path `path` (by labels from
/// the root), in document order.
pub fn nodes_at(tree: &XmlTree, path: &Path) -> Vec<NodeId> {
    let mut current = vec![tree.root()];
    let mut steps = path.steps().iter();
    match steps.next() {
        Some(Step::Elem(root_label)) if &**root_label == tree.label(tree.root()) => {}
        _ => return Vec::new(),
    }
    for step in steps {
        let Step::Elem(label) = step else {
            return Vec::new();
        };
        current = current
            .iter()
            .flat_map(|&v| tree.children_labelled(v, label))
            .collect();
    }
    current
}

/// The values realized at a path: attribute values for `….@l`, text for
/// `….S`, and node count (as a length-only witness) is available via
/// [`nodes_at`] for element paths.
pub fn values_at(tree: &XmlTree, path: &Path) -> Vec<String> {
    match path.last() {
        Step::Elem(_) => Vec::new(),
        Step::Attr(name) => {
            let parent = path.parent().expect("attribute paths have parents");
            nodes_at(tree, &parent)
                .into_iter()
                .filter_map(|v| tree.attr(v, name).map(str::to_string))
                .collect()
        }
        Step::Text => {
            let parent = path.parent().expect("text paths have parents");
            nodes_at(tree, &parent)
                .into_iter()
                .filter_map(|v| tree.text(v).map(str::to_string))
                .collect()
        }
    }
}

/// The *value projection* of a document: for every realized path, the
/// multiset of values at it — attribute/text values (sorted, with
/// duplicates) for value paths, and the node count for element paths.
///
/// This is the tree-tuple content of `T` seen purely from the document
/// side — no DTD, no `tuples_D` machinery — so two documents with equal
/// projections carry the same information up to node identity and sibling
/// order. The oracle layer compares projections before/after a
/// transform/restore round trip as an information-preservation check that
/// is *independent* of the core crate's tuple code.
pub fn value_projection(tree: &XmlTree) -> BTreeMap<String, Vec<String>> {
    let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for path in paths_of(tree) {
        let entry = match path.last() {
            Step::Elem(_) => vec![format!("#nodes={}", nodes_at(tree, &path).len())],
            Step::Attr(_) | Step::Text => {
                let mut values = values_at(tree, &path);
                values.sort();
                values
            }
        };
        out.insert(path.to_string(), entry);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn doc() -> XmlTree {
        parse(
            r#"<courses>
              <course cno="c1"><title>T1</title><taken_by>
                <student sno="s1"><name>N</name><grade>A</grade></student>
              </taken_by></course>
              <course cno="c2"><title>T2</title><taken_by/></course>
            </courses>"#,
        )
        .unwrap()
    }

    #[test]
    fn paths_of_enumerates_realized_paths() {
        let t = doc();
        let paths: Vec<String> = paths_of(&t).iter().map(Path::to_string).collect();
        assert!(paths.contains(&"courses".to_string()));
        assert!(paths.contains(&"courses.course.@cno".to_string()));
        assert!(paths.contains(&"courses.course.title.S".to_string()));
        assert!(paths.contains(&"courses.course.taken_by.student.grade.S".to_string()));
        // No duplicates even though two courses realize the same paths.
        let unique: std::collections::BTreeSet<_> = paths.iter().collect();
        assert_eq!(unique.len(), paths.len());
    }

    #[test]
    fn paths_of_matches_dtd_compatibility() {
        let t = doc();
        let dtd = xnf_dtd::parse_dtd(
            "<!ELEMENT courses (course*)>
             <!ELEMENT course (title, taken_by)>
             <!ATTLIST course cno CDATA #REQUIRED>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT taken_by (student*)>
             <!ELEMENT student (name, grade)>
             <!ATTLIST student sno CDATA #REQUIRED>
             <!ELEMENT name (#PCDATA)>
             <!ELEMENT grade (#PCDATA)>",
        )
        .unwrap();
        let dtd_paths = dtd.paths().unwrap();
        // paths(T) ⊆ paths(D)  ⇔  compatible.
        assert!(crate::compatible(&t, &dtd));
        for p in paths_of(&t) {
            assert!(
                dtd_paths.resolve(&p).is_some(),
                "path {p} of T missing from paths(D)"
            );
        }
    }

    #[test]
    fn value_projection_ignores_order_but_not_content() {
        let t = doc();
        let proj = value_projection(&t);
        assert_eq!(
            proj["courses.course.@cno"],
            vec!["c1".to_string(), "c2".to_string()]
        );
        assert_eq!(proj["courses.course"], vec!["#nodes=2".to_string()]);
        // Sibling order does not matter…
        let swapped = parse(
            r#"<courses>
              <course cno="c2"><title>T2</title><taken_by/></course>
              <course cno="c1"><title>T1</title><taken_by>
                <student sno="s1"><name>N</name><grade>A</grade></student>
              </taken_by></course>
            </courses>"#,
        )
        .unwrap();
        assert_eq!(proj, value_projection(&swapped));
        // …but values do.
        let changed =
            parse(r#"<courses><course cno="c9"><title>T1</title><taken_by/></course></courses>"#)
                .unwrap();
        assert_ne!(proj, value_projection(&changed));
    }

    #[test]
    fn nodes_at_and_values_at() {
        let t = doc();
        let courses: Path = "courses.course".parse().unwrap();
        assert_eq!(nodes_at(&t, &courses).len(), 2);
        let cnos = values_at(&t, &"courses.course.@cno".parse().unwrap());
        assert_eq!(cnos, vec!["c1", "c2"]);
        let titles = values_at(&t, &"courses.course.title.S".parse().unwrap());
        assert_eq!(titles, vec!["T1", "T2"]);
        assert!(nodes_at(&t, &"wrong.root".parse().unwrap()).is_empty());
        assert!(values_at(&t, &"courses.course.@missing".parse().unwrap()).is_empty());
    }
}
