//! Conformance `T ⊨ D` and compatibility `T ◁ D` — Definition 3.

use crate::tree::{NodeContent, NodeId, XmlTree};
use crate::UNLIMITED;
use std::collections::HashMap;
use std::fmt;
use xnf_dtd::{ContentModel, Dtd};
use xnf_govern::{Budget, Exhausted};

/// Why a tree fails to conform to a DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConformError {
    /// The root label is not the DTD's root element type.
    WrongRoot {
        /// Expected root element type.
        expected: String,
        /// Actual label of the document root.
        found: String,
    },
    /// A node's label is not a declared element type.
    UnknownElement {
        /// The undeclared label.
        label: String,
    },
    /// A node's children word is not in the language of its content model.
    ContentMismatch {
        /// Label of the offending node.
        element: String,
        /// The labels of its children, in order.
        found: Vec<String>,
        /// The expected content model, rendered in DTD syntax.
        expected: String,
    },
    /// A node has text content but its element type does not declare
    /// `#PCDATA` (or vice versa).
    TextMismatch {
        /// Label of the offending node.
        element: String,
        /// Whether the node (rather than the DTD) has text content.
        node_has_text: bool,
    },
    /// A node's attribute set is not exactly `R(lab(v))`.
    AttributeMismatch {
        /// Label of the offending node.
        element: String,
        /// Attributes in `R(τ)` missing from the node.
        missing: Vec<String>,
        /// Attributes on the node that are not in `R(τ)`.
        unexpected: Vec<String>,
    },
    /// A resource budget ran out mid-check (see [`xnf_govern`]). The
    /// conformance verdict is unknown: callers must not treat this as a
    /// non-conformance.
    Exhausted(Exhausted),
}

impl fmt::Display for ConformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformError::WrongRoot { expected, found } => {
                write!(f, "root element is `{found}`, DTD requires `{expected}`")
            }
            ConformError::UnknownElement { label } => {
                write!(f, "element `{label}` is not declared in the DTD")
            }
            ConformError::ContentMismatch {
                element,
                found,
                expected,
            } => write!(
                f,
                "children of `{element}` are [{}], not in the language of `{expected}`",
                found.join(", ")
            ),
            ConformError::TextMismatch {
                element,
                node_has_text,
            } => {
                if *node_has_text {
                    write!(f, "`{element}` has text content but is not declared #PCDATA")
                } else {
                    write!(f, "`{element}` is declared #PCDATA but has element content")
                }
            }
            ConformError::AttributeMismatch {
                element,
                missing,
                unexpected,
            } => write!(
                f,
                "attributes of `{element}` do not match R({element}): missing [{}], unexpected [{}]",
                missing.join(", "),
                unexpected.join(", ")
            ),
            ConformError::Exhausted(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConformError {}

impl From<Exhausted> for ConformError {
    fn from(e: Exhausted) -> Self {
        ConformError::Exhausted(e)
    }
}

/// Checks `T ⊨ D` (Definition 3): every label is a declared element type,
/// the root is labelled `r`, every node's children word is in the language
/// of its content model (a `#PCDATA` element contains one string, with the
/// empty element `<t></t>` accepted as the empty string), and every node
/// defines exactly the attributes `R(lab(v))`.
pub fn conforms(t: &XmlTree, d: &Dtd) -> Result<(), ConformError> {
    conforms_governed(t, d, UNLIMITED)
}

/// [`conforms`] under a resource [`Budget`]: one checkpoint is spent per
/// document node, and content-model compilation/matching are charged
/// through the same budget. On exhaustion the result is
/// [`ConformError::Exhausted`] — an "unknown" verdict, never a spurious
/// mismatch.
pub fn conforms_governed(t: &XmlTree, d: &Dtd, budget: &Budget) -> Result<(), ConformError> {
    if t.label(t.root()) != d.root_name() {
        return Err(ConformError::WrongRoot {
            expected: d.root_name().to_string(),
            found: t.label(t.root()).to_string(),
        });
    }
    let mut matchers: HashMap<xnf_dtd::ElemId, xnf_dtd::nfa::Matcher> = HashMap::new();
    for v in t.descendants() {
        budget.checkpoint("xml.conform.node")?;
        let label = t.label(v);
        let elem = d
            .elem_id(label)
            .ok_or_else(|| ConformError::UnknownElement {
                label: label.to_string(),
            })?;
        // Attribute sets must match exactly (att(v, @l) defined iff
        // @l ∈ R(lab(v))).
        let missing: Vec<String> = d
            .attrs(elem)
            .filter(|a| t.attr(v, a).is_none())
            .map(str::to_string)
            .collect();
        let unexpected: Vec<String> = t
            .attrs(v)
            .filter(|(a, _)| !d.has_attr(elem, a))
            .map(|(a, _)| a.to_string())
            .collect();
        if !missing.is_empty() || !unexpected.is_empty() {
            return Err(ConformError::AttributeMismatch {
                element: label.to_string(),
                missing,
                unexpected,
            });
        }
        match (d.content(elem), t.content(v)) {
            (ContentModel::Text, NodeContent::Text(_)) => {}
            (ContentModel::Text, NodeContent::Children(c)) if c.is_empty() => {
                // `<title></title>` ⇒ ele(v) = [""] — accepted.
            }
            (ContentModel::Text, NodeContent::Children(_)) => {
                return Err(ConformError::TextMismatch {
                    element: label.to_string(),
                    node_has_text: false,
                });
            }
            (ContentModel::Regex(_), NodeContent::Text(_)) => {
                return Err(ConformError::TextMismatch {
                    element: label.to_string(),
                    node_has_text: true,
                });
            }
            (ContentModel::Regex(re), NodeContent::Children(children)) => {
                let m = match matchers.entry(elem) {
                    std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
                    std::collections::hash_map::Entry::Vacant(vac) => {
                        vac.insert(xnf_dtd::nfa::Matcher::new_governed(re, budget)?)
                    }
                };
                if !m.matches_governed(children.iter().map(|&c| t.label(c)), budget)? {
                    return Err(ConformError::ContentMismatch {
                        element: label.to_string(),
                        found: children.iter().map(|&c| t.label(c).to_string()).collect(),
                        expected: re.to_string(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks compatibility `T ◁ D`: `paths(T) ⊆ paths(D)` (Definition 3).
///
/// Works stepwise on the DTD's reference structure, so it also handles
/// recursive DTDs (whose `paths(D)` is infinite).
pub fn compatible(t: &XmlTree, d: &Dtd) -> bool {
    if t.label(t.root()) != d.root_name() {
        return false;
    }
    compatible_below(t, t.root(), d)
}

fn compatible_below(t: &XmlTree, v: NodeId, d: &Dtd) -> bool {
    let Some(elem) = d.elem_id(t.label(v)) else {
        return false;
    };
    // Attribute paths: p.@l ∈ paths(D) iff @l ∈ R(last(p)).
    if !t.attrs(v).all(|(a, _)| d.has_attr(elem, a)) {
        return false;
    }
    match t.content(v) {
        NodeContent::Text(_) => d.content(elem).is_text(),
        NodeContent::Children(children) => children.iter().all(|&c| {
            // p.τ' ∈ paths(D) iff τ' is in the alphabet of P(last(p)).
            match d.content(elem) {
                ContentModel::Text => false,
                ContentModel::Regex(re) => re.mentions(t.label(c)) && compatible_below(t, c, d),
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use xnf_dtd::parse_dtd;

    fn university_dtd() -> Dtd {
        parse_dtd(
            "<!ELEMENT courses (course*)>
             <!ELEMENT course (title, taken_by)>
             <!ATTLIST course cno CDATA #REQUIRED>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT taken_by (student*)>
             <!ELEMENT student (name, grade)>
             <!ATTLIST student sno CDATA #REQUIRED>
             <!ELEMENT name (#PCDATA)>
             <!ELEMENT grade (#PCDATA)>",
        )
        .unwrap()
    }

    fn figure_1a() -> crate::XmlTree {
        parse(
            r#"<courses>
              <course cno="csc200">
                <title>Automata Theory</title>
                <taken_by>
                  <student sno="st1"><name>Deere</name><grade>A+</grade></student>
                  <student sno="st2"><name>Smith</name><grade>B-</grade></student>
                </taken_by>
              </course>
              <course cno="mat100">
                <title>Calculus I</title>
                <taken_by>
                  <student sno="st1"><name>Deere</name><grade>A-</grade></student>
                  <student sno="st3"><name>Smith</name><grade>B+</grade></student>
                </taken_by>
              </course>
            </courses>"#,
        )
        .unwrap()
    }

    #[test]
    fn figure_1a_conforms() {
        assert_eq!(conforms(&figure_1a(), &university_dtd()), Ok(()));
        assert!(compatible(&figure_1a(), &university_dtd()));
    }

    #[test]
    fn wrong_root_detected() {
        let t = parse("<wrong/>").unwrap();
        let d = university_dtd();
        assert!(matches!(
            conforms(&t, &d),
            Err(ConformError::WrongRoot { .. })
        ));
        assert!(!compatible(&t, &d));
    }

    #[test]
    fn missing_attribute_detected() {
        let t = parse("<courses><course><title>T</title><taken_by/></course></courses>").unwrap();
        let d = university_dtd();
        match conforms(&t, &d) {
            Err(ConformError::AttributeMismatch { missing, .. }) => {
                assert_eq!(missing, vec!["cno"]);
            }
            other => panic!("expected AttributeMismatch, got {other:?}"),
        }
        // Missing attributes keep the tree *compatible* (paths(T) only
        // shrinks), unlike conformance.
        assert!(compatible(&t, &d));
    }

    #[test]
    fn unexpected_attribute_detected() {
        let t = parse(
            r#"<courses><course cno="c1" extra="x"><title>T</title><taken_by/></course></courses>"#,
        )
        .unwrap();
        let d = university_dtd();
        assert!(matches!(
            conforms(&t, &d),
            Err(ConformError::AttributeMismatch { .. })
        ));
        // An undeclared attribute also breaks compatibility.
        assert!(!compatible(&t, &d));
    }

    #[test]
    fn content_mismatch_detected() {
        // course children out of order.
        let t =
            parse(r#"<courses><course cno="c1"><taken_by/><title>T</title></course></courses>"#)
                .unwrap();
        let d = university_dtd();
        assert!(matches!(
            conforms(&t, &d),
            Err(ConformError::ContentMismatch { .. })
        ));
        // Compatibility only looks at paths, so order does not matter.
        assert!(compatible(&t, &d));
    }

    #[test]
    fn text_mismatch_detected() {
        let t =
            parse(r#"<courses><course cno="c1"><title><x/></title><taken_by/></course></courses>"#)
                .unwrap();
        let d = university_dtd();
        assert!(matches!(
            conforms(&t, &d),
            Err(ConformError::TextMismatch { .. }) | Err(ConformError::UnknownElement { .. })
        ));
        assert!(!compatible(&t, &d));
    }

    #[test]
    fn empty_text_element_accepted() {
        let t = parse(r#"<courses><course cno="c1"><title></title><taken_by/></course></courses>"#)
            .unwrap();
        assert_eq!(conforms(&t, &university_dtd()), Ok(()));
    }

    #[test]
    fn missing_required_child_detected() {
        let t = parse(r#"<courses><course cno="c1"><title>T</title></course></courses>"#).unwrap();
        assert!(matches!(
            conforms(&t, &university_dtd()),
            Err(ConformError::ContentMismatch { .. })
        ));
    }

    #[test]
    fn compatibility_with_recursive_dtd() {
        let d = parse_dtd(
            "<!ELEMENT r (part)>
             <!ELEMENT part (part*)>
             <!ATTLIST part id CDATA #REQUIRED>",
        )
        .unwrap();
        let t = parse(r#"<r><part id="1"><part id="2"><part id="3"/></part></part></r>"#).unwrap();
        assert!(compatible(&t, &d));
        assert_eq!(conforms(&t, &d), Ok(()));
    }

    #[test]
    fn governed_conformance_agrees_and_exhausts() {
        let t = figure_1a();
        let d = university_dtd();
        let generous = Budget::builder().fuel(1_000_000).build();
        assert_eq!(conforms_governed(&t, &d, &generous), Ok(()));
        let tiny = Budget::builder().fuel(3).build();
        match conforms_governed(&t, &d, &tiny) {
            Err(ConformError::Exhausted(e)) => {
                assert_eq!(e.resource, xnf_govern::Resource::Fuel);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn subtree_of_conforming_tree_is_compatible_not_conforming() {
        // Drop a required `grade` child: still compatible, not conforming.
        let t = parse(
            r#"<courses><course cno="c1"><title>T</title><taken_by>
               <student sno="s1"><name>N</name></student>
               </taken_by></course></courses>"#,
        )
        .unwrap();
        let d = university_dtd();
        assert!(compatible(&t, &d));
        assert!(conforms(&t, &d).is_err());
    }
}
