//! Serializing [`XmlTree`]s back to XML text.

use crate::tree::{NodeContent, NodeId, XmlTree};
use std::fmt::Write;

fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

fn write_node(t: &XmlTree, v: NodeId, indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push('<');
    out.push_str(t.label(v));
    for (name, value) in t.attrs(v) {
        write!(out, " {name}=\"").expect("writing to String cannot fail");
        escape_attr(value, out);
        out.push('"');
    }
    match t.content(v) {
        NodeContent::Children(children) if children.is_empty() => {
            out.push_str("/>\n");
        }
        NodeContent::Children(children) => {
            out.push_str(">\n");
            for &c in children {
                write_node(t, c, indent + 1, out);
            }
            for _ in 0..indent {
                out.push_str("  ");
            }
            writeln!(out, "</{}>", t.label(v)).expect("writing to String cannot fail");
        }
        NodeContent::Text(s) => {
            out.push('>');
            escape_text(s, out);
            writeln!(out, "</{}>", t.label(v)).expect("writing to String cannot fail");
        }
    }
}

/// Serializes the tree as indented XML. The output re-parses (via
/// [`crate::parse()`]) to a tree that is equal up to the unordered
/// equivalence `≡` — in fact, node-for-node identical in structure.
pub fn to_string_pretty(t: &XmlTree) -> String {
    let mut out = String::new();
    write_node(t, t.root(), 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn roundtrip_structure() {
        let src = r#"<courses><course cno="csc200"><title>Automata Theory</title></course><course cno="mat100"><title>Calculus I</title></course></courses>"#;
        let t = parse(src).unwrap();
        let text = to_string_pretty(&t);
        let t2 = parse(&text).unwrap();
        assert!(crate::order::unordered_eq(&t, &t2));
        // Stronger: serialization is a fixpoint.
        assert_eq!(text, to_string_pretty(&t2));
    }

    #[test]
    fn escaping_roundtrips() {
        let mut t = crate::XmlTree::new("r");
        t.set_attr(t.root(), "a", "x \"&\" <y>");
        let c = t.add_child(t.root(), "c");
        t.set_text(c, "1 < 2 & 3 > 2");
        let text = to_string_pretty(&t);
        let t2 = parse(&text).unwrap();
        assert_eq!(t2.attr(t2.root(), "a"), Some("x \"&\" <y>"));
        let c2 = t2.children(t2.root())[0];
        assert_eq!(t2.text(c2), Some("1 < 2 & 3 > 2"));
    }

    #[test]
    fn empty_element_is_self_closed() {
        let t = parse("<r><a/></r>").unwrap();
        let text = to_string_pretty(&t);
        assert!(text.contains("<a/>"));
    }
}
