//! The unordered subsumption pre-order `⊑` and equivalence `≡` (Section 3).
//!
//! The paper defines `T₁ ⊑ T₂` over trees sharing one vertex set. Our
//! trees are separate arenas, so we implement the two derived notions that
//! the theory actually uses:
//!
//! * [`embeds_in`] — `T₁` embeds in `T₂` iff there is an injective mapping
//!   `φ : V₁ → V₂` with `φ(root₁) = root₂` that preserves labels, preserves
//!   attribute functions exactly, and maps the children of each `v` to
//!   distinct children of `φ(v)` (the "sublist of a permutation" clause).
//!   This is subsumption up to renaming of vertices.
//! * [`unordered_eq`] — `T₁ ≡ T₂`: equality as unordered trees, decided by
//!   comparing canonical forms.

use crate::tree::{NodeContent, NodeId, XmlTree};
use std::collections::HashMap;

/// Canonical form of the subtree at `v`: a string that is invariant under
/// reordering of children and vertex renaming.
fn canon(t: &XmlTree, v: NodeId) -> String {
    let mut s = String::new();
    s.push('<');
    s.push_str(t.label(v));
    for (name, value) in t.attrs(v) {
        s.push(' ');
        s.push_str(name);
        s.push('=');
        // Length-prefix values so that no quoting ambiguity can make two
        // distinct attribute maps canonically equal.
        s.push_str(&value.len().to_string());
        s.push(':');
        s.push_str(value);
    }
    s.push('>');
    match t.content(v) {
        NodeContent::Text(text) => {
            s.push('$');
            s.push_str(&text.len().to_string());
            s.push(':');
            s.push_str(text);
        }
        NodeContent::Children(children) => {
            let mut kids: Vec<String> = children.iter().map(|&c| canon(t, c)).collect();
            kids.sort_unstable();
            for k in kids {
                s.push_str(&k);
            }
        }
    }
    s.push('/');
    s
}

/// Whether `a ≡ b`: the two documents are equal as *unordered* trees
/// (Section 3's `≡`, up to renaming of vertices).
pub fn unordered_eq(a: &XmlTree, b: &XmlTree) -> bool {
    if a.num_nodes() != b.num_nodes() {
        return false;
    }
    canon(a, a.root()) == canon(b, b.root())
}

/// Exact structural equality *with* sibling order: labels, attribute
/// functions, text, and the sequence of children all agree (only vertex
/// identities may differ). Strictly finer than [`unordered_eq`] — the
/// shredding round trip is checked against this, since the `pos` column
/// preserves document order.
pub fn ordered_eq(a: &XmlTree, b: &XmlTree) -> bool {
    fn eq_at(a: &XmlTree, va: NodeId, b: &XmlTree, vb: NodeId) -> bool {
        if a.label(va) != b.label(vb)
            || a.num_attrs(va) != b.num_attrs(vb)
            || !a.attrs(va).all(|(k, v)| b.attr(vb, k) == Some(v))
        {
            return false;
        }
        match (a.content(va), b.content(vb)) {
            (NodeContent::Text(s), NodeContent::Text(s2)) => s == s2,
            (NodeContent::Children(ca), NodeContent::Children(cb)) => {
                ca.len() == cb.len() && ca.iter().zip(cb.iter()).all(|(&x, &y)| eq_at(a, x, b, y))
            }
            _ => false,
        }
    }
    a.num_nodes() == b.num_nodes() && eq_at(a, a.root(), b, b.root())
}

struct Embedder<'a> {
    a: &'a XmlTree,
    b: &'a XmlTree,
    memo: HashMap<(NodeId, NodeId), bool>,
}

impl Embedder<'_> {
    /// Whether the subtree of `a` at `va` embeds into the subtree of `b`
    /// at `vb`.
    fn embeds(&mut self, va: NodeId, vb: NodeId) -> bool {
        if let Some(&r) = self.memo.get(&(va, vb)) {
            return r;
        }
        let result = self.embeds_uncached(va, vb);
        self.memo.insert((va, vb), result);
        result
    }

    fn embeds_uncached(&mut self, va: NodeId, vb: NodeId) -> bool {
        if self.a.label(va) != self.b.label(vb) {
            return false;
        }
        // Attribute functions must agree exactly on the mapped node
        // (att₂ restricted to V₁ equals att₁).
        if self.a.num_attrs(va) != self.b.num_attrs(vb)
            || !self.a.attrs(va).all(|(k, v)| self.b.attr(vb, k) == Some(v))
        {
            return false;
        }
        match (self.a.content(va), self.b.content(vb)) {
            (NodeContent::Text(s), NodeContent::Text(s2)) => s == s2,
            (NodeContent::Text(_), NodeContent::Children(_)) => false,
            (NodeContent::Children(ca), _) if ca.is_empty() => true,
            (NodeContent::Children(_), NodeContent::Text(_)) => false,
            (NodeContent::Children(ca), NodeContent::Children(cb)) => {
                if ca.len() > cb.len() {
                    return false;
                }
                // Injective assignment of each child of va to a distinct
                // child of vb: Kuhn's augmenting-path bipartite matching.
                let ca = ca.clone();
                let cb = cb.clone();
                let mut matched: Vec<Option<usize>> = vec![None; cb.len()];
                for (i, &child_a) in ca.iter().enumerate() {
                    let mut visited = vec![false; cb.len()];
                    if !self.augment(child_a, i, &ca, &cb, &mut matched, &mut visited) {
                        return false;
                    }
                }
                true
            }
        }
    }

    fn augment(
        &mut self,
        child_a: NodeId,
        i: usize,
        ca: &[NodeId],
        cb: &[NodeId],
        matched: &mut Vec<Option<usize>>,
        visited: &mut Vec<bool>,
    ) -> bool {
        for (j, &child_b) in cb.iter().enumerate() {
            if visited[j] || !self.embeds(child_a, child_b) {
                continue;
            }
            visited[j] = true;
            let free = match matched[j] {
                None => true,
                Some(prev) => self.augment(ca[prev], prev, ca, cb, matched, visited),
            };
            if free {
                matched[j] = Some(i);
                return true;
            }
        }
        false
    }
}

/// Whether `a` embeds in `b` — subsumption `a ⊑ b` up to vertex renaming:
/// an injective, root-, label- and attribute-preserving mapping sending
/// children to distinct children.
pub fn embeds_in(a: &XmlTree, b: &XmlTree) -> bool {
    let mut e = Embedder {
        a,
        b,
        memo: HashMap::new(),
    };
    e.embeds(a.root(), b.root())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn reordered_children_are_equivalent() {
        let a = parse("<r><x i=\"1\"/><y/></r>").unwrap();
        let b = parse("<r><y/><x i=\"1\"/></r>").unwrap();
        assert!(unordered_eq(&a, &b));
        assert!(embeds_in(&a, &b));
        assert!(embeds_in(&b, &a));
    }

    #[test]
    fn different_attr_values_not_equivalent() {
        let a = parse("<r><x i=\"1\"/></r>").unwrap();
        let b = parse("<r><x i=\"2\"/></r>").unwrap();
        assert!(!unordered_eq(&a, &b));
        assert!(!embeds_in(&a, &b));
    }

    #[test]
    fn subtree_embeds_in_supertree() {
        let a = parse("<r><x/><y><z k=\"v\">t</z></y></r>").unwrap();
        let b = parse("<r><y><z k=\"v\">t</z><w/></y><x/><x/></r>").unwrap();
        assert!(embeds_in(&a, &b));
        assert!(!embeds_in(&b, &a));
        assert!(!unordered_eq(&a, &b));
    }

    #[test]
    fn embedding_requires_exact_attributes() {
        // `att₂|V₁×Att = att₁`: a node with FEWER attributes does not embed
        // into one with more.
        let a = parse("<r><x/></r>").unwrap();
        let b = parse("<r><x extra=\"1\"/></r>").unwrap();
        assert!(!embeds_in(&a, &b));
        assert!(!embeds_in(&b, &a));
    }

    #[test]
    fn multiset_children_matching() {
        // Two identical children must map to two distinct children.
        let a = parse("<r><x v=\"1\"/><x v=\"1\"/></r>").unwrap();
        let b1 = parse("<r><x v=\"1\"/></r>").unwrap();
        let b2 = parse("<r><x v=\"1\"/><x v=\"1\"/><x v=\"2\"/></r>").unwrap();
        assert!(!embeds_in(&a, &b1));
        assert!(embeds_in(&a, &b2));
    }

    #[test]
    fn matching_needs_augmenting_paths() {
        // a has children X (embeds only in b's X1) and X' (embeds in X1 and
        // X2); greedy matching X'→X1 first would fail without augmenting.
        let a = parse("<r><x><u/></x><x/></r>").unwrap();
        let b = parse("<r><x><u/></x><x><w/></x></r>").unwrap();
        assert!(embeds_in(&a, &b));
    }

    #[test]
    fn text_content_must_match() {
        let a = parse("<r><t>hello</t></r>").unwrap();
        let b = parse("<r><t>world</t></r>").unwrap();
        let c = parse("<r><t>hello</t></r>").unwrap();
        assert!(!embeds_in(&a, &b));
        assert!(embeds_in(&a, &c));
        assert!(unordered_eq(&a, &c));
    }

    #[test]
    fn empty_node_embeds_into_any_content() {
        // ele₁(v) = [] is a sublist of everything, including text content.
        let a = parse("<r><t/></r>").unwrap();
        let b = parse("<r><t>text</t></r>").unwrap();
        let c = parse("<r><t><u/></t></r>").unwrap();
        assert!(embeds_in(&a, &b));
        assert!(embeds_in(&a, &c));
    }

    #[test]
    fn equivalence_is_insensitive_to_deep_reordering() {
        let a = parse("<r><g><a/><b/></g><g><c/><d/></g></r>").unwrap();
        let b = parse("<r><g><d/><c/></g><g><b/><a/></g></r>").unwrap();
        assert!(unordered_eq(&a, &b));
    }

    #[test]
    fn ordered_eq_is_finer_than_unordered() {
        let a = parse("<r><x i=\"1\"/><y>t</y></r>").unwrap();
        let b = parse("<r><y>t</y><x i=\"1\"/></r>").unwrap();
        let c = parse("<r><x i=\"1\"/><y>t</y></r>").unwrap();
        assert!(unordered_eq(&a, &b));
        assert!(!ordered_eq(&a, &b));
        assert!(ordered_eq(&a, &c));
        let d = parse("<r><x i=\"1\"/><y>u</y></r>").unwrap();
        assert!(!ordered_eq(&a, &d));
    }

    #[test]
    fn canonical_form_distinguishes_nesting() {
        let a = parse("<r><x><y/></x></r>").unwrap();
        let b = parse("<r><x/><y/></r>").unwrap();
        assert!(!unordered_eq(&a, &b));
    }
}
