//! # `xnf-xml` — XML trees for the XNF normalization library
//!
//! This crate implements the XML-document substrate of Arenas & Libkin,
//! *"A Normal Form for XML Documents"* (PODS 2002): XML trees as defined in
//! Definition 2 (`T = (V, lab, ele, att, root)`, no mixed content),
//! conformance `T ⊨ D` and compatibility `T ◁ D` (Definition 3), the
//! unordered subsumption pre-order `⊑` and equivalence `≡` of Section 3,
//! plus a parser and serializer for the XML fragment the paper's documents
//! live in (elements, attributes, text content — no mixed content, no
//! namespaces, no processing instructions beyond a skipped prolog).
//!
//! ## Example
//!
//! ```
//! use xnf_xml::XmlTree;
//!
//! let t = xnf_xml::parse(r#"
//!     <courses>
//!       <course cno="csc200"><title>Automata Theory</title></course>
//!     </courses>
//! "#).unwrap();
//! assert_eq!(t.label(t.root()), "courses");
//! let course = t.children(t.root())[0];
//! assert_eq!(t.attr(course, "cno"), Some("csc200"));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod conform;
pub mod order;
pub mod parse;
pub mod paths;
pub mod tree;
pub mod write;

pub use crate::conform::{compatible, conforms, conforms_governed, ConformError};
pub use crate::order::{embeds_in, ordered_eq, unordered_eq};
pub use crate::parse::{parse, parse_governed, ParseLimits};
pub use crate::paths::{nodes_at, paths_of, value_projection, values_at};
pub use crate::tree::{NodeContent, NodeId, XmlTree};
pub use crate::write::to_string_pretty;

use std::fmt;

/// Errors produced while parsing XML documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// A syntax error in the XML input.
    Syntax {
        /// Byte offset of the error.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// The document mixes text and element children under one node, which
    /// Definition 2 disallows.
    MixedContent {
        /// Byte offset where the mixing was detected.
        offset: usize,
        /// Label of the offending element.
        element: String,
    },
    /// A resource budget ran out mid-parse (see [`xnf_govern`]).
    Exhausted(xnf_govern::Exhausted),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Syntax { offset, message } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            XmlError::MixedContent { offset, element } => write!(
                f,
                "element `{element}` at byte {offset} has mixed content \
                 (Definition 2 requires all-element or single-string content)"
            ),
            XmlError::Exhausted(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for XmlError {}

impl From<xnf_govern::Exhausted> for XmlError {
    fn from(e: xnf_govern::Exhausted) -> Self {
        XmlError::Exhausted(e)
    }
}

/// The shared ungoverned budget, for infallible wrappers around governed
/// internals (its checkpoints can never fail).
pub(crate) const UNLIMITED: &xnf_govern::Budget = &xnf_govern::Budget::unlimited();

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, XmlError>;
