//! Arena-backed XML trees — Definition 2.
//!
//! `T = (V, lab, ele, att, root)` where `ele` maps each node either to a
//! list of element children or to a single string (no mixed content), and
//! `att` is a partial function from `V × Att` to `Str`.

use std::collections::BTreeMap;

/// Identifier of a node within one [`XmlTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The `ele` value of one node: element children or one string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeContent {
    /// Zero or more element children, in document order.
    Children(Vec<NodeId>),
    /// A single string child (`#PCDATA` content).
    Text(Box<str>),
}

#[derive(Debug, Clone)]
struct Node {
    label: Box<str>,
    parent: Option<NodeId>,
    content: NodeContent,
    attrs: BTreeMap<Box<str>, Box<str>>,
}

/// An XML tree (Definition 2). Nodes live in an arena owned by the tree;
/// [`NodeId`]s index into it.
#[derive(Debug, Clone)]
pub struct XmlTree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl XmlTree {
    /// Creates a tree with a single root element labelled `root_label`.
    pub fn new(root_label: impl Into<Box<str>>) -> XmlTree {
        XmlTree {
            nodes: vec![Node {
                label: root_label.into(),
                parent: None,
                content: NodeContent::Children(Vec::new()),
                attrs: BTreeMap::new(),
            }],
            root: NodeId(0),
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of element nodes `|V|`.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids (allocation order; the root is first).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// `lab(v)` — the element label of `v`.
    pub fn label(&self, v: NodeId) -> &str {
        &self.nodes[v.index()].label
    }

    /// The parent of `v`, or `None` for the root.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.nodes[v.index()].parent
    }

    /// `ele(v)` — the content of `v`.
    pub fn content(&self, v: NodeId) -> &NodeContent {
        &self.nodes[v.index()].content
    }

    /// The element children of `v` (empty slice for text or empty nodes).
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        match &self.nodes[v.index()].content {
            NodeContent::Children(c) => c,
            NodeContent::Text(_) => &[],
        }
    }

    /// The string child of `v`, if `v` has text content.
    pub fn text(&self, v: NodeId) -> Option<&str> {
        match &self.nodes[v.index()].content {
            NodeContent::Text(s) => Some(s),
            NodeContent::Children(_) => None,
        }
    }

    /// `att(v, @name)` — the value of attribute `name` on `v`, if defined.
    /// Attribute names are passed without the leading `@`.
    pub fn attr(&self, v: NodeId, name: &str) -> Option<&str> {
        self.nodes[v.index()].attrs.get(name).map(|s| &**s)
    }

    /// The attributes of `v` as sorted `(name, value)` pairs.
    pub fn attrs(&self, v: NodeId) -> impl Iterator<Item = (&str, &str)> {
        self.nodes[v.index()]
            .attrs
            .iter()
            .map(|(k, v)| (&**k, &**v))
    }

    /// Number of attributes defined on `v`.
    pub fn num_attrs(&self, v: NodeId) -> usize {
        self.nodes[v.index()].attrs.len()
    }

    /// Appends a new element child labelled `label` to `v` and returns its
    /// id.
    ///
    /// # Panics
    ///
    /// Panics if `v` has text content (no mixed content, Definition 2).
    pub fn add_child(&mut self, v: NodeId, label: impl Into<Box<str>>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            label: label.into(),
            parent: Some(v),
            content: NodeContent::Children(Vec::new()),
            attrs: BTreeMap::new(),
        });
        match &mut self.nodes[v.index()].content {
            NodeContent::Children(c) => c.push(id),
            NodeContent::Text(_) => {
                panic!("cannot add element child to a text node (mixed content)")
            }
        }
        id
    }

    /// Sets the content of `v` to the single string `text`.
    ///
    /// # Panics
    ///
    /// Panics if `v` already has element children (no mixed content).
    pub fn set_text(&mut self, v: NodeId, text: impl Into<Box<str>>) {
        match &self.nodes[v.index()].content {
            NodeContent::Children(c) if !c.is_empty() => {
                panic!("cannot set text on a node with element children (mixed content)")
            }
            _ => self.nodes[v.index()].content = NodeContent::Text(text.into()),
        }
    }

    /// Defines attribute `name = value` on `v` (replacing any previous
    /// value). Names are passed without the leading `@`.
    pub fn set_attr(&mut self, v: NodeId, name: impl Into<Box<str>>, value: impl Into<Box<str>>) {
        self.nodes[v.index()]
            .attrs
            .insert(name.into(), value.into());
    }

    /// Removes attribute `name` from `v`, returning its value if present.
    pub fn remove_attr(&mut self, v: NodeId, name: &str) -> Option<Box<str>> {
        self.nodes[v.index()].attrs.remove(name)
    }

    /// Depth-first pre-order traversal from the root.
    pub fn descendants(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            out.push(v);
            // Push children in reverse so they pop in document order.
            for &c in self.children(v).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The depth of `v` (root = 1), i.e. the length of the element path
    /// from the root to `v`.
    pub fn depth(&self, v: NodeId) -> usize {
        let mut d = 1;
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// The children of `v` labelled `label`, in document order.
    pub fn children_labelled(&self, v: NodeId, label: &str) -> Vec<NodeId> {
        self.children(v)
            .iter()
            .copied()
            .filter(|&c| self.label(c) == label)
            .collect()
    }

    /// Convenience for building and reading documents: the first descendant
    /// reached by following the given child labels from the root.
    pub fn descend(&self, labels: &[&str]) -> Option<NodeId> {
        let mut cur = self.root;
        for l in labels {
            cur = *self.children_labelled(cur, l).first()?;
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the document of Figure 1(a) (abridged to one course).
    fn course_doc() -> XmlTree {
        let mut t = XmlTree::new("courses");
        let course = t.add_child(t.root(), "course");
        t.set_attr(course, "cno", "csc200");
        let title = t.add_child(course, "title");
        t.set_text(title, "Automata Theory");
        let taken_by = t.add_child(course, "taken_by");
        for (sno, name, grade) in [("st1", "Deere", "A+"), ("st2", "Smith", "B-")] {
            let s = t.add_child(taken_by, "student");
            t.set_attr(s, "sno", sno);
            let n = t.add_child(s, "name");
            t.set_text(n, name);
            let g = t.add_child(s, "grade");
            t.set_text(g, grade);
        }
        t
    }

    #[test]
    fn build_and_query() {
        let t = course_doc();
        assert_eq!(t.label(t.root()), "courses");
        let course = t.children(t.root())[0];
        assert_eq!(t.attr(course, "cno"), Some("csc200"));
        assert_eq!(t.attr(course, "missing"), None);
        let title = t.children_labelled(course, "title")[0];
        assert_eq!(t.text(title), Some("Automata Theory"));
        assert_eq!(t.depth(title), 3);
        assert_eq!(t.num_nodes(), 10);
    }

    #[test]
    fn descend_helper() {
        let t = course_doc();
        let name = t
            .descend(&["course", "taken_by", "student", "name"])
            .unwrap();
        assert_eq!(t.text(name), Some("Deere"));
        assert!(t.descend(&["course", "nonexistent"]).is_none());
    }

    #[test]
    fn descendants_preorder() {
        let t = course_doc();
        let order: Vec<&str> = t.descendants().iter().map(|&v| t.label(v)).collect();
        assert_eq!(
            order,
            vec![
                "courses", "course", "title", "taken_by", "student", "name", "grade", "student",
                "name", "grade"
            ]
        );
    }

    #[test]
    #[should_panic(expected = "mixed content")]
    fn no_mixed_content_text_then_child() {
        let mut t = XmlTree::new("r");
        t.set_text(t.root(), "hello");
        t.add_child(t.root(), "a");
    }

    #[test]
    #[should_panic(expected = "mixed content")]
    fn no_mixed_content_child_then_text() {
        let mut t = XmlTree::new("r");
        t.add_child(t.root(), "a");
        t.set_text(t.root(), "hello");
    }

    #[test]
    fn attr_overwrite_and_remove() {
        let mut t = XmlTree::new("r");
        t.set_attr(t.root(), "x", "1");
        t.set_attr(t.root(), "x", "2");
        assert_eq!(t.attr(t.root(), "x"), Some("2"));
        assert_eq!(t.remove_attr(t.root(), "x").as_deref(), Some("2"));
        assert_eq!(t.attr(t.root(), "x"), None);
        assert_eq!(t.num_attrs(t.root()), 0);
    }

    #[test]
    fn parents_are_consistent() {
        let t = course_doc();
        for v in t.node_ids() {
            for &c in t.children(v) {
                assert_eq!(t.parent(c), Some(v));
            }
        }
        assert_eq!(t.parent(t.root()), None);
    }
}
