//! A small XML parser for the document fragment of Definition 2.
//!
//! Supports: an optional `<?xml …?>` prolog, an optional `<!DOCTYPE …>`
//! declaration (skipped, including an internal subset), comments, elements
//! with attributes, text content, CDATA sections, and the five predefined
//! entities. Rejects mixed content (non-whitespace text next to element
//! children), which Definition 2 disallows.

use crate::tree::{NodeId, XmlTree};
use crate::{Result, XmlError, UNLIMITED};
use xnf_govern::Budget;

/// Hard limits guarding the parser against adversarial documents:
/// `max_depth` bounds element nesting (the parser is iterative, so depth
/// is an ordinary resource limit, not a stack hazard) and `max_input`
/// rejects oversized payloads up front, O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum input size in bytes.
    pub max_input: usize,
    /// Maximum element nesting depth (the root is depth 1).
    pub max_depth: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_input: 256 << 20, // 256 MiB
            max_depth: 1_024,
        }
    }
}

impl ParseLimits {
    /// Limits for *network-originated* documents: what `xnf-serve`
    /// accepts from an authenticated but unknown client. Far stricter
    /// than [`ParseLimits::default`] (tuned for local files the operator
    /// chose to open): 4 MiB of input and 128 levels of nesting.
    pub fn untrusted() -> ParseLimits {
        ParseLimits {
            max_input: 4 << 20, // 4 MiB
            max_depth: 128,
        }
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    limits: ParseLimits,
    budget: &'a Budget,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError::Syntax {
            offset: self.pos,
            message: message.into(),
        }
    }

    /// A spanned error at the current position: the message carries the
    /// 1-based line/column so callers see where the limit tripped.
    fn err_spanned(&self, message: impl Into<String>) -> XmlError {
        let at = xnf_dtd::span::line_col(self.input, self.pos);
        XmlError::Syntax {
            offset: self.pos,
            message: format!("{} (line {}, column {})", message.into(), at.line, at.col),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<()> {
        match self.input[self.pos..]
            .windows(end.len())
            .position(|w| w == end.as_bytes())
        {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(self.err(format!("unterminated construct (expected `{end}`)"))),
        }
    }

    fn skip_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.pos += 4;
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.pos += 2;
                self.skip_until("?>")?;
            } else if self.starts_with("<!DOCTYPE") {
                // Skip to the matching `>`, allowing one `[ … ]` internal
                // subset.
                self.pos += 9;
                let mut in_subset = false;
                loop {
                    match self.peek() {
                        None => return Err(self.err("unterminated DOCTYPE")),
                        Some(b'[') => {
                            in_subset = true;
                            self.pos += 1;
                        }
                        Some(b']') => {
                            in_subset = false;
                            self.pos += 1;
                        }
                        Some(b'>') if !in_subset => {
                            self.pos += 1;
                            break;
                        }
                        Some(_) => self.pos += 1,
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("ASCII name bytes")
            .to_string())
    }

    fn unescape(&self, raw: &str, at: usize) -> Result<String> {
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(i) = rest.find('&') {
            out.push_str(&rest[..i]);
            rest = &rest[i..];
            let semi = rest.find(';').ok_or_else(|| XmlError::Syntax {
                offset: at,
                message: "unterminated entity reference".to_string(),
            })?;
            let ent = &rest[1..semi];
            match ent {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    let code =
                        u32::from_str_radix(&ent[2..], 16).map_err(|_| XmlError::Syntax {
                            offset: at,
                            message: format!("bad character reference `&{ent};`"),
                        })?;
                    out.push(char::from_u32(code).ok_or_else(|| XmlError::Syntax {
                        offset: at,
                        message: format!("invalid code point in `&{ent};`"),
                    })?);
                }
                _ if ent.starts_with('#') => {
                    let code: u32 = ent[1..].parse().map_err(|_| XmlError::Syntax {
                        offset: at,
                        message: format!("bad character reference `&{ent};`"),
                    })?;
                    out.push(char::from_u32(code).ok_or_else(|| XmlError::Syntax {
                        offset: at,
                        message: format!("invalid code point in `&{ent};`"),
                    })?);
                }
                _ => {
                    return Err(XmlError::Syntax {
                        offset: at,
                        message: format!("unknown entity `&{ent};`"),
                    })
                }
            }
            rest = &rest[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }

    fn attr_value(&mut self) -> Result<String> {
        let Some(quote @ (b'"' | b'\'')) = self.peek() else {
            return Err(self.err("expected quoted attribute value"));
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("attribute value is not valid UTF-8"))?;
                let val = self.unescape(raw, start)?;
                self.pos += 1;
                return Ok(val);
            }
            if c == b'<' {
                return Err(self.err("`<` in attribute value"));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated attribute value"))
    }

    /// Parses the attribute list of an element whose `<name` the caller
    /// consumed. Returns `true` when the element is self-closing (`…/>`).
    fn open_tag(&mut self, tree: &mut XmlTree, node: NodeId) -> Result<bool> {
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(">")?;
                    return Ok(true);
                }
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(false);
                }
                _ => {
                    let name = self.name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.attr_value()?;
                    if tree.attr(node, &name).is_some() {
                        return Err(self.err(format!("duplicate attribute `{name}`")));
                    }
                    tree.set_attr(node, name, value);
                }
            }
        }
    }

    /// Parses the content and closing tag of `node` (whose `<name` and
    /// attributes the caller has consumed), including all nested elements.
    ///
    /// Iterative with an explicit frame stack: nesting depth is governed by
    /// `limits.max_depth` as an ordinary resource limit instead of being a
    /// call-stack-overflow hazard, so adversarially deep documents fail
    /// with a spanned `Syntax` error rather than aborting the process.
    fn element(&mut self, tree: &mut XmlTree, node: NodeId) -> Result<()> {
        self.budget.checkpoint("xml.parse.node")?;
        if self.open_tag(tree, node)? {
            return Ok(());
        }
        let mut stack = vec![Frame {
            node,
            text: String::new(),
            text_start: self.pos,
            has_children: false,
        }];
        while !stack.is_empty() {
            let top = stack.len() - 1;
            if self.starts_with("<!--") {
                self.pos += 4;
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += 9;
                let start = self.pos;
                self.skip_until("]]>")?;
                let raw = std::str::from_utf8(&self.input[start..self.pos - 3])
                    .map_err(|_| self.err("CDATA is not valid UTF-8"))?;
                stack[top].text.push_str(raw);
            } else if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != tree.label(stack[top].node) {
                    return Err(self.err(format!(
                        "mismatched closing tag `</{close}>` for `<{}>`",
                        tree.label(stack[top].node)
                    )));
                }
                self.skip_ws();
                self.expect(">")?;
                if !stack[top].text.trim().is_empty() {
                    if stack[top].has_children {
                        return Err(XmlError::MixedContent {
                            offset: stack[top].text_start,
                            element: tree.label(stack[top].node).to_string(),
                        });
                    }
                    let text = std::mem::take(&mut stack[top].text);
                    tree.set_text(stack[top].node, text);
                }
                stack.pop();
            } else if self.starts_with("<") {
                self.pos += 1;
                let name = self.name()?;
                if !stack[top].text.trim().is_empty() {
                    return Err(XmlError::MixedContent {
                        offset: stack[top].text_start,
                        element: tree.label(stack[top].node).to_string(),
                    });
                }
                stack[top].text.clear();
                stack[top].has_children = true;
                self.budget.checkpoint("xml.parse.node")?;
                if stack.len() + 1 > self.limits.max_depth {
                    return Err(self.err_spanned(format!(
                        "document nested deeper than {} elements",
                        self.limits.max_depth
                    )));
                }
                let child = tree.add_child(stack[top].node, name);
                if !self.open_tag(tree, child)? {
                    stack.push(Frame {
                        node: child,
                        text: String::new(),
                        text_start: self.pos,
                        has_children: false,
                    });
                }
            } else if self.peek().is_none() {
                return Err(self.err(format!(
                    "unterminated element `{}`",
                    tree.label(stack[top].node)
                )));
            } else {
                if stack[top].text.is_empty() {
                    stack[top].text_start = self.pos;
                }
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("text is not valid UTF-8"))?;
                let unescaped = self.unescape(raw, start)?;
                stack[top].text.push_str(&unescaped);
            }
        }
        Ok(())
    }
}

/// One open element on the explicit parse stack.
struct Frame {
    node: NodeId,
    text: String,
    text_start: usize,
    has_children: bool,
}

/// Parses an XML document into an [`XmlTree`].
///
/// Applies [`ParseLimits::default`] and no budget; use [`parse_governed`]
/// to tune either.
pub fn parse(input: &str) -> Result<XmlTree> {
    parse_governed(input, ParseLimits::default(), UNLIMITED)
}

/// [`parse`] with explicit adversarial-input limits and a resource
/// [`Budget`] (checked once per element node).
pub fn parse_governed(input: &str, limits: ParseLimits, budget: &Budget) -> Result<XmlTree> {
    let _span = budget.recorder().span("xml.parse", "parse");
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        limits,
        budget,
    };
    if p.input.len() > p.limits.max_input {
        return Err(p.err_spanned(format!(
            "input is {} bytes, over the {}-byte limit",
            p.input.len(),
            p.limits.max_input
        )));
    }
    p.skip_misc()?;
    p.expect("<")?;
    let root_label = p.name()?;
    let mut tree = XmlTree::new(root_label);
    let root = tree.root();
    p.element(&mut tree, root)?;
    p.skip_misc()?;
    if p.pos != p.input.len() {
        return Err(p.err("trailing content after the document element"));
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure_1a_document() {
        let t = parse(
            r#"<?xml version="1.0"?>
            <courses>
              <course cno="csc200">
                <title>Automata Theory</title>
                <taken_by>
                  <student sno="st1"><name>Deere</name><grade>A+</grade></student>
                  <student sno="st2"><name>Smith</name><grade>B-</grade></student>
                </taken_by>
              </course>
              <course cno="mat100">
                <title>Calculus I</title>
                <taken_by>
                  <student sno="st1"><name>Deere</name><grade>A-</grade></student>
                  <student sno="st3"><name>Smith</name><grade>B+</grade></student>
                </taken_by>
              </course>
            </courses>"#,
        )
        .unwrap();
        assert_eq!(t.label(t.root()), "courses");
        assert_eq!(t.children(t.root()).len(), 2);
        let grade = t
            .descend(&["course", "taken_by", "student", "grade"])
            .unwrap();
        assert_eq!(t.text(grade), Some("A+"));
    }

    #[test]
    fn self_closing_and_empty_elements() {
        let t = parse(r#"<r><a x="1"/><b></b></r>"#).unwrap();
        assert_eq!(t.children(t.root()).len(), 2);
        let a = t.children(t.root())[0];
        assert_eq!(t.attr(a, "x"), Some("1"));
        assert!(t.children(a).is_empty());
        assert_eq!(t.text(a), None);
    }

    #[test]
    fn entities_are_decoded() {
        let t = parse("<r a=\"x &amp; y\">&lt;tag&gt; &#65;&#x42;</r>").unwrap();
        assert_eq!(t.attr(t.root(), "a"), Some("x & y"));
        assert_eq!(t.text(t.root()), Some("<tag> AB"));
    }

    #[test]
    fn cdata_sections() {
        let t = parse("<r><![CDATA[a < b & c]]></r>").unwrap();
        assert_eq!(t.text(t.root()), Some("a < b & c"));
    }

    #[test]
    fn mixed_content_rejected() {
        let err = parse("<r>hello<a/></r>").unwrap_err();
        assert!(matches!(err, XmlError::MixedContent { .. }), "{err}");
        let err = parse("<r><a/>hello</r>").unwrap_err();
        assert!(matches!(err, XmlError::MixedContent { .. }), "{err}");
    }

    #[test]
    fn whitespace_between_children_is_fine() {
        let t = parse("<r>\n  <a/>\n  <b/>\n</r>").unwrap();
        assert_eq!(t.children(t.root()).len(), 2);
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse("<r><a></b></r>").is_err());
        assert!(parse("<r>").is_err());
        assert!(parse("<r></r><r2></r2>").is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(parse(r#"<r a="1" a="2"/>"#).is_err());
    }

    #[test]
    fn doctype_and_comments_skipped() {
        let t = parse(
            r#"<!DOCTYPE courses [
                <!ELEMENT courses (course*)>
            ]>
            <!-- a document -->
            <courses/>"#,
        )
        .unwrap();
        assert_eq!(t.label(t.root()), "courses");
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<r>&nbsp;</r>").is_err());
    }

    #[test]
    fn million_deep_document_rejected_not_overflowed() {
        // 1,000,000 nested open tags: an unbounded recursive parser blows
        // the stack near ~50k levels; the depth limit must trip first with
        // a spanned syntax error.
        let mut doc = String::with_capacity(4_000_000);
        for _ in 0..1_000_000 {
            doc.push_str("<a>");
        }
        let err = parse(&doc).unwrap_err();
        match err {
            XmlError::Syntax { message, .. } => {
                assert!(message.contains("nested deeper"), "{message}");
                assert!(message.contains("line"), "{message}");
            }
            other => panic!("expected a spanned Syntax error, got {other:?}"),
        }
    }

    #[test]
    fn untrusted_limits_cap_input_size() {
        // A flat document just over 4 MiB: fine under the local-file
        // defaults, rejected under the network profile.
        let mut doc = String::from("<r>");
        doc.push_str(&"y".repeat(ParseLimits::untrusted().max_input));
        doc.push_str("</r>");
        assert!(parse(&doc).is_ok());
        let err = parse_governed(&doc, ParseLimits::untrusted(), UNLIMITED).unwrap_err();
        assert!(
            matches!(err, XmlError::Syntax { ref message, .. } if message.contains("byte limit")),
            "{err:?}"
        );
    }

    #[test]
    fn untrusted_limits_cap_nesting_depth() {
        let depth = ParseLimits::untrusted().max_depth + 1;
        let mut doc = String::new();
        for _ in 0..depth {
            doc.push_str("<a>");
        }
        for _ in 0..depth {
            doc.push_str("</a>");
        }
        assert!(parse(&doc).is_ok(), "default limits admit depth {depth}");
        let err = parse_governed(&doc, ParseLimits::untrusted(), UNLIMITED).unwrap_err();
        assert!(
            matches!(err, XmlError::Syntax { ref message, .. } if message.contains("nested deeper")),
            "{err:?}"
        );
    }

    #[test]
    fn custom_depth_limit_is_enforced() {
        let limits = ParseLimits {
            max_depth: 2,
            ..ParseLimits::default()
        };
        assert!(parse_governed("<a><b/></a>", limits, UNLIMITED).is_ok());
        let err = parse_governed("<a><b><c/></b></a>", limits, UNLIMITED).unwrap_err();
        assert!(
            matches!(err, XmlError::Syntax { ref message, .. } if message.contains("nested deeper"))
        );
    }

    #[test]
    fn oversized_input_rejected_up_front() {
        let limits = ParseLimits {
            max_input: 16,
            ..ParseLimits::default()
        };
        let err = parse_governed("<root>0123456789</root>", limits, UNLIMITED).unwrap_err();
        assert!(
            matches!(err, XmlError::Syntax { ref message, .. } if message.contains("over the")),
            "{err}"
        );
    }

    #[test]
    fn governed_parse_surfaces_exhaustion() {
        let budget = Budget::builder().fuel(2).build();
        let err =
            parse_governed("<r><a/><b/><c/></r>", ParseLimits::default(), &budget).unwrap_err();
        assert!(matches!(err, XmlError::Exhausted(_)), "{err}");
        let generous = Budget::builder().fuel(1_000).build();
        let t = parse_governed("<r><a/><b/></r>", ParseLimits::default(), &generous).unwrap();
        assert_eq!(t.children(t.root()).len(), 2);
    }
}
