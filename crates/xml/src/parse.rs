//! A small XML parser for the document fragment of Definition 2.
//!
//! Supports: an optional `<?xml …?>` prolog, an optional `<!DOCTYPE …>`
//! declaration (skipped, including an internal subset), comments, elements
//! with attributes, text content, CDATA sections, and the five predefined
//! entities. Rejects mixed content (non-whitespace text next to element
//! children), which Definition 2 disallows.

use crate::tree::{NodeId, XmlTree};
use crate::{Result, XmlError};

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError::Syntax {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<()> {
        match self.input[self.pos..]
            .windows(end.len())
            .position(|w| w == end.as_bytes())
        {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(self.err(format!("unterminated construct (expected `{end}`)"))),
        }
    }

    fn skip_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.pos += 4;
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.pos += 2;
                self.skip_until("?>")?;
            } else if self.starts_with("<!DOCTYPE") {
                // Skip to the matching `>`, allowing one `[ … ]` internal
                // subset.
                self.pos += 9;
                let mut in_subset = false;
                loop {
                    match self.peek() {
                        None => return Err(self.err("unterminated DOCTYPE")),
                        Some(b'[') => {
                            in_subset = true;
                            self.pos += 1;
                        }
                        Some(b']') => {
                            in_subset = false;
                            self.pos += 1;
                        }
                        Some(b'>') if !in_subset => {
                            self.pos += 1;
                            break;
                        }
                        Some(_) => self.pos += 1,
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("ASCII name bytes")
            .to_string())
    }

    fn unescape(&self, raw: &str, at: usize) -> Result<String> {
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(i) = rest.find('&') {
            out.push_str(&rest[..i]);
            rest = &rest[i..];
            let semi = rest.find(';').ok_or_else(|| XmlError::Syntax {
                offset: at,
                message: "unterminated entity reference".to_string(),
            })?;
            let ent = &rest[1..semi];
            match ent {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    let code =
                        u32::from_str_radix(&ent[2..], 16).map_err(|_| XmlError::Syntax {
                            offset: at,
                            message: format!("bad character reference `&{ent};`"),
                        })?;
                    out.push(char::from_u32(code).ok_or_else(|| XmlError::Syntax {
                        offset: at,
                        message: format!("invalid code point in `&{ent};`"),
                    })?);
                }
                _ if ent.starts_with('#') => {
                    let code: u32 = ent[1..].parse().map_err(|_| XmlError::Syntax {
                        offset: at,
                        message: format!("bad character reference `&{ent};`"),
                    })?;
                    out.push(char::from_u32(code).ok_or_else(|| XmlError::Syntax {
                        offset: at,
                        message: format!("invalid code point in `&{ent};`"),
                    })?);
                }
                _ => {
                    return Err(XmlError::Syntax {
                        offset: at,
                        message: format!("unknown entity `&{ent};`"),
                    })
                }
            }
            rest = &rest[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }

    fn attr_value(&mut self) -> Result<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("attribute value is not valid UTF-8"))?;
                let val = self.unescape(raw, start)?;
                self.pos += 1;
                return Ok(val);
            }
            if c == b'<' {
                return Err(self.err("`<` in attribute value"));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated attribute value"))
    }

    /// Parses one element, appending into `tree` under `parent` (or as the
    /// root when `parent` is `None`, in which case `tree` is created by the
    /// caller with the right label).
    fn element(&mut self, tree: &mut XmlTree, node: NodeId) -> Result<()> {
        // Caller consumed `<name`; we parse attributes then content.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(">")?;
                    return Ok(());
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    let name = self.name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.attr_value()?;
                    if tree.attr(node, &name).is_some() {
                        return Err(self.err(format!("duplicate attribute `{name}`")));
                    }
                    tree.set_attr(node, name, value);
                }
            }
        }
        // Content: text, children, comments, CDATA, then `</name>`.
        let mut text = String::new();
        let mut text_start = self.pos;
        let mut has_children = false;
        loop {
            if self.starts_with("<!--") {
                self.pos += 4;
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += 9;
                let start = self.pos;
                self.skip_until("]]>")?;
                let raw = std::str::from_utf8(&self.input[start..self.pos - 3])
                    .map_err(|_| self.err("CDATA is not valid UTF-8"))?;
                text.push_str(raw);
            } else if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != tree.label(node) {
                    return Err(self.err(format!(
                        "mismatched closing tag `</{close}>` for `<{}>`",
                        tree.label(node)
                    )));
                }
                self.skip_ws();
                self.expect(">")?;
                break;
            } else if self.starts_with("<") {
                self.pos += 1;
                let name = self.name()?;
                if !text.trim().is_empty() {
                    return Err(XmlError::MixedContent {
                        offset: text_start,
                        element: tree.label(node).to_string(),
                    });
                }
                text.clear();
                has_children = true;
                let child = tree.add_child(node, name);
                self.element(tree, child)?;
            } else if self.peek().is_none() {
                return Err(self.err(format!("unterminated element `{}`", tree.label(node))));
            } else {
                if text.is_empty() {
                    text_start = self.pos;
                }
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("text is not valid UTF-8"))?;
                text.push_str(&self.unescape(raw, start)?);
            }
        }
        if !text.trim().is_empty() {
            if has_children {
                return Err(XmlError::MixedContent {
                    offset: text_start,
                    element: tree.label(node).to_string(),
                });
            }
            tree.set_text(node, text);
        }
        Ok(())
    }
}

/// Parses an XML document into an [`XmlTree`].
pub fn parse(input: &str) -> Result<XmlTree> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    p.expect("<")?;
    let root_label = p.name()?;
    let mut tree = XmlTree::new(root_label);
    let root = tree.root();
    p.element(&mut tree, root)?;
    p.skip_misc()?;
    if p.pos != p.input.len() {
        return Err(p.err("trailing content after the document element"));
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure_1a_document() {
        let t = parse(
            r#"<?xml version="1.0"?>
            <courses>
              <course cno="csc200">
                <title>Automata Theory</title>
                <taken_by>
                  <student sno="st1"><name>Deere</name><grade>A+</grade></student>
                  <student sno="st2"><name>Smith</name><grade>B-</grade></student>
                </taken_by>
              </course>
              <course cno="mat100">
                <title>Calculus I</title>
                <taken_by>
                  <student sno="st1"><name>Deere</name><grade>A-</grade></student>
                  <student sno="st3"><name>Smith</name><grade>B+</grade></student>
                </taken_by>
              </course>
            </courses>"#,
        )
        .unwrap();
        assert_eq!(t.label(t.root()), "courses");
        assert_eq!(t.children(t.root()).len(), 2);
        let grade = t
            .descend(&["course", "taken_by", "student", "grade"])
            .unwrap();
        assert_eq!(t.text(grade), Some("A+"));
    }

    #[test]
    fn self_closing_and_empty_elements() {
        let t = parse(r#"<r><a x="1"/><b></b></r>"#).unwrap();
        assert_eq!(t.children(t.root()).len(), 2);
        let a = t.children(t.root())[0];
        assert_eq!(t.attr(a, "x"), Some("1"));
        assert!(t.children(a).is_empty());
        assert_eq!(t.text(a), None);
    }

    #[test]
    fn entities_are_decoded() {
        let t = parse("<r a=\"x &amp; y\">&lt;tag&gt; &#65;&#x42;</r>").unwrap();
        assert_eq!(t.attr(t.root(), "a"), Some("x & y"));
        assert_eq!(t.text(t.root()), Some("<tag> AB"));
    }

    #[test]
    fn cdata_sections() {
        let t = parse("<r><![CDATA[a < b & c]]></r>").unwrap();
        assert_eq!(t.text(t.root()), Some("a < b & c"));
    }

    #[test]
    fn mixed_content_rejected() {
        let err = parse("<r>hello<a/></r>").unwrap_err();
        assert!(matches!(err, XmlError::MixedContent { .. }), "{err}");
        let err = parse("<r><a/>hello</r>").unwrap_err();
        assert!(matches!(err, XmlError::MixedContent { .. }), "{err}");
    }

    #[test]
    fn whitespace_between_children_is_fine() {
        let t = parse("<r>\n  <a/>\n  <b/>\n</r>").unwrap();
        assert_eq!(t.children(t.root()).len(), 2);
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse("<r><a></b></r>").is_err());
        assert!(parse("<r>").is_err());
        assert!(parse("<r></r><r2></r2>").is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(parse(r#"<r a="1" a="2"/>"#).is_err());
    }

    #[test]
    fn doctype_and_comments_skipped() {
        let t = parse(
            r#"<!DOCTYPE courses [
                <!ELEMENT courses (course*)>
            ]>
            <!-- a document -->
            <courses/>"#,
        )
        .unwrap();
        assert_eq!(t.label(t.root()), "courses");
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<r>&nbsp;</r>").is_err());
    }
}
