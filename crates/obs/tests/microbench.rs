use std::time::Instant;
use xnf_obs::Recorder;

#[test]
#[ignore]
fn probe_costs() {
    let r = Recorder::enabled();
    const N: u64 = 1_000_000;
    let t0 = Instant::now();
    for _ in 0..N {
        r.count_site("bench.site", 0);
    }
    println!("count_site: {:?}/call", t0.elapsed() / N as u32);
    let t0 = Instant::now();
    for _ in 0..(N / 10) {
        let _s = r.span("bench.span", "bench");
    }
    println!("span open+drop: {:?}/call", t0.elapsed() / (N / 10) as u32);
    let d = Recorder::disabled();
    let t0 = Instant::now();
    for _ in 0..N {
        d.count_site("bench.site", 0);
    }
    println!("disabled count_site: {:?}/call", t0.elapsed() / N as u32);
}
