//! Named atomic counters and mergeable snapshots.
//!
//! The engine's statistics (the chase's run/firing/cache tallies) want
//! three things: relaxed-atomic increments cheap enough for hot loops,
//! point-in-time snapshots that can be diffed and accumulated across
//! work units, and a single publishing path into the [`Recorder`]
//! export pipeline. [`Counter`] and [`CounterSnapshot`] are that shared
//! plumbing, so each subsystem keeps only its domain-specific field
//! names.
//!
//! [`Recorder`]: crate::Recorder

use std::collections::BTreeMap;
use std::ops::AddAssign;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotone counter with relaxed-atomic increments: the tallies
/// are advisory instrumentation, so no ordering is needed and increments
/// stay cheap on hot paths.
#[derive(Debug, Default)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter with the given export name (e.g. `"chase.runs"`).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's export name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds 1.
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time map of counter values, keyed by export name.
///
/// Snapshots accumulate with `+=` (merging by name), which is how the
/// normalize loop sums per-iteration chase work into a run total.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: BTreeMap<&'static str, u64>,
}

impl CounterSnapshot {
    /// Snapshots the given counters.
    pub fn of<'a>(counters: impl IntoIterator<Item = &'a Counter>) -> CounterSnapshot {
        let mut snap = CounterSnapshot::default();
        for c in counters {
            snap.record(c.name(), c.get());
        }
        snap
    }

    /// Adds `value` under `name` (merging with any existing entry).
    pub fn record(&mut self, name: &'static str, value: u64) {
        *self.values.entry(name).or_insert(0) += value;
    }

    /// The value recorded under `name` (0 when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }

    /// Whether no counter has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl AddAssign for CounterSnapshot {
    fn add_assign(&mut self, rhs: CounterSnapshot) {
        for (name, value) in rhs.values {
            self.record(name, value);
        }
    }
}

impl AddAssign<&CounterSnapshot> for CounterSnapshot {
    fn add_assign(&mut self, rhs: &CounterSnapshot) {
        for (name, value) in rhs.iter() {
            self.record(name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        static C: Counter = Counter::new("test.counter");
        C.bump();
        C.add(4);
        assert_eq!(C.get(), 5);
        assert_eq!(C.name(), "test.counter");
    }

    #[test]
    fn snapshot_of_counters_and_merge() {
        let a = Counter::new("a");
        let b = Counter::new("b");
        a.add(2);
        b.add(3);
        let mut snap = CounterSnapshot::of([&a, &b]);
        assert_eq!(snap.get("a"), 2);
        assert_eq!(snap.get("b"), 3);
        assert_eq!(snap.get("missing"), 0);

        let mut other = CounterSnapshot::default();
        other.record("a", 10);
        other.record("c", 1);
        snap += other;
        assert_eq!(snap.get("a"), 12);
        assert_eq!(snap.get("c"), 1);
        assert_eq!(snap.iter().count(), 3);
        assert!(!snap.is_empty());
    }
}
