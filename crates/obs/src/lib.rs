//! # `xnf-obs` — observability for the XNF engine
//!
//! Structured spans, counters, and histograms behind a single cheap
//! handle, mirroring the design of `xnf-govern`'s `Budget`: a
//! [`Recorder`] is an `Option<Arc<…>>`, so the disabled recorder
//! ([`Recorder::disabled`]) costs exactly one `Option` test per probe —
//! the same price the ungoverned budget already pays at its checkpoints —
//! and an enabled recorder ([`Recorder::enabled`]) accumulates events in
//! memory until one of the exporters renders them:
//!
//! * [`Recorder::chrome_trace`] — Chrome trace event format (the JSON
//!   `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load),
//! * [`Recorder::jsonl`] — one JSON object per line, for ad-hoc `jq`
//!   pipelines and log shipping,
//! * [`Recorder::prometheus`] — Prometheus text exposition format for
//!   counters, checkpoint-site tallies, and span-duration histograms.
//!
//! The engine reports through two channels. Checkpoint piggybacking:
//! `xnf-govern` forwards every `Budget::checkpoint`/`charge` site visit
//! to [`Recorder::count_site`], so the ~20 labeled sites the governance
//! layer already threads through the hot paths become counters with no
//! new instrumentation. Phase spans: code brackets coarse phases (DTD
//! parse, Glushkov build, chase runs, normalize iterations and steps,
//! XNF candidate tests, lint tiers, oracle stages) with the RAII
//! [`Span`] guard from [`Recorder::span`], which records a Chrome
//! complete event (`ph:"X"`) on drop.
//!
//! The [`Counter`]/[`CounterSnapshot`] pair is the shared primitive for
//! engine-side statistics (the chase's run/firing/cache tallies): cheap
//! relaxed atomics while work is in flight, mergeable snapshots after,
//! and [`Recorder::merge`] to publish the totals into the export
//! pipeline.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod counter;
mod export;
mod flight;

pub use counter::{Counter, CounterSnapshot};
pub use export::{chrome_trace_events, escape_label, ObsFormat};
pub use flight::{
    mint_request_id, FlightRecorder, LabeledHistograms, RequestRecord, RequestSummary,
};

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A completed span: one Chrome "complete" (`ph:"X"`) event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (e.g. `"chase.run"`).
    pub name: &'static str,
    /// Category lane (e.g. `"implication"`), Chrome's `cat` field.
    pub cat: &'static str,
    /// Start time in nanoseconds since the recorder's epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small per-thread integer id; spans on one `tid` nest by time
    /// containment, which is how Perfetto reconstructs the call tree.
    pub tid: u64,
}

/// Per-checkpoint-site tally accumulated via [`Recorder::count_site`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteTally {
    /// Number of visits (checkpoints observed at this site).
    pub visits: u64,
    /// Total memory units charged at this site.
    pub units: u64,
}

/// A power-of-two-bucketed histogram (`le = 2^k − 1` upper bounds):
/// coarse, allocation-free, and enough to see where a distribution sits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Observation count.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `buckets[k]` counts observations with `value < 2^k` (non-cumulative
    /// storage; exporters render the cumulative Prometheus form).
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let k = 64 - u64::leading_zeros(value) as usize;
        self.buckets[k] += 1;
    }

    /// Adds every observation of `other` into `self` (bucket-wise sum).
    pub fn merge_from(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Index of the highest non-empty bucket, if any observation exists.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &c)| c > 0)
            .map(|(k, _)| k)
    }

    /// Approximate `p`-quantile (`0.0 ≤ p ≤ 1.0`): the upper bound
    /// (`2^k − 1`) of the bucket containing the `⌈p·count⌉`-th
    /// observation. Within a factor of 2 of the true value — exactly the
    /// resolution the power-of-two buckets store — which is plenty for
    /// p50/p99 latency reporting. `None` with no observations.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if k >= 64 { u64::MAX } else { (1u64 << k) - 1 });
            }
        }
        Some(u64::MAX)
    }
}

/// One site-tally slot of a per-thread table: `key` is the address of
/// the site label's first byte (0 = unclaimed). Site labels are
/// `&'static str` literals, so the address is a stable per-call-site
/// key; distinct literals with equal text are merged by name at export.
///
/// Only the owning thread writes a slot (plain load+store, no RMW — the
/// point of the per-thread design); exporters read concurrently, so the
/// fields are atomics with release stores / acquire loads.
#[derive(Debug)]
struct SiteSlot {
    key: AtomicU64,
    visits: AtomicU64,
    units: AtomicU64,
}

impl SiteSlot {
    const fn new() -> SiteSlot {
        SiteSlot {
            key: AtomicU64::new(0),
            visits: AtomicU64::new(0),
            units: AtomicU64::new(0),
        }
    }
}

/// Fixed capacity of a per-thread site table — comfortably above the
/// ~20 labeled checkpoint sites; the overflow map catches the rest.
const SITE_SLOTS: usize = 64;

/// One thread's checkpoint tallies. [`Recorder::count_site`] is the
/// hottest probe (hundreds of calls per engine run), so each thread
/// gets its own single-writer table: a visit costs a thread-local
/// lookup plus two or three uncontended loads/stores — no lock, no
/// locked read-modify-write.
#[derive(Debug)]
struct ThreadSites {
    slots: [SiteSlot; SITE_SLOTS],
    /// Tallies that did not fit the slot table (never in practice).
    overflow: Mutex<BTreeMap<&'static str, SiteTally>>,
}

impl ThreadSites {
    fn new() -> ThreadSites {
        ThreadSites {
            slots: [const { SiteSlot::new() }; SITE_SLOTS],
            overflow: Mutex::new(BTreeMap::new()),
        }
    }

    /// Records `visits` visits (and `units` charged units) in one
    /// update — `visits = 1` is the checkpoint fast path; bulk adds come
    /// from [`Recorder::absorb`] folding a per-request recorder in.
    /// Single-writer: only the owning thread calls this, which is what
    /// makes the plain load+store updates sound.
    fn add(
        &self,
        site: &'static str,
        visits: u64,
        units: u64,
        names: &Mutex<BTreeMap<u64, &'static str>>,
    ) {
        let key = site.as_ptr() as usize as u64;
        // Fibonacci hashing of the address into the slot index space.
        let mut idx = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % SITE_SLOTS;
        for _ in 0..SITE_SLOTS {
            let slot = &self.slots[idx];
            let k = slot.key.load(Ordering::Relaxed);
            if k == key {
                let v = slot.visits.load(Ordering::Relaxed);
                slot.visits.store(v + visits, Ordering::Release);
                if units != 0 {
                    let u = slot.units.load(Ordering::Relaxed);
                    slot.units.store(u + units, Ordering::Release);
                }
                return;
            }
            if k == 0 {
                // First visit at this site on this thread: register the
                // label text, publish the tally, then the key (so an
                // exporter never sees a keyed slot it cannot resolve).
                if let Ok(mut names) = names.lock() {
                    names.insert(key, site);
                }
                slot.visits.store(visits, Ordering::Release);
                slot.units.store(units, Ordering::Release);
                slot.key.store(key, Ordering::Release);
                return;
            }
            idx = (idx + 1) % SITE_SLOTS;
        }
        if let Ok(mut overflow) = self.overflow.lock() {
            let tally = overflow.entry(site).or_default();
            tally.visits += visits;
            tally.units += units;
        }
    }
}

#[derive(Debug)]
struct RecorderInner {
    /// Process-unique id; keys the thread-local table cache (an address
    /// can be reused after a recorder is dropped, an id cannot).
    id: u64,
    epoch: Instant,
    /// Completed spans kept for export, at most [`span_cap`]
    /// (`RecorderInner::span_cap`) of them; later spans only count into
    /// [`spans_dropped`] (`RecorderInner::spans_dropped`).
    spans: Mutex<Vec<SpanEvent>>,
    /// Retention bound on `spans`: a recorder installed on a long-lived
    /// process (the `xnf-serve` shared recorder) must not grow without
    /// bound with request count.
    span_cap: usize,
    /// Spans discarded because `spans` was already at `span_cap`.
    spans_dropped: AtomicU64,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    /// Every thread's site table, registered on that thread's first
    /// checkpoint; exporters aggregate across them.
    thread_sites: Mutex<Vec<Arc<ThreadSites>>>,
    /// Label-address → label text, filled on each first visit.
    site_names: Mutex<BTreeMap<u64, &'static str>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl RecorderInner {
    fn new(span_cap: usize) -> RecorderInner {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        RecorderInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            span_cap,
            spans_dropped: AtomicU64::new(0),
            counters: Mutex::new(BTreeMap::new()),
            thread_sites: Mutex::new(Vec::new()),
            site_names: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// The enabled half of [`Recorder::count_site`] (and the bulk-add
    /// path [`Recorder::absorb`] uses): routes the visits to this
    /// thread's single-writer table, creating and registering the table
    /// on the thread's first checkpoint against this recorder.
    fn add_site(&self, site: &'static str, visits: u64, units: u64) {
        thread_local! {
            /// This thread's site tables, keyed by recorder id. Tiny in
            /// practice (one live recorder at a time); entries whose
            /// recorder died are pruned on insertion.
            static TABLES: std::cell::RefCell<Vec<(u64, Arc<ThreadSites>)>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        TABLES.with(|tables| {
            let mut tables = tables.borrow_mut();
            if let Some((_, table)) = tables.iter().find(|(id, _)| *id == self.id) {
                table.add(site, visits, units, &self.site_names);
                return;
            }
            // First checkpoint on this thread for this recorder:
            // register a fresh table with the recorder and cache it.
            let table = Arc::new(ThreadSites::new());
            if let Ok(mut registry) = self.thread_sites.lock() {
                registry.push(Arc::clone(&table));
            }
            tables.retain(|(_, t)| Arc::strong_count(t) > 1);
            table.add(site, visits, units, &self.site_names);
            tables.push((self.id, table));
        });
    }
}

/// Small stable integer id for the current thread (first use assigns the
/// next id). Chrome traces key nesting on `tid`; OS thread ids are not
/// guaranteed small or stable across platforms, so we mint our own.
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|slot| {
        let v = slot.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            slot.set(v);
            v
        }
    })
}

/// A cheap, cloneable observability handle. Clones share the same event
/// buffers, so a recorder installed on a `Budget` is visible to every
/// worker thread that clones the budget.
///
/// [`Recorder::disabled`] (also [`Default`]) allocates nothing and makes
/// every probe a single `Option` test; [`Recorder::enabled`] accumulates
/// spans, counters, site tallies, and histograms for export.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

impl Recorder {
    /// The no-op recorder: every probe is one `Option` test.
    pub const fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder whose epoch (span timestamp zero) is now.
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Arc::new(RecorderInner::new(usize::MAX))),
        }
    }

    /// An enabled recorder that retains at most `span_cap` completed
    /// spans; later spans are discarded (counted by
    /// [`Recorder::spans_dropped`]) while counters, site tallies, and
    /// histograms keep accumulating. This is the profile for a recorder
    /// shared across a long-lived process — `xnf-serve` installs one so
    /// `/metrics` stays O(1) in request count.
    pub fn with_span_cap(span_cap: usize) -> Recorder {
        Recorder {
            inner: Some(Arc::new(RecorderInner::new(span_cap))),
        }
    }

    /// Spans discarded by the [`Recorder::with_span_cap`] retention
    /// bound (0 for unbounded or disabled recorders).
    pub fn spans_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.spans_dropped.load(Ordering::Relaxed))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; the returned guard records a completed event (and,
    /// at export time, a duration-histogram observation under `name`)
    /// when dropped. On a disabled recorder the guard is inert. The
    /// guard borrows the recorder, so it costs no reference-count
    /// traffic — hold it in a `let` for the phase it brackets.
    #[inline]
    pub fn span(&self, name: &'static str, cat: &'static str) -> Span<'_> {
        Span {
            state: self.inner.as_deref().map(|inner| SpanState {
                inner,
                name,
                cat,
                start: Instant::now(),
            }),
        }
    }

    /// Adds 1 to the named counter.
    #[inline]
    pub fn bump(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to the named counter.
    #[inline]
    pub fn add(&self, name: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            if let Ok(mut counters) = inner.counters.lock() {
                *counters.entry(name).or_insert(0) += n;
            }
        }
    }

    /// Records one visit (and any charged memory units) at a checkpoint
    /// site. `xnf-govern` calls this from `Budget::checkpoint`/`charge`,
    /// which turns the governance layer's ~20 labeled sites into
    /// counters for free. The visit lands in the calling thread's
    /// single-writer table (see [`ThreadSites`]) — no lock, no locked
    /// read-modify-write on this hottest of probes.
    #[inline]
    pub fn count_site(&self, site: &'static str, units: u64) {
        // The body stays a two-instruction shim (test + call) so the
        // disabled path inlines across crates at every checkpoint; the
        // recording machinery lives out of line on `RecorderInner`.
        if let Some(inner) = &self.inner {
            inner.add_site(site, 1, units);
        }
    }

    /// Folds everything `other` recorded into `self`: counters and
    /// checkpoint-site tallies add, `other`'s histograms (explicit plus
    /// span-duration-derived) merge into `self`'s, and `other`'s
    /// dropped-span count accumulates. Span events themselves are *not*
    /// copied — a per-request recorder's span tree belongs in the
    /// flight ring, while the shared recorder keeps aggregates, which is
    /// what keeps a service's `/metrics` O(1) in request count.
    pub fn absorb(&self, other: &Recorder) {
        let (Some(inner), Some(other_inner)) = (&self.inner, &other.inner) else {
            return;
        };
        if Arc::ptr_eq(inner, other_inner) {
            return;
        }
        for (name, value) in other.counters() {
            self.add(name, value);
        }
        for (site, tally) in other.sites() {
            if tally.visits != 0 || tally.units != 0 {
                inner.add_site(site, tally.visits, tally.units);
            }
        }
        if let Ok(mut histograms) = inner.histograms.lock() {
            for (name, h) in other.histograms() {
                histograms.entry(name).or_default().merge_from(&h);
            }
        }
        let dropped = other_inner.spans_dropped.load(Ordering::Relaxed);
        if dropped != 0 {
            inner.spans_dropped.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Records `value` into the named histogram.
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            if let Ok(mut histograms) = inner.histograms.lock() {
                histograms.entry(name).or_default().observe(value);
            }
        }
    }

    /// Merges a [`CounterSnapshot`] into the recorder's counters —
    /// how engine-side statistics (e.g. the chase tallies) publish their
    /// totals into the export pipeline.
    pub fn merge(&self, snapshot: &CounterSnapshot) {
        for (name, value) in snapshot.iter() {
            self.add(name, value);
        }
    }

    /// Current value of the named counter (0 when absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| i.counters.lock().ok().map(|c| c.get(name).copied()))
            .flatten()
            .unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.inner
            .as_ref()
            .and_then(|i| {
                i.counters
                    .lock()
                    .ok()
                    .map(|c| c.iter().map(|(&k, &v)| (k, v)).collect())
            })
            .unwrap_or_default()
    }

    /// All checkpoint-site tallies aggregated across threads, sorted by
    /// site label. Slots whose label shares text (distinct literals)
    /// are merged by name.
    pub fn sites(&self) -> Vec<(&'static str, SiteTally)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut merged: BTreeMap<&'static str, SiteTally> = BTreeMap::new();
        let tables: Vec<Arc<ThreadSites>> = match inner.thread_sites.lock() {
            Ok(registry) => registry.iter().map(Arc::clone).collect(),
            Err(_) => Vec::new(),
        };
        let names = match inner.site_names.lock() {
            Ok(names) => names.clone(),
            Err(_) => BTreeMap::new(),
        };
        for table in &tables {
            for slot in &table.slots {
                let key = slot.key.load(Ordering::Acquire);
                if key == 0 {
                    continue;
                }
                let Some(&name) = names.get(&key) else {
                    continue;
                };
                let tally = merged.entry(name).or_default();
                tally.visits += slot.visits.load(Ordering::Acquire);
                tally.units += slot.units.load(Ordering::Acquire);
            }
            if let Ok(overflow) = table.overflow.lock() {
                for (&name, &t) in overflow.iter() {
                    let tally = merged.entry(name).or_default();
                    tally.visits += t.visits;
                    tally.units += t.units;
                }
            }
        }
        merged.into_iter().collect()
    }

    /// All completed spans, in completion order.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.inner
            .as_ref()
            .and_then(|i| i.spans.lock().ok().map(|s| s.clone()))
            .unwrap_or_default()
    }

    /// All histograms, sorted by name: explicit [`Recorder::observe`]
    /// observations plus per-span duration histograms (microseconds,
    /// keyed by span name) derived lazily here so `Span::drop` stays off
    /// the histogram lock.
    pub fn histograms(&self) -> Vec<(&'static str, Histogram)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut merged: BTreeMap<&'static str, Histogram> = match inner.histograms.lock() {
            Ok(h) => h.iter().map(|(&k, v)| (k, v.clone())).collect(),
            Err(_) => BTreeMap::new(),
        };
        for span in self.spans() {
            merged
                .entry(span.name)
                .or_default()
                .observe(span.dur_ns / 1_000);
        }
        merged.into_iter().collect()
    }

    /// Number of completed spans.
    pub fn span_count(&self) -> usize {
        self.inner
            .as_ref()
            .and_then(|i| i.spans.lock().ok().map(|s| s.len()))
            .unwrap_or(0)
    }
}

struct SpanState<'a> {
    inner: &'a RecorderInner,
    name: &'static str,
    cat: &'static str,
    start: Instant,
}

impl std::fmt::Debug for SpanState<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanState")
            .field("name", &self.name)
            .field("cat", &self.cat)
            .finish_non_exhaustive()
    }
}

/// RAII span guard from [`Recorder::span`]: records a completed event
/// when dropped. Hold it in a `let` binding for the duration of the
/// phase it brackets (`let _span = recorder.span(…)`; a bare `_` would
/// drop immediately).
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    state: Option<SpanState<'a>>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            let dur_ns = duration_ns(state.start.elapsed());
            let ts_ns = duration_ns(state.start.duration_since(state.inner.epoch));
            // One lock, one push. The per-span duration histogram is
            // derived from the event list at export time, not here.
            if let Ok(mut spans) = state.inner.spans.lock() {
                if spans.len() < state.inner.span_cap {
                    spans.push(SpanEvent {
                        name: state.name,
                        cat: state.cat,
                        ts_ns,
                        dur_ns,
                        tid: current_tid(),
                    });
                } else {
                    state.inner.spans_dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_quantiles_land_in_the_right_bucket() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        // 90 fast observations (~8µs) and 10 slow ones (~1000µs): p50
        // sits in the fast bucket, p99 in the slow one.
        for _ in 0..90 {
            h.observe(8);
        }
        for _ in 0..10 {
            h.observe(1000);
        }
        assert_eq!(h.quantile(0.5), Some(15)); // bucket 2^4 − 1
        assert_eq!(h.quantile(0.99), Some(1023)); // bucket 2^10 − 1
        assert_eq!(h.quantile(0.0), Some(15));
        assert_eq!(h.quantile(1.0), Some(1023));
        // An off-scale observation clamps to the top bucket bound.
        h.observe(u64::MAX);
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn span_cap_bounds_retention_but_not_counters() {
        let r = Recorder::with_span_cap(2);
        for _ in 0..5 {
            let _span = r.span("req", "serve");
            r.bump("requests");
        }
        assert_eq!(r.span_count(), 2);
        assert_eq!(r.spans_dropped(), 3);
        assert_eq!(r.counter("requests"), 5);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        {
            let _span = r.span("phase", "cat");
            r.bump("c");
            r.count_site("site", 3);
            r.observe("h", 42);
        }
        assert_eq!(r.span_count(), 0);
        assert_eq!(r.counter("c"), 0);
        assert!(r.sites().is_empty());
        assert!(r.histograms().is_empty());
        assert!(r.chrome_trace().contains("\"traceEvents\""));
    }

    #[test]
    fn counters_and_sites_accumulate() {
        let r = Recorder::enabled();
        r.bump("a");
        r.add("a", 4);
        r.count_site("s1", 0);
        r.count_site("s1", 7);
        assert_eq!(r.counter("a"), 5);
        let sites = r.sites();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].0, "s1");
        assert_eq!(
            sites[0].1,
            SiteTally {
                visits: 2,
                units: 7
            }
        );
    }

    #[test]
    fn clones_share_buffers() {
        let r = Recorder::enabled();
        let clone = r.clone();
        clone.bump("shared");
        drop(clone.span("phase", "cat"));
        assert_eq!(r.counter("shared"), 1);
        assert_eq!(r.span_count(), 1);
    }

    #[test]
    fn span_guard_records_duration_and_histogram() {
        let r = Recorder::enabled();
        {
            let _span = r.span("slow.phase", "test");
            std::thread::sleep(Duration::from_millis(2));
        }
        let spans = r.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "slow.phase");
        assert_eq!(spans[0].cat, "test");
        assert!(spans[0].dur_ns >= 1_000_000, "dur = {}ns", spans[0].dur_ns);
        let histograms = r.histograms();
        assert_eq!(histograms.len(), 1);
        assert_eq!(histograms[0].0, "slow.phase");
        assert_eq!(histograms[0].1.count, 1);
        assert!(histograms[0].1.sum >= 1_000);
    }

    #[test]
    fn nested_spans_share_a_tid_and_nest_by_time() {
        let r = Recorder::enabled();
        {
            let _outer = r.span("outer", "test");
            {
                let _inner = r.span("inner", "test");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        // Inner drops first, so it appears first in completion order.
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.tid, outer.tid);
        // Proper nesting: the inner span's interval is contained in the
        // outer's — the invariant Perfetto relies on to draw the tree.
        assert!(outer.ts_ns <= inner.ts_ns);
        assert!(inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let r = Recorder::enabled();
        drop(r.span("main", "test"));
        let clone = r.clone();
        std::thread::spawn(move || drop(clone.span("worker", "test")))
            .join()
            .unwrap();
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_ne!(spans[0].tid, spans[1].tid);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(1024);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1027);
        assert_eq!(h.buckets[0], 1); // value 0
        assert_eq!(h.buckets[1], 1); // value 1
        assert_eq!(h.buckets[2], 1); // value 2
        assert_eq!(h.buckets[11], 1); // value 1024
        assert_eq!(h.max_bucket(), Some(11));
    }

    #[test]
    fn absorb_folds_a_request_recorder_into_the_shared_one() {
        let shared = Recorder::with_span_cap(0);
        let request = Recorder::with_span_cap(1);
        request.bump("serve.requests");
        request.count_site("serve.request", 3);
        request.observe("req.micros", 100);
        {
            let _kept = request.span("op.normalize", "serve");
        }
        {
            let _dropped = request.span("op.normalize", "serve");
        }
        assert_eq!(request.spans_dropped(), 1);

        shared.bump("serve.requests");
        shared.absorb(&request);
        assert_eq!(shared.counter("serve.requests"), 2);
        let sites = shared.sites();
        assert_eq!(
            sites,
            vec![(
                "serve.request",
                SiteTally {
                    visits: 1,
                    units: 3
                }
            )]
        );
        // The span's duration folded into the shared histograms even
        // though the span event itself was not copied.
        assert_eq!(shared.span_count(), 0);
        let histograms = shared.histograms();
        assert!(histograms
            .iter()
            .any(|(n, h)| *n == "op.normalize" && h.count == 1));
        assert!(histograms
            .iter()
            .any(|(n, h)| *n == "req.micros" && h.sum == 100));
        assert_eq!(shared.spans_dropped(), 1);
        // Absorbing is idempotent-safe against self and no-op handles.
        shared.absorb(&shared.clone());
        shared.absorb(&Recorder::disabled());
        assert_eq!(shared.counter("serve.requests"), 2);
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.observe(3);
        b.observe(3);
        b.observe(1000);
        a.merge_from(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 1006);
        assert_eq!(a.buckets[2], 2);
        assert_eq!(a.buckets[10], 1);
    }

    #[test]
    fn merge_publishes_snapshot_totals() {
        let mut snap = CounterSnapshot::default();
        snap.record("chase.runs", 3);
        snap.record("cache.hits", 9);
        let r = Recorder::enabled();
        r.add("chase.runs", 1);
        r.merge(&snap);
        assert_eq!(r.counter("chase.runs"), 4);
        assert_eq!(r.counter("cache.hits"), 9);
    }
}
