//! Exporters: Chrome trace JSON, JSONL event stream, Prometheus text.
//!
//! The build environment vendors no serde (same constraint as
//! `xnf-lint`'s report writer), and every record here is a flat object
//! of known shape, so the JSON is assembled by hand with proper string
//! escaping.

use crate::{Histogram, Recorder, SpanEvent};
use std::fmt::Write as _;

/// Output format for an export file; parsed from the CLI's
/// `--obs-format` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsFormat {
    /// Chrome trace event format (load in `chrome://tracing`/Perfetto).
    ChromeTrace,
    /// One JSON object per line.
    Jsonl,
    /// Prometheus text exposition format.
    Prometheus,
}

impl ObsFormat {
    /// Parses a CLI format name (`chrome`, `jsonl`, or `prometheus`).
    pub fn parse(s: &str) -> Option<ObsFormat> {
        match s {
            "chrome" => Some(ObsFormat::ChromeTrace),
            "jsonl" => Some(ObsFormat::Jsonl),
            "prometheus" => Some(ObsFormat::Prometheus),
            _ => None,
        }
    }

    /// The CLI names this parser accepts, for usage messages.
    pub const NAMES: &'static str = "chrome|jsonl|prometheus";
}

/// Escapes `s` as the body of a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders nanoseconds as a decimal microsecond literal with nanosecond
/// precision (`1234` ns → `1.234`): Chrome trace timestamps are doubles
/// in microseconds, and sub-microsecond spans must not collapse to 0.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Replaces characters outside `[a-zA-Z0-9_]` for Prometheus metric and
/// label-value hygiene (site labels like `chase.saturate.queue` become
/// part of a label value, which allows dots, but counter-derived metric
/// names do not).
fn sanitize_metric(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Escapes `s` for use as a Prometheus label *value* per the text
/// exposition format: backslash, double quote, and line feed are the
/// only characters that need escaping (`\\`, `\"`, `\n`). Untrusted
/// strings (e.g. tenant names) must pass through here before landing
/// inside `label="…"`, or a name like `a"b` corrupts the exposition.
pub fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a span list as a complete Chrome trace event document — the
/// shared body of [`Recorder::chrome_trace`] and the flight recorder's
/// per-request trace endpoint.
pub fn chrome_trace_events(spans: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            escape(span.name),
            escape(span.cat),
            micros(span.ts_ns),
            micros(span.dur_ns),
            span.tid
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

impl Recorder {
    /// Renders one of the three export formats.
    pub fn export(&self, format: ObsFormat) -> String {
        match format {
            ObsFormat::ChromeTrace => self.chrome_trace(),
            ObsFormat::Jsonl => self.jsonl(),
            ObsFormat::Prometheus => self.prometheus(),
        }
    }

    /// Renders the span timeline in Chrome trace event format: a JSON
    /// object with a `traceEvents` array of complete (`ph:"X"`) events,
    /// loadable in `chrome://tracing` and Perfetto.
    pub fn chrome_trace(&self) -> String {
        chrome_trace_events(&self.spans())
    }

    /// Renders every recorded event as one JSON object per line: spans
    /// first (completion order), then checkpoint-site tallies, counters,
    /// and histogram summaries.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.spans() {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"name\":\"{}\",\"cat\":\"{}\",\"ts_us\":{},\"dur_us\":{},\"tid\":{}}}",
                escape(span.name),
                escape(span.cat),
                micros(span.ts_ns),
                micros(span.dur_ns),
                span.tid
            );
        }
        for (site, tally) in self.sites() {
            let _ = writeln!(
                out,
                "{{\"type\":\"site\",\"site\":\"{}\",\"visits\":{},\"units\":{}}}",
                escape(site),
                tally.visits,
                tally.units
            );
        }
        for (name, value) in self.counters() {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                escape(name),
                value
            );
        }
        for (name, h) in self.histograms() {
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{}}}",
                escape(name),
                h.count,
                h.sum
            );
        }
        out
    }

    /// Renders counters, checkpoint-site tallies, and span-duration
    /// histograms in Prometheus text exposition format.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let sites = self.sites();
        if !sites.is_empty() {
            out.push_str("# TYPE xnf_checkpoint_visits_total counter\n");
            for (site, tally) in &sites {
                let _ = writeln!(
                    out,
                    "xnf_checkpoint_visits_total{{site=\"{}\"}} {}",
                    escape_label(site),
                    tally.visits
                );
            }
            out.push_str("# TYPE xnf_checkpoint_units_total counter\n");
            for (site, tally) in &sites {
                let _ = writeln!(
                    out,
                    "xnf_checkpoint_units_total{{site=\"{}\"}} {}",
                    escape_label(site),
                    tally.units
                );
            }
        }
        for (name, value) in self.counters() {
            let metric = format!("xnf_{}_total", sanitize_metric(name));
            let _ = writeln!(out, "# TYPE {metric} counter\n{metric} {value}");
        }
        let histograms = self.histograms();
        if !histograms.is_empty() {
            out.push_str("# TYPE xnf_duration_microseconds histogram\n");
            for (name, h) in &histograms {
                render_histogram(&mut out, name, h);
            }
        }
        out
    }
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let name = escape_label(name);
    let max = h.max_bucket().unwrap_or(0);
    let mut cumulative = 0u64;
    for (k, count) in h.buckets.iter().enumerate().take(max + 1) {
        cumulative += count;
        // Bucket k holds values < 2^k, i.e. le = 2^k − 1.
        let le = (1u128 << k) - 1;
        let _ = writeln!(
            out,
            "xnf_duration_microseconds_bucket{{name=\"{name}\",le=\"{le}\"}} {cumulative}"
        );
    }
    let _ = writeln!(
        out,
        "xnf_duration_microseconds_bucket{{name=\"{name}\",le=\"+Inf\"}} {}",
        h.count
    );
    let _ = writeln!(
        out,
        "xnf_duration_microseconds_sum{{name=\"{name}\"}} {}",
        h.sum
    );
    let _ = writeln!(
        out,
        "xnf_duration_microseconds_count{{name=\"{name}\"}} {}",
        h.count
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal JSON scanner: validates syntax and returns the token
    /// stream of a flat-ish document — enough to check the Chrome trace
    /// without a JSON dependency.
    fn assert_valid_json(s: &str) {
        let mut depth = 0i32;
        let mut in_string = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced JSON:\n{s}");
        }
        assert_eq!(depth, 0, "unbalanced JSON:\n{s}");
        assert!(!in_string, "unterminated string:\n{s}");
    }

    fn sample() -> Recorder {
        let r = Recorder::enabled();
        {
            let _outer = r.span("normalize.iteration", "normalize");
            let _inner = r.span("chase.run", "implication");
        }
        r.count_site("chase.run", 0);
        r.count_site("nfa.build.node", 2);
        r.add("chase.runs", 3);
        r
    }

    #[test]
    fn chrome_trace_has_required_fields_per_event() {
        let trace = sample().chrome_trace();
        assert_valid_json(&trace);
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        // Every event line carries the five required Chrome fields.
        let events: Vec<&str> = trace.lines().filter(|l| l.contains("\"ph\"")).collect();
        assert_eq!(events.len(), 2, "{trace}");
        for ev in events {
            for field in [
                "\"ph\":\"X\"",
                "\"ts\":",
                "\"dur\":",
                "\"name\":",
                "\"cat\":",
            ] {
                assert!(ev.contains(field), "missing {field} in {ev}");
            }
        }
        assert!(trace.contains("\"name\":\"chase.run\""), "{trace}");
        assert!(trace.contains("\"cat\":\"implication\""), "{trace}");
    }

    #[test]
    fn chrome_trace_spans_nest() {
        let r = sample();
        let spans = r.spans();
        // chase.run completes first and is contained in the iteration.
        assert_eq!(spans[0].name, "chase.run");
        assert_eq!(spans[1].name, "normalize.iteration");
        assert_eq!(spans[0].tid, spans[1].tid);
        assert!(spans[1].ts_ns <= spans[0].ts_ns);
        assert!(spans[0].ts_ns + spans[0].dur_ns <= spans[1].ts_ns + spans[1].dur_ns);
    }

    #[test]
    fn micros_keeps_nanosecond_precision() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(1_000_000), "1000.000");
    }

    #[test]
    fn jsonl_lines_are_each_valid_json() {
        let out = sample().jsonl();
        assert!(!out.is_empty());
        for line in out.lines() {
            assert_valid_json(line);
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(out.contains("\"type\":\"span\""), "{out}");
        assert!(out.contains("\"type\":\"site\""), "{out}");
        assert!(out.contains("\"type\":\"counter\""), "{out}");
        assert!(out.contains("\"type\":\"histogram\""), "{out}");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let out = sample().prometheus();
        assert!(
            out.contains("xnf_checkpoint_visits_total{site=\"chase.run\"} 1"),
            "{out}"
        );
        assert!(
            out.contains("xnf_checkpoint_units_total{site=\"nfa.build.node\"} 2"),
            "{out}"
        );
        assert!(out.contains("# TYPE xnf_chase_runs_total counter"), "{out}");
        assert!(out.contains("xnf_chase_runs_total 3"), "{out}");
        assert!(out.contains("xnf_duration_microseconds_bucket"), "{out}");
        assert!(
            out.contains("xnf_duration_microseconds_count{name=\"chase.run\"} 1"),
            "{out}"
        );
        // Cumulative buckets end at +Inf with the total count.
        assert!(
            out.contains("xnf_duration_microseconds_bucket{name=\"chase.run\",le=\"+Inf\"} 1"),
            "{out}"
        );
    }

    #[test]
    fn export_dispatches_on_format() {
        let r = sample();
        assert_eq!(r.export(ObsFormat::ChromeTrace), r.chrome_trace());
        assert_eq!(r.export(ObsFormat::Jsonl), r.jsonl());
        assert_eq!(r.export(ObsFormat::Prometheus), r.prometheus());
        assert_eq!(ObsFormat::parse("chrome"), Some(ObsFormat::ChromeTrace));
        assert_eq!(ObsFormat::parse("jsonl"), Some(ObsFormat::Jsonl));
        assert_eq!(ObsFormat::parse("prometheus"), Some(ObsFormat::Prometheus));
        assert_eq!(ObsFormat::parse("xml"), None);
    }

    #[test]
    fn escaping_covers_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn label_escaping_neutralizes_hostile_values() {
        // The exposition format escapes exactly `\`, `"`, and newline
        // in label values; everything else passes through untouched.
        assert_eq!(escape_label("a\"b\n"), "a\\\"b\\n");
        assert_eq!(escape_label("back\\slash"), "back\\\\slash");
        assert_eq!(escape_label("chase.run"), "chase.run");
        assert_eq!(escape_label("tab\tstays"), "tab\tstays");
    }
}
