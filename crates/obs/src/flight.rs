//! Request-scoped observability: a bounded flight-recorder ring with
//! tail-sampling retention, request-ID minting, and labeled latency
//! histograms.
//!
//! The shared [`Recorder`](crate::Recorder) answers fleet-level
//! questions ("how many chase checkpoints total?"); this module is the
//! request-level half a service mounts next to it. Each finished
//! request becomes one [`RequestRecord`] — its id, labels, budget
//! ticks, wall time, and the span tree its per-request recorder
//! captured — and the [`FlightRecorder`] decides what to keep:
//!
//! * **errors and sheds always** — any non-`200` outcome is retained
//!   unconditionally (eviction prefers sampled records, so a full ring
//!   gives up boring successes first);
//! * **the slow tail always** — a `200` at or above the running p90 of
//!   the latency histogram is retained like an error;
//! * **pinned requests always** — the caller marks records whose id the
//!   client supplied (`x-request-id` / `traceparent`); sending an id is
//!   an explicit ask to trace, so those are retained like errors;
//! * **a sample of the boring rest** — every `sample_every`-th
//!   uninteresting `200` is kept so the ring still shows the normal
//!   shape of traffic.
//!
//! Everything is allocation-capped: the ring holds at most `capacity`
//! records, each record's span list is bounded upstream by the
//! per-request recorder's span cap, and the labeled histogram table
//! folds overflow label sets into a catch-all `other` series.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::export::{chrome_trace_events, escape, escape_label};
use crate::{Histogram, SpanEvent};

/// Mints a process-unique request id: 32 lowercase hex characters (the
/// same shape as a W3C `traceparent` trace-id), derived from the wall
/// clock and a process-wide sequence number so concurrent mints never
/// collide.
pub fn mint_request_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| {
            u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0)
        });
    let a = splitmix64(now ^ 0x9E37_79B9_7F4A_7C15);
    let b = splitmix64(a ^ seq.rotate_left(32));
    format!("{a:016x}{b:016x}")
}

/// The splitmix64 finalizer: a cheap, well-mixed 64→64 bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One finished request, as the service layer hands it to the flight
/// recorder: identity, labels, consumption, and the captured span tree.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// The request id (minted or propagated from the client).
    pub id: String,
    /// Tenant display name (`-` for anonymous requests).
    pub tenant: String,
    /// Route label (a bounded set — dynamic path segments collapsed).
    pub route: String,
    /// HTTP status of the response.
    pub status: u16,
    /// Result-cache outcome: `hit`, `miss`, or `none`.
    pub cache: String,
    /// Shed reason (`queue`, `fuel`, `quota`) or empty when not shed.
    pub shed: String,
    /// Budget checkpoint ticks the request consumed.
    pub fuel: u64,
    /// Wall-clock duration of the handler, microseconds.
    pub wall_micros: u64,
    /// The per-request recorder's completed spans (bounded upstream by
    /// its span cap).
    pub spans: Vec<SpanEvent>,
}

/// A spans-free view of a retained record, for `GET /debug/requests`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSummary {
    /// The request id.
    pub id: String,
    /// Tenant display name.
    pub tenant: String,
    /// Route label.
    pub route: String,
    /// HTTP status.
    pub status: u16,
    /// Cache outcome.
    pub cache: String,
    /// Shed reason or empty.
    pub shed: String,
    /// Budget ticks.
    pub fuel: u64,
    /// Handler wall time, microseconds.
    pub wall_micros: u64,
    /// Number of retained spans (the trace endpoint renders them).
    pub spans: usize,
}

/// Why a record is in the ring; eviction gives up `Sampled` entries
/// before touching a `Must` (error / shed / slow-tail) one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Keep {
    Must,
    Sampled,
}

/// The bounded, tail-sampling ring of recent [`RequestRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    sample_every: u64,
    /// Boring-200 counter driving the 1-in-`sample_every` sample.
    boring: AtomicU64,
    sampled_out: AtomicU64,
    evicted: AtomicU64,
    /// Wall-time distribution of *every* finished request (retained or
    /// not) — the slow-tail threshold comes from here.
    latency: Mutex<Histogram>,
    ring: Mutex<VecDeque<(Keep, RequestRecord)>>,
}

impl FlightRecorder {
    /// A ring retaining at most `capacity` records, keeping one in
    /// `sample_every` boring successes (`0` keeps none of them;
    /// errors, sheds, and the slow tail are always kept).
    pub fn new(capacity: usize, sample_every: u64) -> FlightRecorder {
        FlightRecorder {
            capacity,
            sample_every,
            boring: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            latency: Mutex::new(Histogram::default()),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Offers one finished request to the ring, applying the
    /// tail-sampling policy described on the module. `pinned` marks a
    /// request whose id the *client* supplied (`x-request-id` /
    /// `traceparent`): that is an explicit ask to trace, so it is
    /// retained like an error regardless of how boring its outcome was.
    pub fn record(&self, record: RequestRecord, pinned: bool) {
        let slow_bound = {
            let mut latency = match self.latency.lock() {
                Ok(h) => h,
                Err(e) => e.into_inner(),
            };
            latency.observe(record.wall_micros);
            latency.quantile(0.9).unwrap_or(u64::MAX)
        };
        let keep = if pinned || record.status != 200 || record.wall_micros >= slow_bound {
            Keep::Must
        } else {
            let n = self.boring.fetch_add(1, Ordering::Relaxed);
            if self.sample_every > 0 && n.is_multiple_of(self.sample_every) {
                Keep::Sampled
            } else {
                self.sampled_out.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        if self.capacity == 0 {
            return;
        }
        let mut ring = match self.ring.lock() {
            Ok(r) => r,
            Err(e) => e.into_inner(),
        };
        if ring.len() >= self.capacity {
            // Evict the oldest sampled success first; only a ring full
            // of must-keeps gives one of those up (its oldest).
            let victim = ring
                .iter()
                .position(|(k, _)| *k == Keep::Sampled)
                .unwrap_or(0);
            ring.remove(victim);
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back((keep, record));
    }

    /// Spans-free summaries of the retained records, newest first.
    pub fn recent(&self) -> Vec<RequestSummary> {
        let ring = match self.ring.lock() {
            Ok(r) => r,
            Err(e) => e.into_inner(),
        };
        ring.iter()
            .rev()
            .map(|(_, r)| RequestSummary {
                id: r.id.clone(),
                tenant: r.tenant.clone(),
                route: r.route.clone(),
                status: r.status,
                cache: r.cache.clone(),
                shed: r.shed.clone(),
                fuel: r.fuel,
                wall_micros: r.wall_micros,
                spans: r.spans.len(),
            })
            .collect()
    }

    /// The retained records' summaries as one JSON document:
    /// `{"requests":[{…newest first…}]}`.
    pub fn requests_json(&self) -> String {
        let mut out = String::from("{\"requests\":[");
        for (i, s) in self.recent().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            use std::fmt::Write as _;
            let _ = write!(
                out,
                "\n{{\"id\":\"{}\",\"tenant\":\"{}\",\"route\":\"{}\",\"status\":{},\
                 \"cache\":\"{}\",\"shed\":\"{}\",\"fuel\":{},\"wall_micros\":{},\"spans\":{}}}",
                escape(&s.id),
                escape(&s.tenant),
                escape(&s.route),
                s.status,
                escape(&s.cache),
                escape(&s.shed),
                s.fuel,
                s.wall_micros,
                s.spans
            );
        }
        out.push_str("\n]}\n");
        out
    }

    /// The retained record with the given id (newest match wins), as a
    /// Chrome-trace JSON document of its span tree; `None` when the id
    /// was never seen or has been sampled out / evicted.
    pub fn trace(&self, id: &str) -> Option<String> {
        let ring = match self.ring.lock() {
            Ok(r) => r,
            Err(e) => e.into_inner(),
        };
        ring.iter()
            .rev()
            .find(|(_, r)| r.id == id)
            .map(|(_, r)| chrome_trace_events(&r.spans))
    }

    /// Records currently retained.
    pub fn retained(&self) -> usize {
        match self.ring.lock() {
            Ok(r) => r.len(),
            Err(e) => e.into_inner().len(),
        }
    }

    /// Boring successes the sampler dropped.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out.load(Ordering::Relaxed)
    }

    /// Records evicted from a full ring.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// A fixed label-set key: `(route, tenant, cache outcome)`.
type LabelKey = (String, String, String);

/// Latency histograms keyed by `route × tenant × cache-outcome`,
/// rendered in Prometheus exposition format with properly escaped
/// label values. The table is allocation-capped: past `cap` distinct
/// label sets, observations fold into a catch-all `other` series (all
/// three labels `other`) instead of growing the map.
#[derive(Debug)]
pub struct LabeledHistograms {
    cap: usize,
    map: Mutex<BTreeMap<LabelKey, Histogram>>,
}

impl LabeledHistograms {
    /// An empty table holding at most `cap` distinct label sets.
    pub fn new(cap: usize) -> LabeledHistograms {
        LabeledHistograms {
            cap: cap.max(1),
            map: Mutex::new(BTreeMap::new()),
        }
    }

    /// Records `value` under the given label set (folding into the
    /// catch-all series once the table is at capacity).
    pub fn observe(&self, route: &str, tenant: &str, cache: &str, value: u64) {
        let mut map = match self.map.lock() {
            Ok(m) => m,
            Err(e) => e.into_inner(),
        };
        let key = (route.to_string(), tenant.to_string(), cache.to_string());
        if let Some(h) = map.get_mut(&key) {
            h.observe(value);
            return;
        }
        if map.len() < self.cap {
            map.entry(key).or_default().observe(value);
        } else {
            let other = (
                "other".to_string(),
                "other".to_string(),
                "other".to_string(),
            );
            map.entry(other).or_default().observe(value);
        }
    }

    /// Appends the whole table to `out` in Prometheus text exposition
    /// format under `metric`: per label set, cumulative `_bucket` lines
    /// with monotone `le = 2^k − 1` bounds ending at `+Inf`, then
    /// `_sum` and `_count`. Label values are escaped per the format
    /// (`\\`, `\"`, `\n`), so arbitrary tenant names cannot corrupt the
    /// exposition.
    pub fn prometheus(&self, metric: &str, out: &mut String) {
        let map = match self.map.lock() {
            Ok(m) => m,
            Err(e) => e.into_inner(),
        };
        if map.is_empty() {
            return;
        }
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE {metric} histogram");
        for ((route, tenant, cache), h) in map.iter() {
            let labels = format!(
                "route=\"{}\",tenant=\"{}\",cache=\"{}\"",
                escape_label(route),
                escape_label(tenant),
                escape_label(cache)
            );
            let max = h.max_bucket().unwrap_or(0);
            let mut cumulative = 0u64;
            for (k, count) in h.buckets.iter().enumerate().take(max + 1) {
                cumulative += count;
                let le = (1u128 << k) - 1;
                let _ = writeln!(out, "{metric}_bucket{{{labels},le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{metric}_bucket{{{labels},le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{metric}_sum{{{labels}}} {}", h.sum);
            let _ = writeln!(out, "{metric}_count{{{labels}}} {}", h.count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, status: u16, wall: u64) -> RequestRecord {
        RequestRecord {
            id: id.to_string(),
            tenant: "-".to_string(),
            route: "/v1/lint".to_string(),
            status,
            cache: "none".to_string(),
            shed: if status == 429 { "queue" } else { "" }.to_string(),
            fuel: 1,
            wall_micros: wall,
            spans: Vec::new(),
        }
    }

    #[test]
    fn minted_ids_are_unique_and_well_formed() {
        let a = mint_request_id();
        let b = mint_request_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 32, "{id}");
            assert!(id.bytes().all(|b| b.is_ascii_hexdigit()), "{id}");
        }
    }

    /// The acceptance sweep: 1000 mixed requests against a ring of 256
    /// must retain *every* non-200 outcome — tail sampling only ever
    /// drops boring successes.
    #[test]
    fn tail_sampler_retains_all_non_200s_in_a_1000_request_mixed_sweep() {
        let flight = FlightRecorder::new(256, 8);
        let mut non_200_ids = Vec::new();
        for i in 0..1000u32 {
            // A deterministic mix: ~12% errors/sheds spread through the
            // sweep (429 shed, 503 exhausted, 422 bad spec), the rest
            // fast boring 200s.
            let status = match i % 25 {
                3 => 429,
                11 => 503,
                19 => 422,
                _ => 200,
            };
            let id = format!("req-{i:04}");
            if status != 200 {
                non_200_ids.push(id.clone());
            }
            flight.record(record(&id, status, 50 + u64::from(i % 7)), false);
        }
        assert_eq!(non_200_ids.len(), 120);
        let retained: Vec<RequestSummary> = flight.recent();
        assert!(retained.len() <= 256);
        for id in &non_200_ids {
            assert!(
                retained.iter().any(|s| &s.id == id),
                "non-200 request {id} was not retained"
            );
        }
        // The boring 200s were sampled, not kept wholesale.
        assert!(flight.sampled_out() > 0);
        assert!(retained.iter().filter(|s| s.status == 200).count() < 880);
    }

    #[test]
    fn slow_tail_200s_are_retained_like_errors() {
        // sample_every = 0: no boring success is ever kept, so anything
        // retained with status 200 got there through the slow-tail rule.
        let flight = FlightRecorder::new(64, 0);
        for i in 0..200u64 {
            flight.record(record(&format!("fast-{i}"), 200, 10), false);
        }
        flight.record(record("slow", 200, 1_000_000), false);
        let retained = flight.recent();
        assert!(
            retained.iter().any(|s| s.id == "slow"),
            "the slow outlier must be retained: {retained:?}"
        );
        assert!(retained.iter().all(|s| s.id != "fast-199"));
    }

    #[test]
    fn pinned_boring_200s_are_retained_like_errors() {
        // sample_every = 0 again: the only way a fast 200 survives is
        // the pinned flag, i.e. the client supplied its own request id.
        let flight = FlightRecorder::new(64, 0);
        for i in 0..200u64 {
            flight.record(record(&format!("fast-{i}"), 200, 10), false);
        }
        flight.record(record("client-pinned", 200, 10), true);
        let retained = flight.recent();
        assert!(
            retained.iter().any(|s| s.id == "client-pinned"),
            "a client-supplied id is an explicit ask to trace: {retained:?}"
        );
        assert!(flight.trace("client-pinned").is_some());
    }

    #[test]
    fn eviction_prefers_sampled_records_and_trace_lookup_works() {
        let flight = FlightRecorder::new(4, 1);
        flight.record(record("ok-1", 200, 5), false);
        flight.record(record("ok-2", 200, 5), false);
        for i in 0..4 {
            flight.record(record(&format!("err-{i}"), 500, 5), false);
        }
        let retained = flight.recent();
        assert_eq!(retained.len(), 4);
        // Both sampled successes were evicted before any error.
        for i in 0..4 {
            let id = format!("err-{i}");
            assert!(retained.iter().any(|s| s.id == id), "{retained:?}");
        }
        assert_eq!(flight.evicted(), 2);
        assert!(flight.trace("err-3").is_some());
        assert!(flight.trace("ok-1").is_none());
        let trace = flight.trace("err-0").expect("retained");
        assert!(trace.contains("\"traceEvents\""), "{trace}");
    }

    #[test]
    fn requests_json_is_well_formed_and_newest_first() {
        let flight = FlightRecorder::new(8, 1);
        flight.record(record("a", 200, 5), false);
        flight.record(record("b\"quote", 503, 9), false);
        let json = flight.requests_json();
        assert!(json.starts_with("{\"requests\":["), "{json}");
        assert!(json.contains("\"id\":\"b\\\"quote\""), "{json}");
        let b_at = json.find("b\\\"quote").unwrap();
        let a_at = json.find("\"id\":\"a\"").unwrap();
        assert!(b_at < a_at, "newest first: {json}");
    }

    #[test]
    fn labeled_histograms_escape_and_stay_monotone() {
        let h = LabeledHistograms::new(16);
        h.observe("/v1/normalize", "a\"b\n", "miss", 100);
        h.observe("/v1/normalize", "a\"b\n", "miss", 5);
        let mut out = String::new();
        h.prometheus("xnf_serve_request_duration_microseconds", &mut out);
        // The hostile tenant name is escaped, not emitted raw.
        assert!(out.contains("tenant=\"a\\\"b\\n\""), "{out}");
        assert!(!out.contains("a\"b\n\""), "{out}");
        // Cumulative bucket counts are monotone and end at +Inf = count.
        let mut last = 0u64;
        for line in out.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone bucket: {line}\n{out}");
            last = v;
        }
        assert!(
            out.contains("le=\"+Inf\"} 2"),
            "+Inf bucket carries the count: {out}"
        );
    }

    #[test]
    fn labeled_histograms_fold_overflow_into_other() {
        let h = LabeledHistograms::new(2);
        h.observe("/a", "-", "none", 1);
        h.observe("/b", "-", "none", 1);
        h.observe("/c", "-", "none", 1);
        h.observe("/d", "-", "none", 1);
        let mut out = String::new();
        h.prometheus("m", &mut out);
        assert!(
            out.contains("route=\"other\",tenant=\"other\",cache=\"other\""),
            "{out}"
        );
        assert!(
            out.contains("m_count{route=\"other\",tenant=\"other\",cache=\"other\"} 2"),
            "{out}"
        );
    }
}
