//! E16 — linting the generated corpus (see `EXPERIMENTS.md`).
//!
//! The `xnf-gen` generators claim to produce well-formed specs: simple or
//! disjunctive non-recursive DTDs whose elements are all reachable, plus
//! FD sets drawn from `paths(D)`. The linter is an independent check of
//! that claim: across a seeded corpus, **no spec may produce a single
//! hard error**. Warnings are legitimate (a random FD can be trivial,
//! redundant, or — on a disjunctive DTD — vacuous); the test tallies
//! them so `EXPERIMENTS.md` can record the observed mix.

use xnf_gen::dtd::{disjunctive_dtd, simple_dtd, SimpleDtdParams};
use xnf_gen::fd::{random_fds, FdParams};
use xnf_lint::lint_spec;

#[test]
fn generated_corpus_lints_without_errors() {
    let params = SimpleDtdParams {
        elements: 12,
        ..SimpleDtdParams::default()
    };
    let fd_params = FdParams {
        count: 5,
        max_lhs: 2,
    };
    let mut warning_tally: std::collections::BTreeMap<&'static str, usize> =
        std::collections::BTreeMap::new();
    let mut specs = 0usize;
    for seed in 0..40u64 {
        let mut rng = xnf_gen::rng(seed);
        let dtd = if seed % 2 == 0 {
            simple_dtd(&mut rng, &params)
        } else {
            disjunctive_dtd(&mut rng, &params, 2, 3)
        };
        let fds = random_fds(&dtd, &mut rng, &fd_params);
        let report = lint_spec(&dtd.to_string(), Some(&fds.to_string()));
        assert!(
            !report.has_errors(),
            "seed {seed}: generated spec has hard lint errors\n{}\n--- dtd ---\n{dtd}\n--- fds ---\n{fds}",
            report.render_human()
        );
        for code in report.codes() {
            *warning_tally.entry(code.as_str()).or_insert(0) += 1;
        }
        specs += 1;
    }
    // Numbers recorded in EXPERIMENTS.md § E16; printed for re-runs with
    // `cargo test -p xnf-lint --test gen_corpus -- --nocapture`.
    println!("E16: {specs} specs, diagnostics by code: {warning_tally:?}");
}
