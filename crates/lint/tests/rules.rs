//! Per-rule coverage: every registered lint rule has at least one firing
//! test (a minimal spec mutated to trip it) and one non-firing test (the
//! closest clean spec). The ISSUE's acceptance floor — ≥ 8 distinct coded
//! rules, ≥ 4 structural and ≥ 4 implication-backed — is pinned by
//! `registry_floor` at the bottom.

use xnf_lint::{lint_spec, Code, Severity, Tier};

/// The university spec (Figure 1 / Example 1.1) — the canonical clean spec.
const UNIVERSITY_DTD: &str = "\
<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ATTLIST course cno CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (name, grade)>
<!ATTLIST student sno CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT grade (#PCDATA)>";

const UNIVERSITY_FDS: &str = "\
courses.course.@cno -> courses.course
courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student
courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S";

fn codes(dtd: &str, fds: Option<&str>) -> Vec<Code> {
    lint_spec(dtd, fds).codes()
}

fn fires(dtd: &str, fds: Option<&str>, code: Code) -> bool {
    codes(dtd, fds).contains(&code)
}

#[test]
fn university_spec_is_clean() {
    let report = lint_spec(UNIVERSITY_DTD, Some(UNIVERSITY_FDS));
    assert!(report.is_clean(), "{}", report.render_human());
}

// ---------------------------------------------------------------- XNF001

#[test]
fn xnf001_fires_on_broken_dtd_with_line_col_span() {
    let report = lint_spec("<!ELEMENT r (a)>\n<!ELEMENT a (b >", None);
    assert_eq!(report.codes(), vec![Code::DtdSyntax]);
    let d = &report.diagnostics()[0];
    assert_eq!(d.severity, Severity::Error);
    let span = d.span.as_ref().expect("syntax errors carry a span");
    assert_eq!(span.at.line, 2, "error is on the second line");
}

#[test]
fn xnf001_does_not_fire_on_parseable_dtd() {
    assert!(!fires(UNIVERSITY_DTD, None, Code::DtdSyntax));
}

// ---------------------------------------------------------------- XNF002

#[test]
fn xnf002_fires_on_duplicate_element_with_note_to_first() {
    let report = lint_spec(
        "<!ELEMENT r (a)>\n<!ELEMENT a EMPTY>\n<!ELEMENT a (b)>\n<!ELEMENT b EMPTY>",
        None,
    );
    assert!(report.codes().contains(&Code::DuplicateElement));
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::DuplicateElement)
        .unwrap();
    assert_eq!(
        d.span.as_ref().unwrap().at.line,
        3,
        "points at the second decl"
    );
    assert!(d.notes[0].contains("dtd:2:11"), "note: {:?}", d.notes);
}

#[test]
fn xnf002_does_not_fire_without_duplicates() {
    assert!(!fires(UNIVERSITY_DTD, None, Code::DuplicateElement));
}

// ---------------------------------------------------------------- XNF003

#[test]
fn xnf003_fires_on_duplicate_attribute_even_across_blocks() {
    let dtd = "<!ELEMENT r (a)>\n<!ELEMENT a EMPTY>\n\
               <!ATTLIST a x CDATA #REQUIRED>\n<!ATTLIST a x CDATA #IMPLIED>";
    assert!(fires(dtd, None, Code::DuplicateAttribute));
}

#[test]
fn xnf003_does_not_fire_on_distinct_attributes() {
    let dtd = "<!ELEMENT r (a)>\n<!ELEMENT a EMPTY>\n\
               <!ATTLIST a x CDATA #REQUIRED y CDATA #IMPLIED>";
    assert!(!fires(dtd, None, Code::DuplicateAttribute));
}

// ---------------------------------------------------------------- XNF004

#[test]
fn xnf004_fires_on_undeclared_reference() {
    let report = lint_spec("<!ELEMENT r (ghost)>", None);
    assert_eq!(report.codes(), vec![Code::UndeclaredElement]);
    assert!(report.has_errors());
}

#[test]
fn xnf004_does_not_fire_when_all_references_resolve() {
    assert!(!fires(UNIVERSITY_DTD, None, Code::UndeclaredElement));
}

// ---------------------------------------------------------------- XNF005

#[test]
fn xnf005_fires_when_root_is_referenced() {
    let dtd = "<!ELEMENT r (a)>\n<!ELEMENT a (r?)>";
    let report = lint_spec(dtd, None);
    assert_eq!(report.codes(), vec![Code::RootReferenced]);
    let d = &report.diagnostics()[0];
    assert_eq!(d.span.as_ref().unwrap().at.line, 2, "points at `a`'s decl");
}

#[test]
fn xnf005_does_not_fire_on_definition_1_conformant_dtds() {
    assert!(!fires(UNIVERSITY_DTD, None, Code::RootReferenced));
}

// ---------------------------------------------------------------- XNF006

#[test]
fn xnf006_fires_on_attlist_for_undeclared_element() {
    let dtd = "<!ELEMENT r EMPTY>\n<!ATTLIST ghost x CDATA #REQUIRED>";
    assert_eq!(codes(dtd, None), vec![Code::AttlistForUndeclared]);
}

#[test]
fn xnf006_does_not_fire_when_attlists_match_declarations() {
    assert!(!fires(UNIVERSITY_DTD, None, Code::AttlistForUndeclared));
}

// ---------------------------------------------------------------- XNF007

#[test]
fn xnf007_fires_on_unreachable_element() {
    let dtd = "<!ELEMENT r (a)>\n<!ELEMENT a EMPTY>\n<!ELEMENT orphan EMPTY>";
    let report = lint_spec(dtd, None);
    assert_eq!(report.codes(), vec![Code::UnreachableElement]);
    assert!(!report.has_errors(), "unreachability is a warning");
    assert!(report.diagnostics()[0].message.contains("orphan"));
}

#[test]
fn xnf007_does_not_fire_when_everything_is_reachable() {
    assert!(!fires(UNIVERSITY_DTD, None, Code::UnreachableElement));
}

// ---------------------------------------------------------------- XNF008

#[test]
fn xnf008_fires_on_non_generating_element() {
    // `a` needs itself forever; `r` survives because `a` is optional.
    let dtd = "<!ELEMENT r (a?)>\n<!ELEMENT a (a)>";
    let report = lint_spec(dtd, None);
    assert!(report.codes().contains(&Code::NonGeneratingElement));
    assert!(
        report.codes().contains(&Code::RecursiveDtd),
        "a reachable non-generating element always sits on a cycle"
    );
}

#[test]
fn xnf008_does_not_fire_when_every_element_generates() {
    assert!(!fires(UNIVERSITY_DTD, None, Code::NonGeneratingElement));
}

// ---------------------------------------------------------------- XNF009

#[test]
fn xnf009_fires_when_the_root_cannot_generate() {
    let dtd = "<!ELEMENT r (a)>\n<!ELEMENT a (a)>";
    let report = lint_spec(dtd, None);
    assert!(report.codes().contains(&Code::UnsatisfiableDtd));
    assert!(report.has_errors(), "unsatisfiability is a hard error");
}

#[test]
fn xnf009_does_not_fire_on_satisfiable_dtds() {
    // Same cycle, but optional: the root generates the empty word.
    assert!(!fires(
        "<!ELEMENT r (a?)>\n<!ELEMENT a (a)>",
        None,
        Code::UnsatisfiableDtd
    ));
}

// ---------------------------------------------------------------- XNF010

#[test]
fn xnf010_fires_on_nondeterministic_content_model() {
    // (a, b) | (a?, b) ≡ a?, b — Parikh-wise a simple model (so XNF012
    // stays quiet), but not 1-unambiguous: on reading `a` the matcher
    // cannot tell which branch it entered.
    let dtd = "<!ELEMENT r ((a, b) | (a?, b))>\n<!ELEMENT a EMPTY>\n<!ELEMENT b EMPTY>";
    let report = lint_spec(dtd, None);
    assert_eq!(report.codes(), vec![Code::NondeterministicContent]);
    assert!(report.has_errors());
    assert!(report.diagnostics()[0].message.contains('a'));
}

#[test]
fn xnf010_does_not_fire_on_deterministic_models() {
    assert!(!fires(UNIVERSITY_DTD, None, Code::NondeterministicContent));
}

// ---------------------------------------------------------------- XNF011

#[test]
fn xnf011_fires_on_recursive_dtd_and_skips_semantic_tier() {
    // Recursion must sit below the root: a root-recursive DTD is already
    // rejected at parse (Definition 1 → XNF005).
    let dtd = "<!ELEMENT r (part)>\n<!ELEMENT part (name, part*)>\n<!ELEMENT name (#PCDATA)>";
    let report = lint_spec(dtd, Some("r.part.part -> r.part"));
    assert_eq!(report.codes(), vec![Code::RecursiveDtd]);
    assert!(!report.has_errors(), "recursion is a warning, not an error");
}

#[test]
fn xnf011_still_reports_fd_syntax_errors_for_recursive_dtds() {
    let dtd = "<!ELEMENT r (part)>\n<!ELEMENT part (name, part*)>\n<!ELEMENT name (#PCDATA)>";
    let report = lint_spec(dtd, Some("not an fd ->"));
    assert_eq!(report.codes(), vec![Code::RecursiveDtd, Code::FdSyntax]);
}

#[test]
fn xnf011_does_not_fire_on_non_recursive_dtds() {
    assert!(!fires(UNIVERSITY_DTD, None, Code::RecursiveDtd));
}

// ---------------------------------------------------------------- XNF012

#[test]
fn xnf012_fires_on_a_general_class_dtd() {
    // (a, a): Parikh count [2,2] is not a multiplicity, so the model is
    // neither simple nor a disjunction — General class (Theorem 5). It is
    // still deterministic, so XNF012 is the only diagnostic.
    let dtd = "<!ELEMENT r (a, a)>\n<!ELEMENT a EMPTY>";
    let report = lint_spec(dtd, None);
    assert_eq!(report.codes(), vec![Code::GeneralClass]);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::GeneralClass)
        .unwrap();
    assert_eq!(d.severity, Severity::Info);
}

#[test]
fn xnf012_does_not_fire_on_simple_dtds() {
    assert!(!fires(UNIVERSITY_DTD, None, Code::GeneralClass));
}

// ---------------------------------------------------------------- XNF101

#[test]
fn xnf101_fires_per_broken_fd_with_spans() {
    let fds = "courses.course.@cno -> courses.course\nbroken fd here\n-> also.broken";
    let report = lint_spec(UNIVERSITY_DTD, Some(fds));
    let fd_errors: Vec<_> = report
        .diagnostics()
        .iter()
        .filter(|d| d.code == Code::FdSyntax)
        .collect();
    assert_eq!(fd_errors.len(), 2, "{}", report.render_human());
    assert_eq!(fd_errors[0].span.as_ref().unwrap().at.line, 2);
    assert_eq!(fd_errors[1].span.as_ref().unwrap().at.line, 3);
}

#[test]
fn xnf101_does_not_fire_on_wellformed_fds() {
    assert!(!fires(UNIVERSITY_DTD, Some(UNIVERSITY_FDS), Code::FdSyntax));
}

// ---------------------------------------------------------------- XNF102

#[test]
fn xnf102_fires_on_a_path_outside_paths_d() {
    let report = lint_spec(
        UNIVERSITY_DTD,
        Some("courses.course.ghost -> courses.course"),
    );
    assert_eq!(report.codes(), vec![Code::UnknownFdPath]);
    assert!(report.diagnostics()[0].message.contains("ghost"));
    assert!(report.has_errors());
}

#[test]
fn xnf102_does_not_fire_when_paths_resolve() {
    assert!(!fires(
        UNIVERSITY_DTD,
        Some(UNIVERSITY_FDS),
        Code::UnknownFdPath
    ));
}

// ---------------------------------------------------------------- XNF103

const DISJUNCTIVE_DTD: &str = "\
<!ELEMENT r ((a | b), c)>
<!ELEMENT a EMPTY>
<!ATTLIST a x CDATA #REQUIRED>
<!ELEMENT b EMPTY>
<!ATTLIST b y CDATA #REQUIRED>
<!ELEMENT c EMPTY>
<!ATTLIST c z CDATA #REQUIRED>";

#[test]
fn xnf103_fires_when_the_dtd_makes_fd_paths_exclusive() {
    let report = lint_spec(DISJUNCTIVE_DTD, Some("r.a.@x -> r.b.@y"));
    assert!(
        report.codes().contains(&Code::VacuousFd),
        "{}",
        report.render_human()
    );
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::VacuousFd)
        .unwrap();
    assert!(d.message.contains("r.a.@x") && d.message.contains("r.b.@y"));
    assert!(
        !report.codes().contains(&Code::TrivialFd),
        "vacuous FDs are excluded from the chase-backed rules"
    );
}

#[test]
fn xnf103_fires_on_exclusive_lhs_pairs_too() {
    let report = lint_spec(DISJUNCTIVE_DTD, Some("r.a.@x, r.b.@y -> r.c.@z"));
    assert!(report.codes().contains(&Code::VacuousFd));
}

#[test]
fn xnf103_does_not_fire_when_paths_can_cooccur() {
    assert!(!fires(
        DISJUNCTIVE_DTD,
        Some("r.a.@x -> r.c.@z"),
        Code::VacuousFd
    ));
}

// ---------------------------------------------------------------- XNF104

#[test]
fn xnf104_fires_on_a_repeated_fd() {
    let fds = "courses.course.@cno -> courses.course\ncourses.course.@cno -> courses.course";
    let report = lint_spec(UNIVERSITY_DTD, Some(fds));
    assert_eq!(report.codes(), vec![Code::DuplicateFd]);
    assert_eq!(report.diagnostics()[0].span.as_ref().unwrap().at.line, 2);
}

#[test]
fn xnf104_does_not_fire_on_distinct_fds() {
    assert!(!fires(
        UNIVERSITY_DTD,
        Some(UNIVERSITY_FDS),
        Code::DuplicateFd
    ));
}

// ---------------------------------------------------------------- XNF105

#[test]
fn xnf105_fires_on_a_trivial_fd() {
    // A node determines its ancestors: child → parent holds in every tree.
    let report = lint_spec(
        UNIVERSITY_DTD,
        Some("courses.course.title -> courses.course"),
    );
    assert_eq!(report.codes(), vec![Code::TrivialFd]);
    assert!(!report.has_errors(), "trivial FDs are warnings");
}

#[test]
fn xnf105_fires_on_node_determines_own_attribute() {
    let report = lint_spec(
        UNIVERSITY_DTD,
        Some("courses.course -> courses.course.@cno"),
    );
    assert_eq!(report.codes(), vec![Code::TrivialFd]);
}

#[test]
fn xnf105_does_not_fire_on_genuine_constraints() {
    assert!(!fires(
        UNIVERSITY_DTD,
        Some(UNIVERSITY_FDS),
        Code::TrivialFd
    ));
}

// ---------------------------------------------------------------- XNF106

#[test]
fn xnf106_fires_on_an_fd_implied_by_the_rest_of_sigma() {
    // cno → course makes cno → course.title.S derivable (each course has
    // exactly one title), but not vice versa: only the second is flagged.
    let fds = "courses.course.@cno -> courses.course\n\
               courses.course.@cno -> courses.course.title.S";
    let report = lint_spec(UNIVERSITY_DTD, Some(fds));
    assert_eq!(report.codes(), vec![Code::RedundantFd]);
    assert_eq!(
        report.diagnostics()[0].span.as_ref().unwrap().at.line,
        2,
        "the derivable FD is the one flagged"
    );
}

#[test]
fn xnf106_does_not_fire_on_an_independent_sigma() {
    assert!(!fires(
        UNIVERSITY_DTD,
        Some(UNIVERSITY_FDS),
        Code::RedundantFd
    ));
}

// ---------------------------------------------------------------- XNF107

#[test]
fn xnf107_fires_once_per_equivalent_pair() {
    // cno → course and cno → taken_by: course determines its unique
    // taken_by child and vice versa (child determines parent), so the two
    // FDs derive each other — one XNF107, and no XNF106 double-report.
    let fds = "courses.course.@cno -> courses.course\n\
               courses.course.@cno -> courses.course.taken_by";
    let report = lint_spec(UNIVERSITY_DTD, Some(fds));
    assert_eq!(
        report.codes(),
        vec![Code::EquivalentFds],
        "{}",
        report.render_human()
    );
}

#[test]
fn xnf107_does_not_fire_on_inequivalent_fds() {
    assert!(!fires(
        UNIVERSITY_DTD,
        Some(UNIVERSITY_FDS),
        Code::EquivalentFds
    ));
}

// ---------------------------------------------------------------- XNF108

#[test]
fn xnf108_fires_on_a_determined_lhs_path() {
    // course already determines its own @cno, so @cno is dead weight in
    // {course, course.@cno} → student. (The RHS must not itself be
    // determined by `course` alone — a course has many students — or the
    // whole FD would be flagged trivial instead.)
    let fds = "courses.course, courses.course.@cno -> courses.course.taken_by.student";
    let report = lint_spec(UNIVERSITY_DTD, Some(fds));
    assert_eq!(report.codes(), vec![Code::RedundantLhsPath]);
    assert!(report.diagnostics()[0].message.contains("@cno"));
}

#[test]
fn xnf108_does_not_fire_on_a_minimal_lhs() {
    // FD2's {course, student.@sno} is genuinely minimal: neither member
    // determines the other.
    assert!(!fires(
        UNIVERSITY_DTD,
        Some(UNIVERSITY_FDS),
        Code::RedundantLhsPath
    ));
}

// ----------------------------------------------------------- registry

#[test]
fn registry_floor() {
    let rules = xnf_lint::registry();
    assert!(rules.len() >= 8, "at least 8 coded rules");
    let structural = rules
        .iter()
        .filter(|r| !matches!(r.tier, Tier::Semantic))
        .count();
    let implication = rules.iter().filter(|r| r.implication_backed).count();
    assert!(
        structural >= 4,
        "at least 4 structural rules, got {structural}"
    );
    assert!(
        implication >= 4,
        "at least 4 implication-backed rules, got {implication}"
    );
}

// ------------------------------------------------------------- output

#[test]
fn json_output_is_schema_shaped() {
    let report = lint_spec("<!ELEMENT r (ghost)>", Some("broken ->"));
    let json = report.to_json();
    for needle in [
        "\"version\": 1",
        "\"clean\": false",
        "\"summary\"",
        "\"errors\": 2",
        "\"code\": \"XNF004\"",
        "\"rule\": \"undeclared-element\"",
        "\"code\": \"XNF101\"",
        "\"severity\": \"error\"",
        "\"source\": \"dtd\"",
        "\"source\": \"fds\"",
        "\"diagnostics\"",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
}

#[test]
fn human_output_renders_every_part() {
    let report = lint_spec(
        "<!ELEMENT r (a)>\n<!ELEMENT a EMPTY>\n<!ELEMENT orphan EMPTY>",
        None,
    );
    let text = report.render_human();
    assert!(text.contains("warning[XNF007]"), "{text}");
    assert!(text.contains("--> dtd:3:11"), "{text}");
    assert!(text.contains("<!ELEMENT orphan EMPTY>"), "{text}");
    assert!(text.contains("^^^^^^"), "{text}");
    assert!(
        text.contains("lint: 0 errors, 1 warning, 0 infos"),
        "{text}"
    );
}
