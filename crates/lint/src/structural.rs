//! Structural lint rules: analyses of the DTD alone (codes `XNF0xx`).
//!
//! Two groups live here. The *scanner* rules (duplicate declarations) run
//! over the raw text via [`DeclIndex`] so they can fire even when the
//! strict parser bails at the first duplicate. The *model* rules run over
//! a successfully parsed [`Dtd`]: reachability, generating-ness,
//! satisfiability, 1-unambiguity, recursion, and the Section 7
//! classification. Parse failures are mapped onto coded diagnostics by
//! [`map_parse_error`].

use crate::determinism::check_deterministic;
use crate::report::{Code, Diagnostic, SourceKind};
use crate::source::{DeclIndex, NameSpan};
use xnf_dtd::classify::{classify_content, DtdClass, DtdShapes};
use xnf_dtd::span::line_col_str;
use xnf_dtd::{ContentModel, Dtd, DtdError, Regex};

/// Context handed to every model rule: the parsed DTD plus everything the
/// driver precomputes once.
#[derive(Debug)]
pub struct DtdCtx<'a> {
    /// The raw DTD text.
    pub src: &'a str,
    /// The parsed DTD.
    pub dtd: &'a Dtd,
    /// Declaration spans scanned from `src`.
    pub index: &'a DeclIndex,
    /// `reachable[e.index()]`: element `e` is reachable from the root.
    pub reachable: Vec<bool>,
    /// `generating[e.index()]`: some finite tree is derivable from `e`.
    pub generating: Vec<bool>,
}

impl<'a> DtdCtx<'a> {
    /// Builds the context, running the reachability and generating
    /// fixpoints.
    pub fn new(src: &'a str, dtd: &'a Dtd, index: &'a DeclIndex) -> DtdCtx<'a> {
        DtdCtx {
            src,
            dtd,
            index,
            reachable: reachable_set(dtd),
            generating: generating_set(dtd),
        }
    }

    /// A diagnostic at the `<!ELEMENT …>` name of `element` (span-less if
    /// the scanner did not find the declaration).
    fn at_decl(&self, code: Code, element: &str, message: String) -> Diagnostic {
        let d = Diagnostic::new(code, SourceKind::Dtd, message);
        match self.index.element(element) {
            Some(span) => d.with_span(self.src, span.offset, span.len()),
            None => d,
        }
    }
}

/// Computes which elements are reachable from the root by following
/// content-model references.
pub fn reachable_set(dtd: &Dtd) -> Vec<bool> {
    let mut reachable = vec![false; dtd.num_elements()];
    let mut stack = vec![dtd.root()];
    reachable[dtd.root().index()] = true;
    while let Some(e) = stack.pop() {
        for child in dtd.children(e) {
            if !reachable[child.index()] {
                reachable[child.index()] = true;
                stack.push(child);
            }
        }
    }
    reachable
}

/// Computes which elements are *generating*: `e` is generating iff some
/// finite tree conforms below it, i.e. its content model accepts a word
/// consisting solely of generating element names (text and `EMPTY` content
/// are the base cases). The least fixpoint is the standard "useless
/// production" analysis of context-free grammars, lifted to regex content
/// models.
pub fn generating_set(dtd: &Dtd) -> Vec<bool> {
    let mut generating = vec![false; dtd.num_elements()];
    loop {
        let mut changed = false;
        for e in dtd.elements() {
            if generating[e.index()] {
                continue;
            }
            let ok = match dtd.content(e) {
                ContentModel::Text => true,
                ContentModel::Regex(re) => has_generating_word(re, &|name| {
                    dtd.elem_id(name).is_some_and(|c| generating[c.index()])
                }),
            };
            if ok {
                generating[e.index()] = true;
                changed = true;
            }
        }
        if !changed {
            return generating;
        }
    }
}

/// Whether `re` accepts some word all of whose letters satisfy `allowed`.
/// Exact for this AST: there is no empty-language constructor, so every
/// subexpression contributes at least one word.
fn has_generating_word(re: &Regex, allowed: &impl Fn(&str) -> bool) -> bool {
    match re {
        Regex::Epsilon => true,
        Regex::Elem(name) => allowed(name),
        Regex::Seq(parts) => parts.iter().all(|p| has_generating_word(p, allowed)),
        Regex::Alt(parts) => parts.iter().any(|p| has_generating_word(p, allowed)),
        Regex::Star(_) | Regex::Opt(_) => true,
        Regex::Plus(inner) => has_generating_word(inner, allowed),
    }
}

fn fmt_at(src: &str, span: &NameSpan) -> String {
    format!("dtd:{}", line_col_str(src, span.offset))
}

/// XNF002/XNF003 — duplicate `<!ELEMENT>` / duplicate attribute
/// declarations, found on the raw text so every duplicate is reported
/// even though the strict parser stops at the first.
pub fn duplicate_decls(src: &str, index: &DeclIndex, out: &mut Vec<Diagnostic>) {
    for (i, decl) in index.elements.iter().enumerate() {
        if let Some(first) = index.elements[..i].iter().find(|e| e.name == decl.name) {
            out.push(
                Diagnostic::new(
                    Code::DuplicateElement,
                    SourceKind::Dtd,
                    format!("element `{}` is declared more than once", decl.name),
                )
                .with_span(src, decl.offset, decl.len())
                .note(format!("first declared at {}", fmt_at(src, first))),
            );
        }
    }
    let mut seen: Vec<(&str, &str, &NameSpan)> = Vec::new();
    for block in &index.attlists {
        for attr in &block.attrs {
            let key = (block.element.name.as_str(), attr.name.as_str());
            match seen.iter().find(|(e, a, _)| (*e, *a) == key) {
                Some((_, _, first)) => out.push(
                    Diagnostic::new(
                        Code::DuplicateAttribute,
                        SourceKind::Dtd,
                        format!(
                            "attribute `@{}` is declared more than once for element `{}`",
                            attr.name, block.element.name
                        ),
                    )
                    .with_span(src, attr.offset, attr.len())
                    .note(format!("first declared at {}", fmt_at(src, first))),
                ),
                None => seen.push((key.0, key.1, attr)),
            }
        }
    }
}

/// Maps a [`parse_dtd`](xnf_dtd::parse_dtd) failure onto a coded
/// diagnostic. Duplicate-declaration errors are suppressed when the
/// scanner already reported the same duplicate with a span.
pub fn map_parse_error(src: &str, index: &DeclIndex, err: &DtdError, out: &mut Vec<Diagnostic>) {
    match err {
        DtdError::Syntax {
            offset, message, ..
        } => out.push(
            Diagnostic::new(
                Code::DtdSyntax,
                SourceKind::Dtd,
                format!("DTD syntax error: {message}"),
            )
            .with_span(src, *offset, 1),
        ),
        DtdError::DuplicateElement(name) => {
            let scanner_saw_it = index.elements.iter().filter(|e| e.name == *name).count() > 1;
            if !scanner_saw_it {
                out.push(Diagnostic::new(
                    Code::DuplicateElement,
                    SourceKind::Dtd,
                    err.to_string(),
                ));
            }
        }
        DtdError::DuplicateAttribute { element, attribute } => {
            let scanner_saw_it = index
                .attlists
                .iter()
                .filter(|b| b.element.name == *element)
                .flat_map(|b| b.attrs.iter())
                .filter(|a| a.name == *attribute)
                .count()
                > 1;
            if !scanner_saw_it {
                out.push(Diagnostic::new(
                    Code::DuplicateAttribute,
                    SourceKind::Dtd,
                    err.to_string(),
                ));
            }
        }
        DtdError::UndeclaredElement {
            name,
            referenced_by,
        } => {
            let d = Diagnostic::new(
                Code::UndeclaredElement,
                SourceKind::Dtd,
                format!("element `{name}` is referenced by `{referenced_by}` but never declared"),
            );
            out.push(match index.element(referenced_by) {
                Some(span) => d
                    .with_span(src, span.offset, span.len())
                    .note(format!("`{name}` occurs in this element's content model")),
                None => d,
            });
        }
        DtdError::RootReferenced { referenced_by } => {
            let d = Diagnostic::new(
                Code::RootReferenced,
                SourceKind::Dtd,
                format!("the root element occurs in the content model of `{referenced_by}`"),
            )
            .note("Definition 1 requires the root not to occur in any P(\u{3c4})");
            out.push(match index.element(referenced_by) {
                Some(span) => d.with_span(src, span.offset, span.len()),
                None => d,
            });
        }
        DtdError::AttlistForUndeclared(name) => {
            let d = Diagnostic::new(
                Code::AttlistForUndeclared,
                SourceKind::Dtd,
                format!("ATTLIST for undeclared element `{name}`"),
            );
            let span = index
                .attlists
                .iter()
                .find(|b| b.element.name == *name)
                .map(|b| &b.element);
            out.push(match span {
                Some(span) => d.with_span(src, span.offset, span.len()),
                None => d,
            });
        }
        // parse_dtd never returns these (the ungoverned entry point cannot
        // exhaust); keep the mapping total so a future parser change
        // cannot drop an error on the floor.
        DtdError::RecursiveDtd { .. } | DtdError::NoSuchPath(_) | DtdError::Exhausted(_) => out
            .push(Diagnostic::new(
                Code::DtdSyntax,
                SourceKind::Dtd,
                err.to_string(),
            )),
    }
}

/// XNF007 — elements unreachable from the root.
pub fn rule_unreachable(ctx: &DtdCtx<'_>, out: &mut Vec<Diagnostic>) {
    for e in ctx.dtd.elements() {
        if !ctx.reachable[e.index()] {
            let name = ctx.dtd.name(e);
            out.push(
                ctx.at_decl(
                    Code::UnreachableElement,
                    name,
                    format!(
                        "element `{name}` is unreachable from the root `{}`",
                        ctx.dtd.root_name()
                    ),
                )
                .note("no conforming document can contain it; the declaration is dead"),
            );
        }
    }
}

/// XNF008 — non-generating elements: no finite conforming subtree exists
/// below them, so no (finite) document ever instantiates them.
pub fn rule_non_generating(ctx: &DtdCtx<'_>, out: &mut Vec<Diagnostic>) {
    for e in ctx.dtd.elements() {
        if e == ctx.dtd.root() || ctx.generating[e.index()] {
            continue;
        }
        let name = ctx.dtd.name(e);
        out.push(
            ctx.at_decl(
                Code::NonGeneratingElement,
                name,
                format!("element `{name}` can never be instantiated in a finite document"),
            )
            .note("every word of its content model requires another non-generating element"),
        );
    }
}

/// XNF009 — the DTD is unsatisfiable: the root itself is non-generating,
/// so *no* finite document conforms.
pub fn rule_unsatisfiable(ctx: &DtdCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.generating[ctx.dtd.root().index()] {
        let root = ctx.dtd.root_name();
        out.push(
            ctx.at_decl(
                Code::UnsatisfiableDtd,
                root,
                format!("no finite document conforms to this DTD: the root `{root}` cannot derive a finite tree"),
            )
            .note("every FD over it holds vacuously; normalization is meaningless"),
        );
    }
}

/// XNF010 — content models that are not 1-unambiguous (deterministic), as
/// the XML specification requires.
pub fn rule_determinism(ctx: &DtdCtx<'_>, out: &mut Vec<Diagnostic>) {
    for e in ctx.dtd.elements() {
        let ContentModel::Regex(re) = ctx.dtd.content(e) else {
            continue;
        };
        if let Err(ambiguity) = check_deterministic(re) {
            let name = ctx.dtd.name(e);
            out.push(
                ctx.at_decl(
                    Code::NondeterministicContent,
                    name,
                    format!(
                        "content model of `{name}` is not 1-unambiguous: \
                         competing matches for `{}`",
                        ambiguity.symbol
                    ),
                )
                .note(format!("content model: {re}"))
                .note(
                    "the XML specification requires deterministic content models \
                     (Appendix E, \"Deterministic Content Models\")",
                ),
            );
        }
    }
}

/// XNF011 — recursive DTDs: `paths(D)` is infinite, the Section 4 path
/// machinery (and therefore the semantic lint tier and normalization)
/// does not apply.
pub fn rule_recursive(ctx: &DtdCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.dtd.is_recursive() {
        return;
    }
    let witness = ctx.dtd.find_cycle_witness().map_or_else(
        || ctx.dtd.root_name().to_string(),
        |e| ctx.dtd.name(e).to_string(),
    );
    out.push(
        ctx.at_decl(
            Code::RecursiveDtd,
            &witness,
            format!("DTD is recursive: `{witness}` participates in a reference cycle"),
        )
        .note("paths(D) is infinite; FD analysis (XNF1xx) is skipped and normalization is unavailable"),
    );
}

/// XNF012 — the DTD is neither simple nor disjunctive, so FD implication
/// falls back to the general chase (coNP-complete by Theorem 5).
pub fn rule_general_class(ctx: &DtdCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !matches!(DtdShapes::analyze(ctx.dtd).class(), DtdClass::General) {
        return;
    }
    // Point at the first element whose content model resists the
    // simple-disjunction decomposition.
    let culprit = ctx
        .dtd
        .elements()
        .find(|&e| classify_content(ctx.dtd.content(e)).is_none());
    let d = match culprit {
        Some(e) => {
            let name = ctx.dtd.name(e);
            ctx.at_decl(
                Code::GeneralClass,
                name,
                format!(
                    "DTD is neither simple nor disjunctive: the content model of \
                     `{name}` has no simple-disjunction decomposition"
                ),
            )
        }
        None => Diagnostic::new(
            Code::GeneralClass,
            SourceKind::Dtd,
            "DTD is neither simple nor disjunctive".to_string(),
        ),
    };
    out.push(d.note(
        "FD implication over general DTDs is coNP-complete (Theorem 5); \
         the simple/disjunctive fragments are polynomial (Theorems 3 and 4)",
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use xnf_dtd::parse_dtd;

    #[test]
    fn generating_fixpoint_handles_cycles_and_escape_hatches() {
        // a is trapped in a cycle; b escapes via the optional branch.
        let dtd = parse_dtd("<!ELEMENT r (a?, b)> <!ELEMENT a (a)> <!ELEMENT b (a*)>").unwrap();
        let generating = generating_set(&dtd);
        let idx = |n: &str| dtd.elem_id(n).unwrap().index();
        assert!(generating[idx("r")]);
        assert!(!generating[idx("a")]);
        assert!(generating[idx("b")]);
    }

    #[test]
    fn reachable_set_finds_orphans() {
        let dtd = parse_dtd("<!ELEMENT r (a)> <!ELEMENT a EMPTY> <!ELEMENT orphan EMPTY>").unwrap();
        let reachable = reachable_set(&dtd);
        let idx = |n: &str| dtd.elem_id(n).unwrap().index();
        assert!(reachable[idx("r")]);
        assert!(reachable[idx("a")]);
        assert!(!reachable[idx("orphan")]);
    }
}
