//! 1-unambiguity (determinism) of content models.
//!
//! The XML specification requires content models to be *deterministic*
//! ("1-unambiguous" in Brüggemann-Klein & Wood's terminology): while
//! matching a word left to right, the next input symbol must decide which
//! occurrence of that symbol in the expression it matches, without
//! lookahead. `(a, b) | (a, c)` is the classic violation — on seeing `a`
//! the matcher cannot know which branch it is in.
//!
//! The primary decision procedure ([`check_deterministic`]) is the classic
//! Glushkov construction: number the leaf occurrences (positions), compute
//! `first`/`last`/`follow` sets, and check that no `first` or `follow` set
//! contains two distinct positions of the same symbol — exactly the
//! condition for the Glushkov NFA to be deterministic.
//!
//! As a cross-check, [`deterministic_via_derivatives`] decides the same
//! property with the Brzozowski derivative engine of
//! `xnf_dtd::derivative`: mark each position uniquely, explore the
//! derivative automaton of the marked expression, and look for a state
//! with two live successors on same-symbol positions. The `lint` test
//! suite runs the two against each other.

use std::collections::{BTreeSet, HashMap, HashSet};
use xnf_dtd::derivative::derivative;
use xnf_dtd::Regex;

/// Evidence that a content model is not 1-unambiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ambiguity {
    /// The element name with competing occurrences.
    pub symbol: String,
}

/// Decides whether `re` is 1-unambiguous (deterministic). On failure,
/// returns the symbol whose occurrences compete.
pub fn check_deterministic(re: &Regex) -> Result<(), Ambiguity> {
    let mut g = Glushkov {
        syms: Vec::new(),
        follow: Vec::new(),
    };
    let info = g.walk(re);
    g.check_set(&info.first)?;
    for follow in &g.follow {
        g.check_set(follow)?;
    }
    Ok(())
}

struct Glushkov<'a> {
    /// Position → its element name, in leaf order.
    syms: Vec<&'a str>,
    /// Position → the positions that may follow it.
    follow: Vec<BTreeSet<usize>>,
}

struct Info {
    nullable: bool,
    first: BTreeSet<usize>,
    last: BTreeSet<usize>,
}

impl<'a> Glushkov<'a> {
    fn walk(&mut self, re: &'a Regex) -> Info {
        match re {
            Regex::Epsilon => Info {
                nullable: true,
                first: BTreeSet::new(),
                last: BTreeSet::new(),
            },
            Regex::Elem(name) => {
                let p = self.syms.len();
                self.syms.push(name);
                self.follow.push(BTreeSet::new());
                Info {
                    nullable: false,
                    first: BTreeSet::from([p]),
                    last: BTreeSet::from([p]),
                }
            }
            Regex::Seq(parts) => {
                let mut acc = Info {
                    nullable: true,
                    first: BTreeSet::new(),
                    last: BTreeSet::new(),
                };
                for part in parts {
                    let info = self.walk(part);
                    for &p in &acc.last {
                        self.follow[p].extend(info.first.iter().copied());
                    }
                    if acc.nullable {
                        acc.first.extend(info.first.iter().copied());
                    }
                    if info.nullable {
                        acc.last.extend(info.last.iter().copied());
                    } else {
                        acc.last = info.last;
                    }
                    acc.nullable &= info.nullable;
                }
                acc
            }
            Regex::Alt(parts) => {
                let mut acc = Info {
                    nullable: false,
                    first: BTreeSet::new(),
                    last: BTreeSet::new(),
                };
                for part in parts {
                    let info = self.walk(part);
                    acc.nullable |= info.nullable;
                    acc.first.extend(info.first);
                    acc.last.extend(info.last);
                }
                acc
            }
            Regex::Star(inner) | Regex::Plus(inner) => {
                let info = self.walk(inner);
                for &p in &info.last {
                    self.follow[p].extend(info.first.iter().copied());
                }
                Info {
                    nullable: matches!(re, Regex::Star(_)) || info.nullable,
                    ..info
                }
            }
            Regex::Opt(inner) => {
                let info = self.walk(inner);
                Info {
                    nullable: true,
                    ..info
                }
            }
        }
    }

    /// Errors if `set` holds two distinct positions of one symbol.
    fn check_set(&self, set: &BTreeSet<usize>) -> Result<(), Ambiguity> {
        let mut seen: HashSet<&str> = HashSet::new();
        for &p in set {
            if !seen.insert(self.syms[p]) {
                return Err(Ambiguity {
                    symbol: self.syms[p].to_string(),
                });
            }
        }
        Ok(())
    }
}

/// The separator used to mark positions; cannot occur in element names
/// (the DTD parser only accepts alphanumerics and `_-.:`)
const MARK: char = '\u{1}';

/// Decides 1-unambiguity by exploring the Brzozowski derivative automaton
/// of the position-marked expression. Returns `None` if the state budget
/// is exhausted (never observed on real content models; the bound guards
/// pathological inputs).
pub fn deterministic_via_derivatives(re: &Regex) -> Option<bool> {
    const STATE_BUDGET: usize = 4096;
    let mut next = 0usize;
    let marked = mark(re, &mut next);
    let letters: Vec<String> = marked.alphabet().iter().map(|s| s.to_string()).collect();

    let mut seen: HashSet<String> = HashSet::new();
    let mut queue: Vec<Regex> = vec![aci_normal(&marked)];
    seen.insert(queue[0].to_string());
    while let Some(state) = queue.pop() {
        // Group the live successors of this state by base symbol.
        let mut live: HashMap<&str, usize> = HashMap::new();
        for letter in &letters {
            let Some(d) = derivative(&state, letter) else {
                continue;
            };
            let base = letter.split(MARK).next().unwrap_or(letter);
            *live.entry(base).or_insert(0) += 1;
            let d = aci_normal(&d.simplified());
            let key = d.to_string();
            if seen.insert(key) {
                if seen.len() > STATE_BUDGET {
                    return None;
                }
                queue.push(d);
            }
        }
        if live.values().any(|&n| n > 1) {
            return Some(false);
        }
    }
    Some(true)
}

/// Rebuilds `re` with each leaf occurrence made unique (`a` → `a␁k`).
fn mark(re: &Regex, next: &mut usize) -> Regex {
    match re {
        Regex::Epsilon => Regex::Epsilon,
        Regex::Elem(name) => {
            let k = *next;
            *next += 1;
            Regex::elem(format!("{name}{MARK}{k}"))
        }
        Regex::Seq(parts) => Regex::Seq(parts.iter().map(|p| mark(p, next)).collect()),
        Regex::Alt(parts) => Regex::Alt(parts.iter().map(|p| mark(p, next)).collect()),
        Regex::Star(inner) => Regex::Star(Box::new(mark(inner, next))),
        Regex::Opt(inner) => Regex::Opt(Box::new(mark(inner, next))),
        Regex::Plus(inner) => Regex::Plus(Box::new(mark(inner, next))),
    }
}

/// Normalizes alternations (sorted, deduplicated) so that derivative
/// states that differ only up to associativity/commutativity/idempotence
/// of `|` compare equal — the classic trick that keeps the reachable
/// derivative set finite and small.
fn aci_normal(re: &Regex) -> Regex {
    match re {
        Regex::Epsilon | Regex::Elem(_) => re.clone(),
        Regex::Seq(parts) => Regex::Seq(parts.iter().map(aci_normal).collect()),
        Regex::Alt(parts) => {
            let mut v: Vec<Regex> = parts.iter().map(aci_normal).collect();
            v.sort_by_key(|a| a.to_string());
            v.dedup();
            if v.len() == 1 {
                v.pop().expect("len checked")
            } else {
                Regex::Alt(v)
            }
        }
        Regex::Star(inner) => Regex::Star(Box::new(aci_normal(inner))),
        Regex::Opt(inner) => Regex::Opt(Box::new(aci_normal(inner))),
        Regex::Plus(inner) => Regex::Plus(Box::new(aci_normal(inner))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xnf_dtd::parse::parse_content_model;
    use xnf_dtd::ContentModel;

    fn re(src: &str) -> Regex {
        match parse_content_model(src).expect("content model parses") {
            ContentModel::Regex(r) => r,
            ContentModel::Text => panic!("not a regex content model"),
        }
    }

    #[test]
    fn deterministic_models_pass() {
        for src in [
            "(a)",
            "(a, b)",
            "(a | b)",
            "(a*, b)",
            "(a?, b)",
            "(a, b)+",
            "((a | b)*, c)",
            "(title, taken_by)",
            "(author+, title, booktitle)",
            "(Documentation*, InitiatingRole, RespondingRole)",
            "((x | y | z)*)",
        ] {
            assert!(check_deterministic(&re(src)).is_ok(), "{src}");
        }
    }

    #[test]
    fn ambiguous_models_fail_with_the_right_symbol() {
        for (src, sym) in [
            ("((a, b) | (a, c))", "a"),
            ("(a?, a)", "a"),
            ("(a*, a)", "a"),
            ("((a | b)*, a)", "a"),
            ("((a, b)*, a)", "a"),
            ("((b?, a)+, a)", "a"),
        ] {
            let err = check_deterministic(&re(src)).expect_err(src);
            assert_eq!(err.symbol, sym, "{src}");
        }
    }

    #[test]
    fn derivative_oracle_agrees_with_glushkov() {
        for src in [
            "(a)",
            "(a, b)",
            "(a | b)",
            "(a*, b)",
            "(a?, b)",
            "(a, b)+",
            "((a | b)*, c)",
            "((a, b) | (a, c))",
            "(a?, a)",
            "(a*, a)",
            "((a | b)*, a)",
            "((a, b)*, a)",
            "((b?, a)+, a)",
            "((a, (b | c))* , d)",
            "(x | (y, x))",
            "((a | b), (a | c))",
        ] {
            let r = re(src);
            let glushkov = check_deterministic(&r).is_ok();
            let brzozowski =
                deterministic_via_derivatives(&r).expect("state budget suffices for small models");
            assert_eq!(glushkov, brzozowski, "{src}");
        }
    }

    #[test]
    fn epsilon_is_deterministic() {
        assert!(check_deterministic(&Regex::Epsilon).is_ok());
        assert_eq!(deterministic_via_derivatives(&Regex::Epsilon), Some(true));
    }
}
