//! Predictive lint rules (codes `XNF2xx`): what the Figure 4
//! normalization *would do* to the spec, computed statically.
//!
//! The tier is opt-in ([`crate::lint_spec_predictive`]): it drives
//! [`xnf_core::analyze`] — the static decomposition planner — over
//! `(D, Σ)` and then applies pure rules to the resulting [`Analysis`].
//! Unlike the semantic tier, nothing here says the spec is *wrong*; the
//! diagnostics forecast the cost and shape of normalizing it:
//!
//! * `XNF200` — an FD is anomalous: the spec is not in XNF and the
//!   planner names the offending path and the move that repairs it.
//! * `XNF201` — the predicted plan creates many fresh element types;
//!   the normalized schema will diverge substantially from the input.
//! * `XNF202` — a large cluster of interacting FDs: rewrites inside it
//!   cascade, so the decomposition order matters.
//! * `XNF203` — a dead attribute: no FD constrains it, it rides along
//!   unchanged through every step.
//! * `XNF204` — normalization needs many fixpoint iterations; the spec
//!   is far from normal form.
//!
//! The split between the governed driver ([`lint_predictive`]) and the
//! pure rule pass ([`from_analysis`]) keeps the rules trivially testable
//! against hand-built analyses.

use crate::report::{Code, Diagnostic, SourceKind};
use crate::structural::DtdCtx;
use xnf_core::analyze::{analyze, Analysis, AnalyzeOptions};
use xnf_core::normalize::Step;
use xnf_core::{CoreError, XmlFdSet};
use xnf_govern::{Budget, Exhausted};

/// `XNF201` fires when the predicted plan introduces at least this many
/// fresh element types.
pub const SCHEMA_BLOW_UP_MIN_ELEMENTS: usize = 4;

/// `XNF202` fires for interaction clusters of at least this many FDs.
pub const CLUSTER_MIN_FDS: usize = 3;

/// `XNF204` fires when the predicted run needs at least this many
/// fixpoint iterations.
pub const ITERATION_BOUND: u64 = 5;

/// Runs the predictive tier: [`analyze`] under `budget`, then the pure
/// rules. Skips silently when Σ does not parse or resolve (the semantic
/// tier already reported `XNF101`/`XNF102`) — predictive diagnostics are
/// only meaningful for specs the normalizer would accept. A budget
/// exhaustion aborts the whole lint (no partial report escapes).
pub fn lint_predictive(
    ctx: &DtdCtx<'_>,
    fds_src: &str,
    budget: &Budget,
    out: &mut Vec<Diagnostic>,
) -> Result<(), Exhausted> {
    let Ok(sigma) = XmlFdSet::parse(fds_src) else {
        return Ok(());
    };
    let options = AnalyzeOptions {
        budget: budget.clone(),
        ..AnalyzeOptions::default()
    };
    let analysis = match analyze(ctx.dtd, &sigma, &options) {
        Ok(a) => a,
        Err(CoreError::Exhausted(e)) => return Err(e),
        // Unresolvable paths, degenerate FDs, recursion: already flagged
        // by the structural/semantic tiers under their own codes.
        Err(_) => return Ok(()),
    };
    if let Some(e) = analysis.exhausted {
        return Err(e);
    }
    out.extend(from_analysis(&analysis));
    Ok(())
}

/// The pure rule pass: maps a completed [`Analysis`] to `XNF2xx`
/// diagnostics. Deterministic in the analysis alone — no chase, no
/// budget — so thresholds and messages can be unit-tested directly.
pub fn from_analysis(analysis: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // XNF200: one diagnostic per anomaly, with provenance.
    for anomaly in &analysis.anomalies {
        let mut d = Diagnostic::new(
            Code::AnomalousFd,
            SourceKind::Fds,
            format!(
                "FD `{}` is anomalous: the spec is not in XNF at `{}`",
                anomaly.fd, anomaly.path
            ),
        )
        .note(format!("predicted repair: {}", anomaly.predicted_move));
        if let Some(step) = anomaly.resolved_by_step {
            d = d.note(format!(
                "resolved by step {} of the predicted plan",
                step + 1
            ));
        }
        out.push(d);
    }

    // XNF201: count the fresh element types the plan creates.
    let fresh: usize = analysis
        .plan
        .iter()
        .map(|step| match step {
            Step::CreateElement { tau_children, .. } => 1 + tau_children.len(),
            _ => 0,
        })
        .sum();
    if fresh >= SCHEMA_BLOW_UP_MIN_ELEMENTS {
        out.push(
            Diagnostic::new(
                Code::SchemaBlowUp,
                SourceKind::Dtd,
                format!(
                    "the predicted decomposition creates {fresh} fresh element types \
                     (threshold {SCHEMA_BLOW_UP_MIN_ELEMENTS})"
                ),
            )
            .note("the normalized schema will look very different from the input"),
        );
    }

    // XNF202: large interaction clusters.
    for cluster in &analysis.graph.clusters {
        if cluster.len() >= CLUSTER_MIN_FDS {
            let names: Vec<&str> = cluster
                .iter()
                .filter_map(|&i| analysis.graph.nodes.get(i).map(String::as_str))
                .collect();
            out.push(
                Diagnostic::new(
                    Code::FdInteractionCluster,
                    SourceKind::Fds,
                    format!("{} FDs form one interaction cluster", cluster.len()),
                )
                .note(format!("cluster members: {}", names.join("; "))),
            );
        }
    }

    // XNF203: attributes no FD constrains.
    for attr in &analysis.dead_attributes {
        out.push(
            Diagnostic::new(
                Code::DeadAttribute,
                SourceKind::Dtd,
                format!("attribute `{attr}` is mentioned by no FD"),
            )
            .note("it rides along unchanged through every decomposition step"),
        );
    }

    // XNF204: the predicted fixpoint is long.
    if analysis.cost.iterations >= ITERATION_BOUND {
        out.push(
            Diagnostic::new(
                Code::FixpointIterationBound,
                SourceKind::Fds,
                format!(
                    "normalization needs {} fixpoint iterations ({} rewrite steps) \
                     to reach XNF",
                    analysis.cost.iterations,
                    analysis.plan.len()
                ),
            )
            .note(format!(
                "predicted governed cost: {} fuel ticks{}",
                analysis.cost.predicted_fuel,
                if analysis.cost.fuel_exact {
                    " (exact)"
                } else {
                    " (estimate)"
                }
            )),
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xnf_dtd::parse_dtd;

    fn run(dtd_src: &str, fds_src: &str) -> Vec<Diagnostic> {
        let dtd = parse_dtd(dtd_src).unwrap();
        let sigma = XmlFdSet::parse(fds_src).unwrap();
        let analysis = analyze(&dtd, &sigma, &AnalyzeOptions::default()).unwrap();
        from_analysis(&analysis)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    /// The DBLP spec of Example 1.2: one anomalous FD, two dead
    /// attributes — `XNF200` and `XNF203` fire; the plan is one step, so
    /// `XNF201`/`XNF204` must stay silent.
    #[test]
    fn dblp_fires_anomaly_and_dead_attributes_only() {
        let diags = run(
            "<!ELEMENT db (conf*)>
             <!ELEMENT conf (title, issue+)>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT issue (inproceedings+)>
             <!ELEMENT inproceedings (author+, title, booktitle)>
             <!ATTLIST inproceedings
                 key CDATA #REQUIRED
                 pages CDATA #REQUIRED
                 year CDATA #REQUIRED>
             <!ELEMENT author (#PCDATA)>
             <!ELEMENT booktitle (#PCDATA)>",
            xnf_core::fd::DBLP_FDS,
        );
        let cs = codes(&diags);
        assert!(cs.contains(&Code::AnomalousFd), "{cs:?}");
        assert!(cs.contains(&Code::DeadAttribute), "{cs:?}");
        assert!(!cs.contains(&Code::SchemaBlowUp), "{cs:?}");
        assert!(!cs.contains(&Code::FixpointIterationBound), "{cs:?}");
        let anomaly = diags
            .iter()
            .find(|d| d.code == Code::AnomalousFd && d.message.contains("@year"))
            .expect("provenance names the @year path");
        assert!(
            anomaly.notes.iter().any(|n| n.contains("move-attribute")),
            "provenance names the move: {:?}",
            anomaly.notes
        );
    }

    /// A spec already in XNF with every attribute constrained produces
    /// no predictive diagnostics at all (the non-firing side of every
    /// rule).
    #[test]
    fn xnf_spec_is_predictively_clean() {
        let diags = run(
            "<!ELEMENT r (a*)> <!ELEMENT a EMPTY> <!ATTLIST a k CDATA #REQUIRED>",
            "r.a.@k -> r.a",
        );
        assert!(diags.is_empty(), "{:?}", codes(&diags));
    }

    /// The `e22_family` stress spec at k = 6: six anomalous FDs and a
    /// long fixpoint (≥ 5 iterations ⇒ `XNF204`). Its repairs are all
    /// attribute moves, so `XNF201` must stay silent.
    #[test]
    fn e22_family_fires_iteration_bound() {
        let (dtd, sigma) = xnf_core::analyze::e22_family(6);
        let analysis = analyze(&dtd, &sigma, &AnalyzeOptions::default()).unwrap();
        let diags = from_analysis(&analysis);
        let cs = codes(&diags);
        assert_eq!(
            cs.iter().filter(|&&c| c == Code::AnomalousFd).count(),
            6,
            "{cs:?}"
        );
        assert!(cs.contains(&Code::FixpointIterationBound), "{cs:?}");
        assert!(!cs.contains(&Code::SchemaBlowUp), "{cs:?}");
    }

    /// Two global attribute-to-attribute FDs each force a create-element
    /// repair (the paper's "new element type" move): 2 × (τ + one τᵢ)
    /// = 4 fresh element types ⇒ `XNF201` fires and counts them.
    #[test]
    fn create_element_repairs_fire_schema_blow_up() {
        let diags = run(
            "<!ELEMENT r (a*, b*)>
             <!ELEMENT a EMPTY> <!ATTLIST a k CDATA #REQUIRED v CDATA #REQUIRED>
             <!ELEMENT b EMPTY> <!ATTLIST b k CDATA #REQUIRED v CDATA #REQUIRED>",
            "r.a.@k -> r.a.@v\nr.b.@k -> r.b.@v",
        );
        let blow_up = diags
            .iter()
            .find(|d| d.code == Code::SchemaBlowUp)
            .expect("XNF201 fires");
        assert!(
            blow_up.message.contains("4 fresh element types"),
            "{}",
            blow_up.message
        );
    }

    /// Three FDs chained through shared paths form one cluster of three:
    /// `XNF202` fires and its note names all three members.
    #[test]
    fn chained_fds_fire_interaction_cluster() {
        let dtd = parse_dtd(
            "<!ELEMENT r (a*)>
             <!ELEMENT a (b)>
             <!ATTLIST a x CDATA #REQUIRED>
             <!ELEMENT b (c)>
             <!ATTLIST b y CDATA #REQUIRED>
             <!ELEMENT c EMPTY>
             <!ATTLIST c z CDATA #REQUIRED>",
        )
        .unwrap();
        let sigma = XmlFdSet::parse(
            "r.a.@x -> r.a.b.@y
             r.a.b.@y -> r.a.b.c.@z
             r.a.b.c.@z -> r.a.@x",
        )
        .unwrap();
        let analysis = analyze(&dtd, &sigma, &AnalyzeOptions::default()).unwrap();
        let diags = from_analysis(&analysis);
        let cluster = diags
            .iter()
            .find(|d| d.code == Code::FdInteractionCluster)
            .expect("cluster rule fires");
        assert!(cluster.message.contains("3 FDs"), "{}", cluster.message);
        assert!(
            cluster.notes.iter().any(|n| n.contains("@z")),
            "{:?}",
            cluster.notes
        );
    }

    /// Two independent FDs do not form a reportable cluster (the
    /// non-firing side of `XNF202`).
    #[test]
    fn independent_fds_do_not_cluster() {
        let diags = run(
            "<!ELEMENT r (a*, b*)>
             <!ELEMENT a EMPTY> <!ATTLIST a x CDATA #REQUIRED>
             <!ELEMENT b EMPTY> <!ATTLIST b y CDATA #REQUIRED>",
            "r.a.@x -> r.a\nr.b.@y -> r.b",
        );
        assert!(
            !codes(&diags).contains(&Code::FdInteractionCluster),
            "{:?}",
            codes(&diags)
        );
    }
}
