//! A minimal hand-rolled JSON writer.
//!
//! The build environment vendors no serde, and the lint report is the only
//! JSON this workspace emits, so a small append-only writer with correct
//! string escaping is all that is needed. Output is pretty-printed with
//! two-space indentation and stable key order (insertion order).

/// Escapes `s` as the body of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// An in-progress JSON object.
#[derive(Debug)]
pub struct Object {
    buf: String,
    indent: usize,
    empty: bool,
}

impl Object {
    /// Starts a fresh top-level object.
    pub fn new() -> Object {
        Object {
            buf: String::from("{"),
            indent: 1,
            empty: true,
        }
    }

    fn nested(indent: usize) -> Object {
        Object {
            buf: String::from("{"),
            indent,
            empty: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        self.buf.push('\n');
        self.buf.push_str(&"  ".repeat(self.indent));
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\": ");
    }

    /// Adds a string member.
    pub fn string(&mut self, key: &str, value: &str) {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
    }

    /// Adds an unsigned-number member.
    pub fn number(&mut self, key: &str, value: u64) {
        self.key(key);
        self.buf.push_str(&value.to_string());
    }

    /// Adds a boolean member.
    pub fn bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Adds a `null` member.
    pub fn null(&mut self, key: &str) {
        self.key(key);
        self.buf.push_str("null");
    }

    /// Adds a nested object member, built by `f`.
    pub fn object(&mut self, key: &str, f: impl FnOnce(&mut Object)) {
        self.key(key);
        let mut inner = Object::nested(self.indent + 1);
        f(&mut inner);
        self.buf.push_str(&inner.close());
    }

    /// Adds an array member, built by `f`.
    pub fn array(&mut self, key: &str, f: impl FnOnce(&mut Array)) {
        self.key(key);
        let mut inner = Array::nested(self.indent + 1);
        f(&mut inner);
        self.buf.push_str(&inner.close());
    }

    /// Adds an array-of-strings member.
    pub fn string_array<'a>(&mut self, key: &str, values: impl Iterator<Item = &'a str>) {
        self.array(key, |a| {
            for v in values {
                a.string(v);
            }
        });
    }

    fn close(self) -> String {
        let mut buf = self.buf;
        if !self.empty {
            buf.push('\n');
            buf.push_str(&"  ".repeat(self.indent - 1));
        }
        buf.push('}');
        buf
    }

    /// Finishes the top-level object, returning the JSON text.
    pub fn finish(self) -> String {
        self.close()
    }
}

impl Default for Object {
    fn default() -> Self {
        Object::new()
    }
}

/// An in-progress JSON array.
#[derive(Debug)]
pub struct Array {
    buf: String,
    indent: usize,
    empty: bool,
}

impl Array {
    fn nested(indent: usize) -> Array {
        Array {
            buf: String::from("["),
            indent,
            empty: true,
        }
    }

    fn slot(&mut self) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        self.buf.push('\n');
        self.buf.push_str(&"  ".repeat(self.indent));
    }

    /// Appends a string element.
    pub fn string(&mut self, value: &str) {
        self.slot();
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
    }

    /// Appends an object element, built by `f`.
    pub fn object(&mut self, f: impl FnOnce(&mut Object)) {
        self.slot();
        let mut inner = Object::nested(self.indent + 1);
        f(&mut inner);
        self.buf.push_str(&inner.close());
    }

    fn close(self) -> String {
        let mut buf = self.buf;
        if !self.empty {
            buf.push('\n');
            buf.push_str(&"  ".repeat(self.indent - 1));
        }
        buf.push(']');
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn nested_structure_renders() {
        let mut o = Object::new();
        o.number("version", 1);
        o.object("inner", |i| {
            i.bool("ok", true);
            i.null("missing");
        });
        o.array("items", |a| {
            a.string("x");
            a.object(|i| i.string("k", "v"));
        });
        let s = o.finish();
        assert!(s.contains("\"version\": 1"), "{s}");
        assert!(s.contains("\"ok\": true"), "{s}");
        assert!(s.contains("\"missing\": null"), "{s}");
        assert!(s.contains("\"k\": \"v\""), "{s}");
        assert!(s.starts_with('{') && s.ends_with('}'), "{s}");
    }

    #[test]
    fn empty_object_and_array() {
        let mut o = Object::new();
        o.array("empty", |_| {});
        let s = o.finish();
        assert!(s.contains("\"empty\": []"), "{s}");
    }
}
