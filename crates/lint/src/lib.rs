//! # `xnf-lint` — static analysis for DTD + XML FD specs
//!
//! The engine crates (`xnf-dtd`, `xnf-core`) assume well-formed inputs:
//! a parseable DTD, FD paths inside `paths(D)`, a non-degenerate Σ. This
//! crate is the front door that checks those assumptions *statically*,
//! before the chase or the normalizer ever runs, and reports what it
//! finds as coded, spanned diagnostics — the same shape relational design
//! tools use to lint schemas before normalizing.
//!
//! The analyses run in two tiers (see [`registry`] for the full table):
//!
//! * **Structural** (`XNF0xx`) — the DTD alone: syntax and declaration
//!   hygiene, elements unreachable from the root, non-generating
//!   ("useless") elements, unsatisfiable DTDs, content models that are
//!   not 1-unambiguous, recursion, and the Section 7 complexity
//!   classification.
//! * **Semantic** (`XNF1xx`) — the FD set Σ against the DTD, with the
//!   chase implication engine repurposed as a static analyzer: vacuous
//!   FDs (mutually exclusive paths), trivial FDs, FDs redundant given the
//!   rest of Σ, pairwise-equivalent FDs, and redundant LHS paths.
//! * **Predictive** (`XNF2xx`, opt-in via [`lint_spec_predictive`]) —
//!   what normalization *would do*: anomalous FDs with provenance,
//!   predicted schema blow-up, FD interaction clusters, dead attributes,
//!   and the fixpoint-iteration bound, all driven by the static planner
//!   [`xnf_core::analyze`] without ever running `normalize`.
//! * **Shred** (`XNF3xx`, opt-in via [`lint_spec_shred`]) — what the
//!   XML→relational shredding backend would make of the spec: recursive
//!   DTDs and mixed content (which shredding must refuse), leaf-name
//!   collisions that mangle table names, and tables too wide for the
//!   exhaustive derived-key search, driven by [`xnf_core::compile_schema`]
//!   without emitting any DDL or rows.
//!
//! ## Example
//!
//! ```
//! use xnf_lint::{lint_spec, Code};
//!
//! let report = lint_spec(
//!     "<!ELEMENT r (a)> <!ELEMENT a EMPTY> <!ELEMENT dead EMPTY>",
//!     Some("r.a -> r"),
//! );
//! assert_eq!(report.codes(), vec![Code::UnreachableElement, Code::TrivialFd]);
//! assert!(!report.has_errors(), "warnings do not gate preflight");
//! println!("{}", report.render_human());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod determinism;
mod json;
pub mod predictive;
mod report;
pub mod source;
mod structural;

mod semantic;
mod shred;

pub use report::{Code, Diagnostic, LintReport, Severity, SourceKind, Span};
pub use source::DeclIndex;
pub use structural::{generating_set, reachable_set, DtdCtx};

use xnf_dtd::parse_dtd;
use xnf_govern::{Budget, Exhausted};

/// The shared ungoverned budget backing the infallible [`lint_spec`].
const UNLIMITED: &Budget = &Budget::unlimited();

/// Which tier a rule belongs to (how it is driven).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Mapped from a parser rejection (the strict parser is the analysis).
    Parse,
    /// Runs over the raw declaration text, before parsing.
    Scanner,
    /// Runs over the parsed DTD.
    Structural,
    /// Runs over (DTD, Σ); the implication-backed rules live here.
    Semantic,
    /// Opt-in: runs the static decomposition planner over (DTD, Σ) and
    /// reports what normalization would do (`XNF2xx`).
    Predictive,
    /// Opt-in: compiles the relational shredding layout for (DTD, Σ) and
    /// reports what the backend would refuse or degrade on (`XNF3xx`).
    Shred,
}

/// One registered analysis: its code, tier, and a one-line summary.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// The stable diagnostic code.
    pub code: Code,
    /// How the rule is driven.
    pub tier: Tier,
    /// Whether the rule's verdicts come from the chase implication engine.
    pub implication_backed: bool,
    /// One-line description.
    pub summary: &'static str,
}

/// The rule registry: every analysis [`lint_spec`] can run, in code order.
/// (Extending the linter means adding a row here plus its implementation
/// in the matching tier module.)
pub fn registry() -> &'static [Rule] {
    const fn rule(code: Code, tier: Tier, implication_backed: bool, summary: &'static str) -> Rule {
        Rule {
            code,
            tier,
            implication_backed,
            summary,
        }
    }
    const RULES: &[Rule] = &[
        rule(
            Code::DtdSyntax,
            Tier::Parse,
            false,
            "the DTD text does not parse",
        ),
        rule(
            Code::DuplicateElement,
            Tier::Scanner,
            false,
            "an element is declared more than once",
        ),
        rule(
            Code::DuplicateAttribute,
            Tier::Scanner,
            false,
            "an attribute is declared more than once for one element",
        ),
        rule(
            Code::UndeclaredElement,
            Tier::Parse,
            false,
            "a content model references an undeclared element",
        ),
        rule(
            Code::RootReferenced,
            Tier::Parse,
            false,
            "the root occurs in a content model (violates Definition 1)",
        ),
        rule(
            Code::AttlistForUndeclared,
            Tier::Parse,
            false,
            "an ATTLIST names an undeclared element",
        ),
        rule(
            Code::UnreachableElement,
            Tier::Structural,
            false,
            "an element is unreachable from the root",
        ),
        rule(
            Code::NonGeneratingElement,
            Tier::Structural,
            false,
            "an element can never occur in a finite document",
        ),
        rule(
            Code::UnsatisfiableDtd,
            Tier::Structural,
            false,
            "no finite document conforms to the DTD",
        ),
        rule(
            Code::NondeterministicContent,
            Tier::Structural,
            false,
            "a content model is not 1-unambiguous",
        ),
        rule(
            Code::RecursiveDtd,
            Tier::Structural,
            false,
            "the DTD is recursive; paths(D) is infinite",
        ),
        rule(
            Code::GeneralClass,
            Tier::Structural,
            false,
            "the DTD is neither simple nor disjunctive (Theorem 5 territory)",
        ),
        rule(
            Code::FdSyntax,
            Tier::Semantic,
            false,
            "an FD does not parse",
        ),
        rule(
            Code::UnknownFdPath,
            Tier::Semantic,
            false,
            "an FD path is not in paths(D)",
        ),
        rule(
            Code::VacuousFd,
            Tier::Semantic,
            false,
            "an FD's paths are mutually exclusive; it constrains nothing",
        ),
        rule(
            Code::DuplicateFd,
            Tier::Semantic,
            false,
            "the same FD is listed twice",
        ),
        rule(
            Code::TrivialFd,
            Tier::Semantic,
            true,
            "an FD is implied by the DTD alone",
        ),
        rule(
            Code::RedundantFd,
            Tier::Semantic,
            true,
            "an FD is implied by the rest of \u{3a3}",
        ),
        rule(
            Code::EquivalentFds,
            Tier::Semantic,
            true,
            "two FDs are equivalent given the rest of \u{3a3}",
        ),
        rule(
            Code::RedundantLhsPath,
            Tier::Semantic,
            true,
            "an LHS path is determined by the other LHS paths",
        ),
        rule(
            Code::AnomalousFd,
            Tier::Predictive,
            true,
            "an FD is anomalous: the spec is not in XNF",
        ),
        rule(
            Code::SchemaBlowUp,
            Tier::Predictive,
            true,
            "the predicted decomposition creates many fresh element types",
        ),
        rule(
            Code::FdInteractionCluster,
            Tier::Predictive,
            false,
            "a large cluster of FDs interact through shared paths",
        ),
        rule(
            Code::DeadAttribute,
            Tier::Predictive,
            false,
            "an attribute is mentioned by no FD",
        ),
        rule(
            Code::FixpointIterationBound,
            Tier::Predictive,
            true,
            "normalization needs many fixpoint iterations",
        ),
        rule(
            Code::ShredRecursive,
            Tier::Shred,
            false,
            "the DTD is recursive; no per-path table layout exists",
        ),
        rule(
            Code::ShredMixedContent,
            Tier::Shred,
            false,
            "mixed #PCDATA/element content has no stable text column",
        ),
        rule(
            Code::ShredNameCollision,
            Tier::Shred,
            true,
            "colliding leaf names force mangled full-path table names",
        ),
        rule(
            Code::ShredWideTable,
            Tier::Shred,
            true,
            "a table exceeds the exhaustive derived-key search width",
        ),
    ];
    RULES
}

/// Lints a DTD text and (optionally) an FD-set text, running every
/// applicable rule of the [`registry`].
///
/// The structural tier always runs. The semantic tier runs when `fds_src`
/// is given *and* the DTD parsed, is non-recursive, and — since the chase
/// needs `paths(D)` — skips the implication-backed rules for recursive
/// DTDs (flagged `XNF011` instead). If the DTD failed to parse, FD
/// linting degrades to per-FD syntax checking.
pub fn lint_spec(dtd_src: &str, fds_src: Option<&str>) -> LintReport {
    match lint_spec_governed(dtd_src, fds_src, UNLIMITED) {
        Ok(report) => report,
        Err(_) => unreachable!("an unlimited budget cannot exhaust"),
    }
}

/// Budget-governed [`lint_spec`]: the implication-backed semantic rules
/// (the only potentially expensive tier) charge `budget` per FD and per
/// chase run, and the whole lint aborts with [`Exhausted`] instead of
/// running unboundedly. An `Err` means the report was *not* completed —
/// no partial report is returned, so a clean report always means a fully
/// linted spec.
pub fn lint_spec_governed(
    dtd_src: &str,
    fds_src: Option<&str>,
    budget: &Budget,
) -> Result<LintReport, Exhausted> {
    lint_inner(dtd_src, fds_src, budget, false, false)
}

/// [`lint_spec_governed`] plus the opt-in **predictive tier** (`XNF2xx`):
/// runs the static decomposition planner ([`xnf_core::analyze`]) over
/// `(D, Σ)` and reports what normalization would do — anomalous FDs with
/// provenance, predicted schema blow-up, interaction clusters, dead
/// attributes, and the fixpoint-iteration bound.
///
/// Predictive diagnostics are observations about a *valid* spec, so the
/// tier is skipped whenever the earlier tiers found the spec degenerate
/// (unparseable, recursive, paths outside `paths(D)`): those runs return
/// exactly the [`lint_spec_governed`] report. The planner charges
/// `budget` like any implication-backed rule.
pub fn lint_spec_predictive(
    dtd_src: &str,
    fds_src: &str,
    budget: &Budget,
) -> Result<LintReport, Exhausted> {
    lint_inner(dtd_src, Some(fds_src), budget, true, false)
}

/// [`lint_spec_governed`] plus the opt-in **shred tier** (`XNF3xx`): the
/// shredding backend's preflight. Compiles the relational layout for
/// `(D, Σ)` with [`xnf_core::compile_schema`] — without emitting DDL or
/// rows — and reports what shredding would refuse (recursive DTDs, mixed
/// content) or silently degrade on (mangled table names, sampled key
/// search). `xnf-tool shred` runs exactly this before touching a document.
pub fn lint_spec_shred(
    dtd_src: &str,
    fds_src: Option<&str>,
    budget: &Budget,
) -> Result<LintReport, Exhausted> {
    lint_inner(dtd_src, fds_src, budget, false, true)
}

fn lint_inner(
    dtd_src: &str,
    fds_src: Option<&str>,
    budget: &Budget,
    predictive: bool,
    shred_tier: bool,
) -> Result<LintReport, Exhausted> {
    let mut diags = Vec::new();
    let structural_span = budget.recorder().span("lint.structural", "lint");
    let index = DeclIndex::scan(dtd_src);
    structural::duplicate_decls(dtd_src, &index, &mut diags);

    match parse_dtd(dtd_src) {
        Ok(dtd) => {
            let ctx = DtdCtx::new(dtd_src, &dtd, &index);
            structural::rule_unreachable(&ctx, &mut diags);
            structural::rule_non_generating(&ctx, &mut diags);
            structural::rule_unsatisfiable(&ctx, &mut diags);
            structural::rule_determinism(&ctx, &mut diags);
            structural::rule_recursive(&ctx, &mut diags);
            structural::rule_general_class(&ctx, &mut diags);
            drop(structural_span);
            if let Some(fds_src) = fds_src {
                {
                    let _span = budget.recorder().span("lint.semantic", "lint");
                    if dtd.is_recursive() {
                        semantic::lint_fd_syntax_only(fds_src, &mut diags);
                    } else {
                        semantic::lint_fds(&ctx, fds_src, budget, &mut diags)?;
                    }
                }
                if predictive && !dtd.is_recursive() {
                    let _span = budget.recorder().span("lint.predictive", "lint");
                    predictive::lint_predictive(&ctx, fds_src, budget, &mut diags)?;
                }
            }
            if shred_tier {
                let _span = budget.recorder().span("lint.shred", "lint");
                shred::rule_mixed_content(dtd_src, &index, &mut diags);
                shred::rule_shred_schema(&dtd, dtd_src, &index, fds_src, budget, &mut diags)?;
            }
        }
        Err(err) => {
            structural::map_parse_error(dtd_src, &index, &err, &mut diags);
            drop(structural_span);
            if let Some(fds_src) = fds_src {
                let _span = budget.recorder().span("lint.semantic", "lint");
                semantic::lint_fd_syntax_only(fds_src, &mut diags);
            }
            if shred_tier {
                // Mixed content *is* a parse failure; explain it anyway.
                let _span = budget.recorder().span("lint.shred", "lint");
                shred::rule_mixed_content(dtd_src, &index, &mut diags);
            }
        }
    }
    Ok(LintReport::new(diags))
}

/// Lints the DTD alone (structural tier only).
pub fn lint_dtd(dtd_src: &str) -> LintReport {
    lint_spec(dtd_src, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_are_unique_and_cover_all_tiers() {
        let rules = registry();
        let mut codes: Vec<&str> = rules.iter().map(|r| r.code.as_str()).collect();
        codes.sort_unstable();
        let before = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), before, "duplicate code in registry");
        // The registry is total: one row per `Code` variant.
        assert_eq!(rules.len(), Code::ALL.len());
        let structural = rules
            .iter()
            .filter(|r| !matches!(r.tier, Tier::Semantic | Tier::Predictive))
            .count();
        let implication = rules.iter().filter(|r| r.implication_backed).count();
        let predictive = rules
            .iter()
            .filter(|r| matches!(r.tier, Tier::Predictive))
            .count();
        assert!(structural >= 4, "ISSUE floor: >= 4 structural rules");
        assert!(
            implication >= 4,
            "ISSUE floor: >= 4 implication-backed rules"
        );
        assert_eq!(predictive, 5, "the XNF2xx tier has five rules");
        let shred = rules
            .iter()
            .filter(|r| matches!(r.tier, Tier::Shred))
            .count();
        assert_eq!(shred, 4, "the XNF3xx tier has four rules");
        assert!(rules.len() >= 8);
    }

    /// The predictive tier is strictly opt-in: the default lint stays
    /// clean on the paper's DBLP spec while [`lint_spec_predictive`]
    /// surfaces the `XNF2xx` forecast for the very same input.
    #[test]
    fn predictive_tier_is_opt_in() {
        let dtd = "<!ELEMENT db (conf*)>
             <!ELEMENT conf (title, issue+)>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT issue (inproceedings+)>
             <!ELEMENT inproceedings (author+, title, booktitle)>
             <!ATTLIST inproceedings
                 key CDATA #REQUIRED
                 pages CDATA #REQUIRED
                 year CDATA #REQUIRED>
             <!ELEMENT author (#PCDATA)>
             <!ELEMENT booktitle (#PCDATA)>";
        let fds = "db.conf.title.S -> db.conf\n\
                   db.conf.issue -> db.conf.issue.inproceedings.@year";
        let plain = lint_spec(dtd, Some(fds));
        assert!(plain.is_clean(), "{}", plain.render_human());
        let predicted = lint_spec_predictive(dtd, fds, UNLIMITED).unwrap();
        assert!(!predicted.is_clean());
        assert!(
            predicted.codes().contains(&Code::AnomalousFd),
            "{:?}",
            predicted.codes()
        );
        // Every extra diagnostic belongs to the predictive band.
        for d in predicted.diagnostics() {
            assert!(d.code.as_str().starts_with("XNF2"), "{:?}", d.code);
        }
        // A degenerate spec gets no predictive diagnostics: the report
        // is exactly the default one.
        let broken = lint_spec_predictive(dtd, "db.nope -> db.conf", UNLIMITED).unwrap();
        assert_eq!(
            broken.codes(),
            lint_spec(dtd, Some("db.nope -> db.conf")).codes()
        );
    }

    #[test]
    fn clean_spec_is_clean() {
        let report = lint_spec(
            "<!ELEMENT r (a*)> <!ELEMENT a (#PCDATA)> <!ATTLIST a k CDATA #REQUIRED>",
            Some("r.a.@k -> r.a"),
        );
        assert!(report.is_clean(), "{}", report.render_human());
    }

    #[test]
    fn governed_lint_agrees_and_exhausts() {
        let dtd = "<!ELEMENT r (a*)> <!ELEMENT a (#PCDATA)> <!ATTLIST a k CDATA #REQUIRED>";
        let fds = "r.a.@k -> r.a\nr.a -> r";
        let plain = lint_spec(dtd, Some(fds));
        // Generous budget: identical report.
        let generous = Budget::builder().fuel(1_000_000).build();
        let governed = lint_spec_governed(dtd, Some(fds), &generous).unwrap();
        assert_eq!(governed.codes(), plain.codes());
        // Tiny budget: a structured error, never a truncated report.
        let tiny = Budget::builder().fuel(2).build();
        let err = lint_spec_governed(dtd, Some(fds), &tiny).unwrap_err();
        assert_eq!(err.resource, xnf_govern::Resource::Fuel);
    }
}
