//! Semantic lint rules: analyses of the FD set Σ against the DTD (codes
//! `XNF1xx`).
//!
//! After the cheap checks (per-FD syntax, path resolution, duplicates),
//! the interesting rules repurpose the chase-based implication engine of
//! `xnf_core` as a static analyzer, exactly as relational design tools
//! lint dependency sets: trivial FDs (`(D, ∅) ⊢ φ`), FDs redundant given
//! the rest of Σ, pairwise-equivalent FDs, and redundant left-hand-side
//! paths. One extra rule is path-combinatorial rather than chase-backed:
//! an FD whose paths the DTD makes *mutually exclusive* (they diverge on
//! letters that never co-occur in a word of the branching content model)
//! can never fire in any tree tuple and is flagged vacuous.
//!
//! All chase verdicts go through one [`ImplicationCache`], so repeated
//! subset queries cost one chase run each.

use crate::report::{Code, Diagnostic, SourceKind};
use crate::source::{fd_segments, FdSegment};
use crate::structural::DtdCtx;
use xnf_core::fd::ResolvedFd;
use xnf_core::implication::{Chase, Implication, ImplicationCache};
use xnf_core::XmlFd;
use xnf_dtd::paths::Step;
use xnf_dtd::{Dtd, PathSet, Regex};
use xnf_govern::{Budget, Exhausted};

/// One successfully parsed, resolved, non-duplicate member of Σ.
struct Member {
    /// Index into the segment list (for spans/messages).
    seg: usize,
    fd: XmlFd,
    resolved: ResolvedFd,
    /// XNF103 fired: excluded from the chase-backed rules.
    vacuous: bool,
    /// XNF105 fired.
    trivial: bool,
    /// XNF107 fired (member of an equivalent pair).
    equivalent: bool,
}

/// Runs the semantic tier over `fds_src`. `ctx` must come from a
/// successfully parsed, non-recursive DTD (the driver gates on XNF011).
/// The implication-backed rules charge `budget`; on exhaustion the
/// partial diagnostics already pushed to `out` are abandoned by the
/// driver (no partial report escapes).
pub fn lint_fds(
    ctx: &DtdCtx<'_>,
    fds_src: &str,
    budget: &Budget,
    out: &mut Vec<Diagnostic>,
) -> Result<(), Exhausted> {
    let segments = fd_segments(fds_src);
    let parsed = parse_segments(fds_src, &segments, out);

    let Ok(paths) = ctx.dtd.paths() else {
        // Recursive DTDs are filtered by the driver; defensive only.
        return Ok(());
    };

    let mut members = resolve_and_dedup(ctx, fds_src, &segments, parsed, &paths, out);

    let at = |seg: usize| -> (&str, usize, usize) {
        (fds_src, segments[seg].offset, segments[seg].len())
    };

    // XNF103 — vacuous FDs (mutually exclusive paths).
    for m in &mut members {
        if let Some(exclusion) = find_exclusive_pair(ctx.dtd, &m.fd) {
            m.vacuous = true;
            let (src, off, len) = at(m.seg);
            out.push(
                Diagnostic::new(
                    Code::VacuousFd,
                    SourceKind::Fds,
                    format!(
                        "FD is vacuous: `{}` and `{}` can never occur in the same tree tuple",
                        exclusion.a, exclusion.b
                    ),
                )
                .with_span(src, off, len)
                .note(format!(
                    "`{}` and `{}` are mutually exclusive in the content model of `{}`: {}",
                    exclusion.step_a, exclusion.step_b, exclusion.element, exclusion.content
                ))
                .note("no tree tuple instantiates both sides, so the FD constrains nothing"),
            );
        }
    }

    let sigma: Vec<ResolvedFd> = members.iter().map(|m| m.resolved.clone()).collect();
    let chase = Chase::new(ctx.dtd, &paths).with_budget(budget.clone());
    let oracle = ImplicationCache::new(&chase, &sigma);

    // XNF105 — trivial FDs: implied by the DTD alone.
    for m in &mut members {
        budget.checkpoint("lint.semantic.fd")?;
        if m.vacuous {
            continue;
        }
        if implied(&oracle, &[], &m.resolved)? {
            m.trivial = true;
            let (src, off, len) = at(m.seg);
            out.push(
                Diagnostic::new(
                    Code::TrivialFd,
                    SourceKind::Fds,
                    "FD is trivial: it holds in every tree conforming to the DTD".to_string(),
                )
                .with_span(src, off, len)
                .note("(D, \u{2205}) \u{22a2} \u{3c6} — listing it in \u{3a3} adds nothing"),
            );
        }
    }

    // XNF107 — pairwise-equivalent FDs (given the rest of Σ). Checked
    // before redundancy so an equivalent pair is reported once as a pair,
    // not twice as "redundant".
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            if members[i].vacuous || members[i].trivial || members[j].vacuous || members[j].trivial
            {
                continue;
            }
            let base: Vec<ResolvedFd> = sigma
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != i && k != j)
                .map(|(_, fd)| fd.clone())
                .collect();
            let mut with_i = base.clone();
            with_i.push(sigma[i].clone());
            let mut with_j = base;
            with_j.push(sigma[j].clone());
            if implied(&oracle, &with_i, &sigma[j])? && implied(&oracle, &with_j, &sigma[i])? {
                members[i].equivalent = true;
                members[j].equivalent = true;
                let other = segments[members[i].seg].text.clone();
                let (src, off, len) = at(members[j].seg);
                out.push(
                    Diagnostic::new(
                        Code::EquivalentFds,
                        SourceKind::Fds,
                        format!("FD is equivalent to `{other}` given the rest of \u{3a3}"),
                    )
                    .with_span(src, off, len)
                    .note("each is derivable from the other; one of the pair can be dropped"),
                );
            }
        }
    }

    // XNF106 — redundant FDs: implied by Σ ∖ {φ}.
    for (i, m) in members.iter().enumerate() {
        if m.vacuous || m.trivial || m.equivalent {
            continue;
        }
        let rest: Vec<ResolvedFd> = sigma
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != i)
            .map(|(_, fd)| fd.clone())
            .collect();
        if implied(&oracle, &rest, &m.resolved)? {
            let (src, off, len) = at(m.seg);
            out.push(
                Diagnostic::new(
                    Code::RedundantFd,
                    SourceKind::Fds,
                    "FD is redundant: it is implied by the rest of \u{3a3}".to_string(),
                )
                .with_span(src, off, len)
                .note("(D, \u{3a3} \u{2216} {\u{3c6}}) \u{22a2} \u{3c6}"),
            );
        }
    }

    // XNF108 — redundant LHS paths: a left-hand-side path already
    // determined by the other LHS paths in *every* tree (Σ = ∅, so the
    // verdict is independent of the possibly-redundant rest of Σ).
    for m in &members {
        if m.vacuous || m.trivial || m.resolved.lhs.len() < 2 {
            continue;
        }
        for (k, &x) in m.resolved.lhs.iter().enumerate() {
            let rest_lhs = m
                .resolved
                .lhs
                .iter()
                .enumerate()
                .filter(|&(k2, _)| k2 != k)
                .map(|(_, &p)| p);
            let derives_x = ResolvedFd::from_ids(rest_lhs, [x]);
            if implied(&oracle, &[], &derives_x)? {
                let (src, off, len) = at(m.seg);
                out.push(
                    Diagnostic::new(
                        Code::RedundantLhsPath,
                        SourceKind::Fds,
                        format!(
                            "left-hand-side path `{}` is already determined by the rest \
                             of the LHS in every tree",
                            paths.format(x)
                        ),
                    )
                    .with_span(src, off, len)
                    .note("dropping it leaves an equivalent, smaller FD"),
                );
            }
        }
    }
    Ok(())
}

/// Surfaces per-FD syntax errors even when the DTD itself failed to parse
/// (the driver calls this instead of [`lint_fds`] in that case).
pub fn lint_fd_syntax_only(fds_src: &str, out: &mut Vec<Diagnostic>) {
    let segments = fd_segments(fds_src);
    parse_segments(fds_src, &segments, out);
}

/// XNF101 — parses each segment, reporting failures with spans. Returns
/// the successfully parsed FDs aligned with their segment index.
fn parse_segments(
    fds_src: &str,
    segments: &[FdSegment],
    out: &mut Vec<Diagnostic>,
) -> Vec<(usize, XmlFd)> {
    let mut parsed = Vec::new();
    for (i, seg) in segments.iter().enumerate() {
        match XmlFd::parse(&seg.text) {
            Ok(fd) => parsed.push((i, fd)),
            Err(e) => out.push(
                Diagnostic::new(
                    Code::FdSyntax,
                    SourceKind::Fds,
                    format!("FD does not parse: {e}"),
                )
                .with_span(fds_src, seg.offset, seg.len()),
            ),
        }
    }
    parsed
}

/// XNF102/XNF104 — resolves each parsed FD against `paths(D)` (reporting
/// unknown paths) and drops duplicate members (reporting them).
fn resolve_and_dedup(
    _ctx: &DtdCtx<'_>,
    fds_src: &str,
    segments: &[FdSegment],
    parsed: Vec<(usize, XmlFd)>,
    paths: &PathSet,
    out: &mut Vec<Diagnostic>,
) -> Vec<Member> {
    let mut members: Vec<Member> = Vec::new();
    for (seg, fd) in parsed {
        let resolved = match fd.resolve(paths) {
            Ok(r) => r,
            Err(e) => {
                out.push(
                    Diagnostic::new(
                        Code::UnknownFdPath,
                        SourceKind::Fds,
                        format!("FD mentions a path outside paths(D): {e}"),
                    )
                    .with_span(
                        fds_src,
                        segments[seg].offset,
                        segments[seg].len(),
                    ),
                );
                continue;
            }
        };
        if let Some(first) = members.iter().find(|m| m.resolved == resolved) {
            out.push(
                Diagnostic::new(
                    Code::DuplicateFd,
                    SourceKind::Fds,
                    "FD appears more than once in \u{3a3}".to_string(),
                )
                .with_span(fds_src, segments[seg].offset, segments[seg].len())
                .note(format!("first listed as `{}`", segments[first.seg].text)),
            );
            continue;
        }
        members.push(Member {
            seg,
            fd,
            resolved,
            vacuous: false,
            trivial: false,
            equivalent: false,
        });
    }
    members
}

/// Whether `(D, sigma) ⊢ fd`, splitting a multi-path RHS into single-RHS
/// queries (the conjunction is implied iff every component is).
fn implied(
    oracle: &ImplicationCache<'_>,
    sigma: &[ResolvedFd],
    fd: &ResolvedFd,
) -> Result<bool, Exhausted> {
    for &q in &fd.rhs {
        let single = ResolvedFd::from_ids(fd.lhs.iter().copied(), [q]);
        if !oracle.try_implies(sigma, &single)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Witness that two FD paths can never be instantiated in one tree tuple.
struct ExclusivePair {
    a: String,
    b: String,
    step_a: String,
    step_b: String,
    element: String,
    content: String,
}

/// Looks for a pair of paths in `fd` (LHS×LHS and LHS×RHS) that the DTD
/// makes mutually exclusive: at their divergence point, the two next
/// element letters never co-occur in any word of the branching content
/// model. LHS×LHS exclusivity means the FD's premise never holds;
/// LHS×RHS exclusivity means the RHS component is always null when the
/// premise holds. Either way the FD constrains nothing.
fn find_exclusive_pair(dtd: &Dtd, fd: &XmlFd) -> Option<ExclusivePair> {
    let lhs = fd.lhs();
    let rhs = fd.rhs();
    let mut pairs: Vec<(&xnf_dtd::Path, &xnf_dtd::Path)> = Vec::new();
    for (i, p) in lhs.iter().enumerate() {
        for q in &lhs[i + 1..] {
            pairs.push((p, q));
        }
        for q in rhs {
            pairs.push((p, q));
        }
    }
    for (p, q) in pairs {
        let (sp, sq) = (p.steps(), q.steps());
        let k = sp.iter().zip(sq.iter()).take_while(|(a, b)| a == b).count();
        if k == sp.len() || k == sq.len() || k == 0 {
            // One path is a prefix of the other (always co-instantiable),
            // or the paths disagree on the root (unresolvable earlier).
            continue;
        }
        let (Step::Elem(x), Step::Elem(y)) = (&sp[k], &sq[k]) else {
            // Attribute/text steps always accompany their element node.
            continue;
        };
        let Step::Elem(parent) = &sp[k - 1] else {
            continue;
        };
        let Some(parent_id) = dtd.elem_id(parent) else {
            continue;
        };
        if let xnf_dtd::ContentModel::Regex(re) = dtd.content(parent_id) {
            if !can_cooccur(re, x, y) {
                return Some(ExclusivePair {
                    a: p.to_string(),
                    b: q.to_string(),
                    step_a: x.to_string(),
                    step_b: y.to_string(),
                    element: parent.to_string(),
                    content: re.to_string(),
                });
            }
        }
    }
    None
}

/// Whether some single word of `L(re)` contains both letters `x` and `y`
/// (`x ≠ y`). Exact for this AST: it has no empty-language constructor,
/// so `mentions` coincides with "occurs in some word".
fn can_cooccur(re: &Regex, x: &str, y: &str) -> bool {
    match re {
        Regex::Epsilon | Regex::Elem(_) => false,
        Regex::Seq(parts) => {
            parts.iter().any(|p| can_cooccur(p, x, y))
                || parts.iter().enumerate().any(|(i, p)| {
                    p.mentions(x)
                        && parts
                            .iter()
                            .enumerate()
                            .any(|(j, q)| i != j && q.mentions(y))
                })
        }
        Regex::Alt(parts) => parts.iter().any(|p| can_cooccur(p, x, y)),
        Regex::Star(inner) | Regex::Plus(inner) => inner.mentions(x) && inner.mentions(y),
        Regex::Opt(inner) => can_cooccur(inner, x, y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xnf_dtd::parse::parse_content_model;
    use xnf_dtd::ContentModel;

    fn re(src: &str) -> Regex {
        match parse_content_model(src).unwrap() {
            ContentModel::Regex(r) => r,
            ContentModel::Text => unreachable!(),
        }
    }

    #[test]
    fn cooccurrence_over_the_operator_zoo() {
        let cases = [
            ("(a, b)", "a", "b", true),
            ("(a | b)", "a", "b", false),
            ("((a | b)*)", "a", "b", true), // two iterations
            ("((a | b)+)", "a", "b", true),
            ("((a | b)?)", "a", "b", false),
            ("((a, c) | (b, c))", "a", "b", false),
            ("((a, b) | c)", "a", "b", true),
            ("(a?, b?)", "a", "b", true),
            ("((a | x), (b | y))", "a", "b", true),
        ];
        for (src, x, y, expect) in cases {
            assert_eq!(can_cooccur(&re(src), x, y), expect, "{src}");
        }
    }
}
