//! A lenient, span-preserving scanner over raw spec text.
//!
//! [`xnf_dtd::parse_dtd`] validates eagerly and stops at the first problem,
//! and its [`xnf_dtd::Dtd`] output no longer knows where in the text each
//! declaration lived. The lint pass wants the opposite: *all* declarations
//! with their source spans, even (especially) for specs the strict parser
//! rejects. [`DeclIndex::scan`] provides that: a best-effort sweep that
//! records the name span of every `<!ELEMENT …>` and every attribute of
//! every `<!ATTLIST …>`, skipping comments, and silently giving up on any
//! declaration it cannot follow (the strict parser owns syntax errors).
//!
//! The same module splits FD-set text into per-FD segments with spans,
//! mirroring the `\n`/`;`/`#`-comment conventions of
//! `xnf_core::XmlFdSet::parse`.

/// A name occurrence in the source: the name and its byte span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameSpan {
    /// The name text.
    pub name: String,
    /// Byte offset of the name.
    pub offset: usize,
}

impl NameSpan {
    /// Byte length of the name.
    pub fn len(&self) -> usize {
        self.name.len()
    }

    /// Whether the name is empty (never produced by the scanner).
    pub fn is_empty(&self) -> bool {
        self.name.is_empty()
    }
}

/// One `<!ATTLIST …>` block: the element it names and its attribute names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttlistSpan {
    /// The element the block declares attributes for.
    pub element: NameSpan,
    /// Each declared attribute name, in order.
    pub attrs: Vec<NameSpan>,
}

/// Every declaration of a DTD text, with spans, in source order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeclIndex {
    /// Each `<!ELEMENT name …>` in order of appearance.
    pub elements: Vec<NameSpan>,
    /// Each `<!ATTLIST …>` block in order of appearance.
    pub attlists: Vec<AttlistSpan>,
}

impl DeclIndex {
    /// Scans `src`, collecting declaration name spans. Never fails;
    /// declarations with unexpected syntax are skipped.
    pub fn scan(src: &str) -> DeclIndex {
        let mut s = Cursor {
            input: src.as_bytes(),
            pos: 0,
        };
        let mut index = DeclIndex::default();
        loop {
            s.skip_ws_and_comments();
            if s.at_end() {
                return index;
            }
            if s.eat("<!ELEMENT") {
                s.skip_ws_and_comments();
                if let Some(name) = s.name() {
                    index.elements.push(name);
                }
                s.skip_to_gt();
            } else if s.eat("<!ATTLIST") {
                s.skip_ws_and_comments();
                let Some(element) = s.name() else {
                    s.skip_to_gt();
                    continue;
                };
                let mut block = AttlistSpan {
                    element,
                    attrs: Vec::new(),
                };
                // Per attribute: name, type (name or enumeration), default
                // (#REQUIRED / #IMPLIED / [#FIXED] "value").
                loop {
                    s.skip_ws_and_comments();
                    if s.at_end() || s.eat(">") {
                        break;
                    }
                    let Some(att) = s.name() else {
                        s.skip_to_gt();
                        break;
                    };
                    block.attrs.push(att);
                    s.skip_ws_and_comments();
                    let type_ok = if s.eat("(") {
                        s.skip_to_byte(b')')
                    } else {
                        s.name().is_some()
                    };
                    if !type_ok {
                        s.skip_to_gt();
                        break;
                    }
                    s.skip_ws_and_comments();
                    if s.eat("#REQUIRED") || s.eat("#IMPLIED") {
                        continue;
                    }
                    s.eat("#FIXED");
                    s.skip_ws_and_comments();
                    if !s.quoted_string() {
                        s.skip_to_gt();
                        break;
                    }
                }
                index.attlists.push(block);
            } else {
                // Not a declaration we understand: resynchronize.
                s.skip_to_gt();
            }
        }
    }

    /// The first `<!ELEMENT …>` span for `name`.
    pub fn element(&self, name: &str) -> Option<&NameSpan> {
        self.elements.iter().find(|e| e.name == name)
    }

    /// The first declaration span of attribute `attr` of `element`, across
    /// all of its ATTLIST blocks.
    pub fn attr(&self, element: &str, attr: &str) -> Option<&NameSpan> {
        self.attlists
            .iter()
            .filter(|b| b.element.name == element)
            .flat_map(|b| b.attrs.iter())
            .find(|a| a.name == attr)
    }
}

struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
            if self.input[self.pos..].starts_with(b"<!--") {
                self.pos += 4;
                while !self.at_end() && !self.input[self.pos..].starts_with(b"-->") {
                    self.pos += 1;
                }
                self.pos = (self.pos + 3).min(self.input.len());
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.input[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> Option<NameSpan> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return None;
        }
        Some(NameSpan {
            // Name bytes are ASCII by construction of the loop above.
            name: String::from_utf8_lossy(&self.input[start..self.pos]).into_owned(),
            offset: start,
        })
    }

    /// Advances one past the next `b`; false at end of input.
    fn skip_to_byte(&mut self, b: u8) -> bool {
        while let Some(c) = self.peek() {
            self.pos += 1;
            if c == b {
                return true;
            }
        }
        false
    }

    /// Advances one past the next `>` (declaration resync point).
    fn skip_to_gt(&mut self) {
        self.skip_to_byte(b'>');
    }

    /// Consumes a `"…"` or `'…'` literal.
    fn quoted_string(&mut self) -> bool {
        match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                self.skip_to_byte(q)
            }
            _ => false,
        }
    }
}

/// One FD segment of an FD-set text: the trimmed text and its byte span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdSegment {
    /// The FD text, trimmed, comments removed.
    pub text: String,
    /// Byte offset of the first non-whitespace byte of the segment.
    pub offset: usize,
}

impl FdSegment {
    /// Byte length of the trimmed FD text.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the segment is empty (never produced by the splitter).
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }
}

/// Splits FD-set text into per-FD segments with source spans, mirroring
/// the conventions of `XmlFdSet::parse` exactly: FDs are separated by
/// newlines or `;`, and segments whose trimmed text starts with `#` are
/// comments.
pub fn fd_segments(src: &str) -> Vec<FdSegment> {
    let mut out = Vec::new();
    let mut seg_start = 0usize;
    for (i, c) in src.char_indices() {
        if c == '\n' || c == ';' {
            push_segment(src, seg_start, i, &mut out);
            seg_start = i + 1;
        }
    }
    push_segment(src, seg_start, src.len(), &mut out);
    out
}

fn push_segment(src: &str, start: usize, end: usize, out: &mut Vec<FdSegment>) {
    let raw = &src[start..end];
    let trimmed = raw.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return;
    }
    let lead = raw.len() - raw.trim_start().len();
    out.push(FdSegment {
        text: trimmed.to_string(),
        offset: start + lead,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_elements_and_attlists_with_spans() {
        let src =
            "<!ELEMENT r (a)>\n<!ELEMENT a EMPTY>\n<!ATTLIST a x CDATA #REQUIRED y ID #IMPLIED>";
        let idx = DeclIndex::scan(src);
        assert_eq!(idx.elements.len(), 2);
        assert_eq!(idx.elements[0].name, "r");
        assert_eq!(&src[idx.elements[0].offset..][..1], "r");
        assert_eq!(idx.elements[1].name, "a");
        assert_eq!(idx.attlists.len(), 1);
        assert_eq!(idx.attlists[0].element.name, "a");
        let attrs: Vec<&str> = idx.attlists[0]
            .attrs
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(attrs, ["x", "y"]);
        let y = idx.attr("a", "y").unwrap();
        assert_eq!(&src[y.offset..][..1], "y");
    }

    #[test]
    fn scanner_survives_comments_enums_and_defaults() {
        let src = r#"<!-- <!ELEMENT fake (x)> -->
            <!ELEMENT r (a)>
            <!ELEMENT a EMPTY>
            <!ATTLIST a kind (x | y) "x" fixed CDATA #FIXED 'v'>"#;
        let idx = DeclIndex::scan(src);
        assert_eq!(idx.elements.len(), 2, "commented declaration skipped");
        let attrs: Vec<&str> = idx.attlists[0]
            .attrs
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(attrs, ["kind", "fixed"]);
    }

    #[test]
    fn scanner_gives_up_quietly_on_garbage() {
        let idx = DeclIndex::scan("<!ELEMENT r (a>< junk <!ATTLIST ???>");
        assert_eq!(idx.elements.len(), 1);
        assert!(idx.attlists.is_empty() || idx.attlists[0].attrs.is_empty());
    }

    #[test]
    fn duplicate_declarations_are_all_recorded() {
        let src = "<!ELEMENT a EMPTY> <!ELEMENT a (b)> <!ELEMENT b EMPTY>";
        let idx = DeclIndex::scan(src);
        let names: Vec<&str> = idx.elements.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a", "a", "b"]);
    }

    #[test]
    fn fd_segments_split_and_span() {
        let src = "# header\na -> b\n\nc, d -> e ; f -> g\n  # trailing comment";
        let segs = fd_segments(src);
        let texts: Vec<&str> = segs.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(texts, ["a -> b", "c, d -> e", "f -> g"]);
        for seg in &segs {
            assert_eq!(&src[seg.offset..][..seg.len()], seg.text);
        }
    }
}
