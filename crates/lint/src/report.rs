//! The diagnostics data model: codes, severities, spans, and the rendered
//! report (human-readable and JSON).

use crate::json;
use xnf_dtd::span::{line_col_str, line_text, LineCol};

/// How serious a diagnostic is.
///
/// `Error`-severity diagnostics describe specs the engine cannot (or should
/// not) process: `normalize`/`is-xnf` preflight aborts on them. `Warning`s
/// are well-formed but suspicious constructs; `Info`s are observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// An observation worth knowing about; never gates anything.
    Info,
    /// A suspicious construct: the spec is processable but likely not what
    /// its author intended.
    Warning,
    /// A defect: the spec is rejected by preflight linting.
    Error,
}

impl Severity {
    /// Lowercase name, as used in JSON output and human rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which input text a diagnostic points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// The DTD declaration text.
    Dtd,
    /// The FD set text.
    Fds,
}

impl SourceKind {
    /// Lowercase name, as used in JSON output and `--> dtd:3:7` locations.
    pub fn as_str(self) -> &'static str {
        match self {
            SourceKind::Dtd => "dtd",
            SourceKind::Fds => "fds",
        }
    }
}

/// The stable, coded identity of each lint analysis.
///
/// Codes `XNF001`–`XNF0xx` are structural (the DTD alone); codes
/// `XNF1xx` are semantic (the FD set Σ against the DTD, several of them
/// backed by the chase implication engine); codes `XNF2xx` are
/// *predictive* (opt-in: what the Figure 4 normalization would do to the
/// spec, computed statically by [`xnf_core::analyze`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// XNF001: the DTD text does not parse.
    DtdSyntax,
    /// XNF002: an element is declared more than once.
    DuplicateElement,
    /// XNF003: an attribute is declared more than once for one element.
    DuplicateAttribute,
    /// XNF004: a content model references an element that is never declared.
    UndeclaredElement,
    /// XNF005: the root element occurs in a content model (Definition 1
    /// requires the root not to occur in any `P(τ)`).
    RootReferenced,
    /// XNF006: an `<!ATTLIST …>` names an element with no declaration.
    AttlistForUndeclared,
    /// XNF007: an element is unreachable from the root.
    UnreachableElement,
    /// XNF008: an element can never occur in any finite conforming
    /// document (its content model has no generating word).
    NonGeneratingElement,
    /// XNF009: no finite document conforms to the DTD at all (the root is
    /// non-generating).
    UnsatisfiableDtd,
    /// XNF010: a content model is not 1-unambiguous (deterministic), as
    /// the XML specification requires.
    NondeterministicContent,
    /// XNF011: the DTD is recursive; `paths(D)` is infinite and the
    /// path-based FD analyses do not apply.
    RecursiveDtd,
    /// XNF012: the DTD is neither simple nor disjunctive (Section 7), so
    /// FD implication falls back to the general chase (coNP-complete,
    /// Theorem 5).
    GeneralClass,
    /// XNF101: an FD does not parse.
    FdSyntax,
    /// XNF102: an FD mentions a path that is not in `paths(D)`.
    UnknownFdPath,
    /// XNF103: an FD mentions paths the DTD makes mutually exclusive, so
    /// no tree tuple ever instantiates them together — the FD is vacuous.
    VacuousFd,
    /// XNF104: the same FD appears more than once in Σ.
    DuplicateFd,
    /// XNF105: an FD is trivial — implied by the DTD alone, `(D, ∅) ⊢ φ`.
    TrivialFd,
    /// XNF106: an FD is implied by the rest of Σ, `(D, Σ∖{φ}) ⊢ φ`.
    RedundantFd,
    /// XNF107: two FDs are equivalent given the rest of Σ (each derivable
    /// from the other); one of the pair can be dropped.
    EquivalentFds,
    /// XNF108: an FD's left-hand side contains a path already determined
    /// by its other left-hand-side paths in every tree.
    RedundantLhsPath,
    /// XNF200: an FD is anomalous — the spec is not in XNF and
    /// normalization would rewrite the schema around it.
    AnomalousFd,
    /// XNF201: the predicted decomposition creates many fresh element
    /// types; the normalized schema will look very different.
    SchemaBlowUp,
    /// XNF202: a large cluster of interacting FDs (sharing or feeding
    /// each other's paths) — decomposition order within it matters.
    FdInteractionCluster,
    /// XNF203: an attribute no FD constrains; it rides along unchanged
    /// through every decomposition step.
    DeadAttribute,
    /// XNF204: normalization needs many fixpoint iterations to reach
    /// XNF; the spec is far from normal form.
    FixpointIterationBound,
    /// XNF300: the DTD is recursive, so the shredding backend cannot
    /// compile it (a table per element path needs finite `paths(D)`).
    ShredRecursive,
    /// XNF301: a content model mixes `#PCDATA` with element children;
    /// mixed content is outside Definition 2 and not shreddable.
    ShredMixedContent,
    /// XNF302: two element paths share a tail name, so their tables
    /// fall back to full path names (`a_b_x`).
    ShredNameCollision,
    /// XNF303: a table has more chase-representable columns than the
    /// FD derivation enumerates exhaustively; derived FDs (and hence
    /// the per-table BCNF verdict) may be incomplete on it.
    ShredWideTable,
}

impl Code {
    /// The stable `XNFnnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::DtdSyntax => "XNF001",
            Code::DuplicateElement => "XNF002",
            Code::DuplicateAttribute => "XNF003",
            Code::UndeclaredElement => "XNF004",
            Code::RootReferenced => "XNF005",
            Code::AttlistForUndeclared => "XNF006",
            Code::UnreachableElement => "XNF007",
            Code::NonGeneratingElement => "XNF008",
            Code::UnsatisfiableDtd => "XNF009",
            Code::NondeterministicContent => "XNF010",
            Code::RecursiveDtd => "XNF011",
            Code::GeneralClass => "XNF012",
            Code::FdSyntax => "XNF101",
            Code::UnknownFdPath => "XNF102",
            Code::VacuousFd => "XNF103",
            Code::DuplicateFd => "XNF104",
            Code::TrivialFd => "XNF105",
            Code::RedundantFd => "XNF106",
            Code::EquivalentFds => "XNF107",
            Code::RedundantLhsPath => "XNF108",
            Code::AnomalousFd => "XNF200",
            Code::SchemaBlowUp => "XNF201",
            Code::FdInteractionCluster => "XNF202",
            Code::DeadAttribute => "XNF203",
            Code::FixpointIterationBound => "XNF204",
            Code::ShredRecursive => "XNF300",
            Code::ShredMixedContent => "XNF301",
            Code::ShredNameCollision => "XNF302",
            Code::ShredWideTable => "XNF303",
        }
    }

    /// Every code, in report (numeric) order.
    pub const ALL: &'static [Code] = &[
        Code::DtdSyntax,
        Code::DuplicateElement,
        Code::DuplicateAttribute,
        Code::UndeclaredElement,
        Code::RootReferenced,
        Code::AttlistForUndeclared,
        Code::UnreachableElement,
        Code::NonGeneratingElement,
        Code::UnsatisfiableDtd,
        Code::NondeterministicContent,
        Code::RecursiveDtd,
        Code::GeneralClass,
        Code::FdSyntax,
        Code::UnknownFdPath,
        Code::VacuousFd,
        Code::DuplicateFd,
        Code::TrivialFd,
        Code::RedundantFd,
        Code::EquivalentFds,
        Code::RedundantLhsPath,
        Code::AnomalousFd,
        Code::SchemaBlowUp,
        Code::FdInteractionCluster,
        Code::DeadAttribute,
        Code::FixpointIterationBound,
        Code::ShredRecursive,
        Code::ShredMixedContent,
        Code::ShredNameCollision,
        Code::ShredWideTable,
    ];

    /// Parses a stable `XNFnnn` code string back into the code.
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// Short kebab-case rule name (JSON `rule` field, docs).
    pub fn id(self) -> &'static str {
        match self {
            Code::DtdSyntax => "dtd-syntax",
            Code::DuplicateElement => "duplicate-element",
            Code::DuplicateAttribute => "duplicate-attribute",
            Code::UndeclaredElement => "undeclared-element",
            Code::RootReferenced => "root-referenced",
            Code::AttlistForUndeclared => "attlist-for-undeclared",
            Code::UnreachableElement => "unreachable-element",
            Code::NonGeneratingElement => "non-generating-element",
            Code::UnsatisfiableDtd => "unsatisfiable-dtd",
            Code::NondeterministicContent => "nondeterministic-content",
            Code::RecursiveDtd => "recursive-dtd",
            Code::GeneralClass => "general-dtd-class",
            Code::FdSyntax => "fd-syntax",
            Code::UnknownFdPath => "unknown-fd-path",
            Code::VacuousFd => "vacuous-fd",
            Code::DuplicateFd => "duplicate-fd",
            Code::TrivialFd => "trivial-fd",
            Code::RedundantFd => "redundant-fd",
            Code::EquivalentFds => "equivalent-fds",
            Code::RedundantLhsPath => "redundant-lhs-path",
            Code::AnomalousFd => "anomalous-fd",
            Code::SchemaBlowUp => "schema-blow-up",
            Code::FdInteractionCluster => "fd-interaction-cluster",
            Code::DeadAttribute => "dead-attribute",
            Code::FixpointIterationBound => "fixpoint-iteration-bound",
            Code::ShredRecursive => "shred-recursive",
            Code::ShredMixedContent => "shred-mixed-content",
            Code::ShredNameCollision => "shred-name-collision",
            Code::ShredWideTable => "shred-wide-table",
        }
    }

    /// The severity every diagnostic with this code carries.
    pub fn severity(self) -> Severity {
        match self {
            Code::DtdSyntax
            | Code::DuplicateElement
            | Code::DuplicateAttribute
            | Code::UndeclaredElement
            | Code::RootReferenced
            | Code::AttlistForUndeclared
            | Code::UnsatisfiableDtd
            | Code::NondeterministicContent
            | Code::FdSyntax
            | Code::UnknownFdPath
            | Code::ShredRecursive
            | Code::ShredMixedContent => Severity::Error,
            Code::UnreachableElement
            | Code::NonGeneratingElement
            | Code::RecursiveDtd
            | Code::VacuousFd
            | Code::TrivialFd
            | Code::RedundantFd
            | Code::AnomalousFd
            | Code::SchemaBlowUp
            | Code::ShredNameCollision => Severity::Warning,
            Code::GeneralClass
            | Code::DuplicateFd
            | Code::EquivalentFds
            | Code::RedundantLhsPath
            | Code::FdInteractionCluster
            | Code::DeadAttribute
            | Code::FixpointIterationBound
            | Code::ShredWideTable => Severity::Info,
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A byte range in one of the two spec sources, with its resolved
/// line/column start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the start of the span.
    pub offset: usize,
    /// Byte length (0 is rendered as a caret of width 1).
    pub len: usize,
    /// 1-based line/column of `offset`.
    pub at: LineCol,
}

/// One finding of one lint rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that produced this diagnostic.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Which source text the span points into.
    pub source: SourceKind,
    /// The primary message.
    pub message: String,
    /// Where in the source, if the rule can point somewhere.
    pub span: Option<Span>,
    /// The full source line under the span, captured at creation so the
    /// report renders without re-reading the input.
    pub snippet: Option<String>,
    /// Secondary notes (cross-references, explanations).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A span-less diagnostic.
    pub fn new(code: Code, source: SourceKind, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            source,
            message: message.into(),
            span: None,
            snippet: None,
            notes: Vec::new(),
        }
    }

    /// Attaches a span at `offset..offset+len` into `src`, capturing the
    /// line/column and the source line.
    pub fn with_span(mut self, src: &str, offset: usize, len: usize) -> Diagnostic {
        self.span = Some(Span {
            offset,
            len,
            at: line_col_str(src, offset),
        });
        self.snippet = Some(line_text(src, offset).to_string());
        self
    }

    /// Appends a secondary note.
    pub fn note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    fn render_human(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "{}[{}]: {}", self.severity, self.code, self.message);
        match &self.span {
            Some(span) => {
                let _ = writeln!(
                    out,
                    "  --> {}:{}:{}",
                    self.source.as_str(),
                    span.at.line,
                    span.at.col
                );
                if let Some(snippet) = &self.snippet {
                    let gutter = span.at.line.to_string();
                    let pad = " ".repeat(gutter.len());
                    let _ = writeln!(out, " {pad} |");
                    let _ = writeln!(out, " {gutter} | {snippet}");
                    let caret_pad = " ".repeat(span.at.col.saturating_sub(1) as usize);
                    let carets = "^".repeat(span.len.max(1));
                    let _ = writeln!(out, " {pad} | {caret_pad}{carets}");
                }
            }
            None => {
                let _ = writeln!(out, "  --> {}", self.source.as_str());
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "  = note: {note}");
        }
    }

    fn render_json(&self, out: &mut json::Object) {
        out.string("code", self.code.as_str());
        out.string("rule", self.code.id());
        out.string("severity", self.severity.as_str());
        out.string("source", self.source.as_str());
        out.string("message", &self.message);
        match &self.span {
            Some(span) => out.object("span", |o| {
                o.number("offset", span.offset as u64);
                o.number("len", span.len as u64);
                o.number("line", u64::from(span.at.line));
                o.number("col", u64::from(span.at.col));
            }),
            None => out.null("span"),
        }
        match &self.snippet {
            Some(s) => out.string("snippet", s),
            None => out.null("snippet"),
        }
        out.string_array("notes", self.notes.iter().map(String::as_str));
    }
}

/// The outcome of one lint run: every diagnostic, in source order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Wraps raw diagnostics, sorting them into a stable report order:
    /// DTD findings before FD findings, by source position, then by code.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> LintReport {
        diagnostics.sort_by_key(|d| {
            (
                matches!(d.source, SourceKind::Fds),
                d.span.as_ref().map_or(usize::MAX, |s| s.offset),
                d.code,
            )
        });
        LintReport { diagnostics }
    }

    /// All diagnostics, in report order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of diagnostics with the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any diagnostic is an error (the preflight gate).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Whether the spec produced no diagnostics at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The codes of all diagnostics, in report order (handy in tests).
    pub fn codes(&self) -> Vec<Code> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// Renders the rustc-style human report, ending with a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            d.render_human(&mut out);
            out.push('\n');
        }
        out.push_str(&self.summary_line());
        out.push('\n');
        out
    }

    /// The one-line summary (`lint: 1 error, 2 warnings, 0 infos`).
    pub fn summary_line(&self) -> String {
        if self.is_clean() {
            return "lint: clean (no diagnostics)".to_string();
        }
        let plural = |n: usize, word: &str| {
            if n == 1 {
                format!("1 {word}")
            } else {
                format!("{n} {word}s")
            }
        };
        format!(
            "lint: {}, {}, {}",
            plural(self.count(Severity::Error), "error"),
            plural(self.count(Severity::Warning), "warning"),
            plural(self.count(Severity::Info), "info"),
        )
    }

    /// Renders the report as a single JSON object (schema documented in the
    /// README; hand-rolled because the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut root = json::Object::new();
        root.number("version", 1);
        root.bool("clean", self.is_clean());
        root.object("summary", |o| {
            o.number("errors", self.count(Severity::Error) as u64);
            o.number("warnings", self.count(Severity::Warning) as u64);
            o.number("infos", self.count(Severity::Info) as u64);
        });
        root.array("diagnostics", |a| {
            for d in &self.diagnostics {
                a.object(|o| d.render_json(o));
            }
        });
        root.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_is_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_sorts_dtd_before_fds_and_by_offset() {
        let src = "line one\nline two\n";
        let d1 = Diagnostic::new(Code::TrivialFd, SourceKind::Fds, "fd").with_span(src, 0, 2);
        let d2 =
            Diagnostic::new(Code::UnreachableElement, SourceKind::Dtd, "late").with_span(src, 9, 4);
        let d3 =
            Diagnostic::new(Code::DuplicateElement, SourceKind::Dtd, "early").with_span(src, 0, 4);
        let report = LintReport::new(vec![d1, d2, d3]);
        assert_eq!(
            report.codes(),
            vec![
                Code::DuplicateElement,
                Code::UnreachableElement,
                Code::TrivialFd
            ]
        );
    }

    #[test]
    fn human_rendering_shows_span_and_caret() {
        let src = "<!ELEMENT a EMPTY>";
        let d = Diagnostic::new(Code::DuplicateElement, SourceKind::Dtd, "dup `a`")
            .with_span(src, 10, 1)
            .note("first declared earlier");
        let report = LintReport::new(vec![d]);
        let text = report.render_human();
        assert!(text.contains("error[XNF002]: dup `a`"), "{text}");
        assert!(text.contains("--> dtd:1:11"), "{text}");
        assert!(text.contains("<!ELEMENT a EMPTY>"), "{text}");
        assert!(text.contains("= note: first declared earlier"), "{text}");
        assert!(
            text.contains("lint: 1 error, 0 warnings, 0 infos"),
            "{text}"
        );
    }

    /// Satellite pin: the `Code` ↔ `"XNF###"` mapping round-trips over
    /// every variant (including the predictive `XNF2xx` tier), the
    /// strings are unique and well-formed, and `ALL` is in numeric order.
    #[test]
    fn code_string_round_trip_is_exhaustive() {
        let mut seen = std::collections::BTreeSet::new();
        for &code in Code::ALL {
            let s = code.as_str();
            assert_eq!(s.len(), 6, "{s}");
            assert!(s.starts_with("XNF"), "{s}");
            assert!(s[3..].chars().all(|c| c.is_ascii_digit()), "{s}");
            assert_eq!(Code::parse(s), Some(code), "{s} does not round-trip");
            assert!(seen.insert(s), "duplicate code string {s}");
            assert!(!code.id().is_empty());
        }
        let ordered: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        let mut sorted = ordered.clone();
        sorted.sort_unstable();
        assert_eq!(ordered, sorted, "Code::ALL is not in numeric order");
        // Tier bands are populated: structural, semantic, predictive,
        // shred.
        for band in ["XNF0", "XNF1", "XNF2", "XNF3"] {
            assert!(ordered.iter().any(|s| s.starts_with(band)), "{band} empty");
        }
        assert_eq!(Code::parse("XNF999"), None);
        assert_eq!(Code::parse("xnf001"), None);
        assert_eq!(Code::parse(""), None);
    }

    #[test]
    fn clean_report_renders_clean() {
        let report = LintReport::new(Vec::new());
        assert!(report.is_clean());
        assert!(!report.has_errors());
        assert!(report.render_human().contains("clean"));
        assert!(report.to_json().contains("\"clean\": true"));
    }
}
