//! The opt-in **shred tier** (`XNF3xx`): static checks on how a spec maps
//! through the XML→relational shredding backend ([`xnf_core::shred`]).
//!
//! Shredding compiles `(D, Σ)` into one table per element path of
//! `paths(D)`. Some specs that are perfectly fine for normalization are
//! degenerate or surprising for shredding, and these rules surface that
//! *before* any DDL or rows are emitted:
//!
//! * `XNF300` — the DTD is recursive: `paths(D)` is infinite, so the
//!   per-path table layout does not exist at all.
//! * `XNF301` — a declaration mixes `#PCDATA` with child elements: the
//!   text has no stable column to land in. (Mixed content is also a parse
//!   error, so this rule runs over the raw declaration text and explains
//!   the rejection in shredding terms.)
//! * `XNF302` — two element types share a leaf name, so their tables fall
//!   back to mangled full-path names.
//! * `XNF303` — a table has more key-candidate columns than the FD
//!   enumeration window, so the derived-key search degrades from
//!   exhaustive to sampled.

use crate::report::{Code, Diagnostic, SourceKind};
use crate::source::DeclIndex;
use std::collections::BTreeSet;
use xnf_core::{compile_schema, CoreError, XmlFdSet, FD_ENUMERATION_WIDTH};
use xnf_dtd::{Dtd, Step};
use xnf_govern::{Budget, Exhausted};

/// `XNF301`: element declarations whose content model mixes `#PCDATA`
/// with element names. Runs over the raw text (the strict parser rejects
/// mixed content outright, so this is the only chance to explain it).
pub(crate) fn rule_mixed_content(dtd_src: &str, index: &DeclIndex, diags: &mut Vec<Diagnostic>) {
    let mut seen = BTreeSet::new();
    for decl in &index.elements {
        if !seen.insert(decl.name.as_str()) {
            continue; // duplicate declaration: XNF001 owns that
        }
        let model_start = decl.offset + decl.len();
        let model = match dtd_src[model_start..].find('>') {
            Some(end) => &dtd_src[model_start..model_start + end],
            None => &dtd_src[model_start..],
        };
        if !model.contains("#PCDATA") {
            continue;
        }
        // Mixed iff some content token besides the PCDATA keyword remains.
        let mixed = model
            .split(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')))
            .any(|tok| !tok.is_empty() && tok != "PCDATA");
        if mixed {
            diags.push(
                Diagnostic::new(
                    Code::ShredMixedContent,
                    SourceKind::Dtd,
                    format!(
                        "element `{}` mixes #PCDATA with child elements; its text \
                         has no stable column under shredding",
                        decl.name
                    ),
                )
                .with_span(dtd_src, decl.offset, decl.len())
                .note("give the text its own wrapper element so it shreds to a column"),
            );
        }
    }
}

/// The schema-level shred rules (`XNF300`, `XNF302`, `XNF303`): compiles
/// the spec with [`xnf_core::compile_schema`] and reports on the layout.
/// Σ parse problems are ignored here (the semantic tier owns them); the
/// layout rules then run against the empty Σ.
pub(crate) fn rule_shred_schema(
    dtd: &Dtd,
    dtd_src: &str,
    index: &DeclIndex,
    fds_src: Option<&str>,
    budget: &Budget,
    diags: &mut Vec<Diagnostic>,
) -> Result<(), Exhausted> {
    if dtd.is_recursive() {
        let witness = dtd
            .find_cycle_witness()
            .expect("recursive DTDs have a cycle witness");
        let name = dtd.name(witness);
        let mut d = Diagnostic::new(
            Code::ShredRecursive,
            SourceKind::Dtd,
            format!("element `{name}` is on a reference cycle; paths(D) is infinite and no per-path table layout exists"),
        )
        .note("shredding requires a non-recursive DTD; break the cycle or export the subtree as a document column");
        if let Some(span) = index.element(name) {
            d = d.with_span(dtd_src, span.offset, span.len());
        }
        diags.push(d);
        return Ok(());
    }
    let sigma = fds_src
        .and_then(|s| XmlFdSet::parse(s).ok())
        .unwrap_or_default();
    let schema = match compile_schema(dtd, &sigma, budget) {
        Ok(schema) => schema,
        Err(CoreError::Exhausted(e)) => return Err(e),
        // Degenerate specs (unknown FD paths, unsatisfiable DTDs, …) are
        // already diagnosed by the structural and semantic tiers.
        Err(_) => return Ok(()),
    };
    for ix in 0..schema.num_tables() {
        let path = schema.table_path(ix);
        let Step::Elem(tail) = path.last() else {
            continue;
        };
        let table = &schema.design.tables[ix];
        if table.name != sanitize_ident(tail) {
            let mut d = Diagnostic::new(
                Code::ShredNameCollision,
                SourceKind::Dtd,
                format!(
                    "element `{tail}` shreds to table `{}`: its leaf name is \
                     claimed by another element path",
                    table.name
                ),
            )
            .note("rename one of the colliding element types to keep table names readable");
            if let Some(span) = index.element(tail) {
                d = d.with_span(dtd_src, span.offset, span.len());
            }
            diags.push(d);
        }
        // Key-candidate columns: everything the FD derivation can put on a
        // LHS (parent, attributes, text) — exactly the columns with a DTD
        // path, minus the id column itself.
        let candidates = (1..table.columns.len())
            .filter(|&c| schema.column_path(ix, c).is_some())
            .count();
        if candidates > FD_ENUMERATION_WIDTH {
            let mut d = Diagnostic::new(
                Code::ShredWideTable,
                SourceKind::Dtd,
                format!(
                    "table `{}` has {candidates} key-candidate columns \
                     (> {FD_ENUMERATION_WIDTH}); the derived-key search is \
                     sampled, not exhaustive",
                    table.name
                ),
            )
            .note("UNIQUE constraints on wide tables may be incomplete; declare extra keys in Σ");
            if let Some(span) = index.element(tail) {
                d = d.with_span(dtd_src, span.offset, span.len());
            }
            diags.push(d);
        }
    }
    Ok(())
}

/// The same identifier sanitization the shred compiler applies to element
/// names, so an un-collided, un-mangled table name compares equal to its
/// element's leaf name.
fn sanitize_ident(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, 't');
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{lint_spec, lint_spec_shred, Code, Severity};
    use xnf_govern::Budget;

    const UNLIMITED: &Budget = &Budget::unlimited();

    fn shred_codes(dtd: &str, fds: Option<&str>) -> Vec<Code> {
        lint_spec_shred(dtd, fds, UNLIMITED)
            .expect("unlimited budget cannot exhaust")
            .codes()
            .into_iter()
            .filter(|c| c.as_str().starts_with("XNF3"))
            .collect()
    }

    #[test]
    fn recursive_dtd_gets_a_shred_error() {
        let dtd = "<!ELEMENT r (part)>\n<!ELEMENT part (part*)>";
        // The shred tier is opt-in: the default lint stays XNF0xx-only.
        assert!(!lint_spec(dtd, None).codes().contains(&Code::ShredRecursive));
        let report = lint_spec_shred(dtd, None, UNLIMITED).unwrap();
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == Code::ShredRecursive)
            .expect("XNF300 fires");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("part"), "{}", d.message);
    }

    #[test]
    fn mixed_content_is_explained_in_shredding_terms() {
        let dtd = "<!ELEMENT r (p*)>\n<!ELEMENT p (#PCDATA | em)*>\n<!ELEMENT em (#PCDATA)>";
        let report = lint_spec_shred(dtd, None, UNLIMITED).unwrap();
        // The strict parser rejects mixed content; XNF301 adds the why.
        assert!(report.codes().contains(&Code::ShredMixedContent));
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == Code::ShredMixedContent)
            .unwrap();
        assert!(d.message.contains('p'), "{}", d.message);
        // Pure #PCDATA is not mixed.
        let clean = "<!ELEMENT r (p*)>\n<!ELEMENT p (#PCDATA)>";
        assert_eq!(shred_codes(clean, None), vec![]);
    }

    #[test]
    fn leaf_name_collisions_are_flagged_per_element() {
        let dtd = "<!ELEMENT r (a*, b*)>
                   <!ELEMENT a (x*)>
                   <!ELEMENT b (x*)>
                   <!ELEMENT x (y)>
                   <!ELEMENT y EMPTY>";
        let report = lint_spec_shred(dtd, None, UNLIMITED).unwrap();
        let collisions: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::ShredNameCollision)
            .collect();
        // r.a.x vs r.b.x and r.a.x.y vs r.b.x.y all lose their leaf names.
        assert_eq!(collisions.len(), 4, "{}", report.render_human());
        assert_eq!(collisions[0].severity, Severity::Warning);
    }

    #[test]
    fn wide_tables_get_an_info_diagnostic() {
        let dtd = "<!ELEMENT r (w*)>
                   <!ELEMENT w EMPTY>
                   <!ATTLIST w a CDATA #REQUIRED b CDATA #REQUIRED c CDATA #REQUIRED
                               d CDATA #REQUIRED e CDATA #REQUIRED f CDATA #REQUIRED
                               g CDATA #REQUIRED>";
        let report = lint_spec_shred(dtd, None, UNLIMITED).unwrap();
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == Code::ShredWideTable)
            .expect("XNF303 fires: parent + 7 attrs > 6 candidates");
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("8 key-candidate"), "{}", d.message);
    }

    #[test]
    fn paper_specs_are_shred_clean() {
        let dtd = "<!ELEMENT courses (course*)>
             <!ELEMENT course (title, taken_by)>
             <!ATTLIST course cno CDATA #REQUIRED>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT taken_by (student*)>
             <!ELEMENT student (name, grade)>
             <!ATTLIST student sno CDATA #REQUIRED>
             <!ELEMENT name (#PCDATA)>
             <!ELEMENT grade (#PCDATA)>";
        let fds = "courses.course.@cno -> courses.course
                   courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student
                   courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S";
        assert_eq!(shred_codes(dtd, Some(fds)), vec![]);
    }
}
