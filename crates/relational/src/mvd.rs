//! Multivalued dependencies and 4NF — the paper's Section 8 ("Future
//! Research") names MVDs, "naturally induced by the tree structure", as
//! the next step beyond XNF. This module provides the relational side of
//! that step: MVD satisfaction, the standard FD+MVD inference checks
//! used in 4NF testing, and a 4NF test/decomposition, so the XML layer
//! has a baseline to grow against.

use crate::fd::{AttrSet, FdSet};
use crate::table::{Relation, Value};
use crate::Result;

/// A multivalued dependency `X ↠ Y` over attribute indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mvd {
    /// The determinant `X`.
    pub lhs: AttrSet,
    /// The dependent `Y`.
    pub rhs: AttrSet,
}

impl Mvd {
    /// Creates `lhs ↠ rhs`.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Mvd {
        Mvd { lhs, rhs }
    }

    /// Whether the MVD is trivial over the attribute set `all`:
    /// `Y ⊆ X` or `X ∪ Y = R`.
    pub fn is_trivial(self, all: AttrSet) -> bool {
        self.rhs.is_subset(self.lhs) || self.lhs.union(self.rhs) == all
    }

    /// The complement `X ↠ R − X − Y` (MVDs always come in pairs).
    pub fn complement(self, all: AttrSet) -> Mvd {
        Mvd {
            lhs: self.lhs,
            rhs: all.minus(self.lhs).minus(self.rhs),
        }
    }
}

/// Whether a relation instance satisfies `X ↠ Y`: for any two rows
/// agreeing on `X`, the row combining the first's `Y`-part with the
/// second's rest is also in the relation.
pub fn satisfies_mvd(rel: &Relation, all_cols: &[String], mvd: Mvd) -> Result<bool> {
    let ix = |set: AttrSet| -> Vec<usize> { set.iter().collect() };
    let x = ix(mvd.lhs);
    let y = ix(mvd.rhs.minus(mvd.lhs));
    let n = all_cols.len();
    let rest: Vec<usize> = (0..n)
        .filter(|i| !mvd.lhs.contains(*i) && !mvd.rhs.contains(*i))
        .collect();
    let rows: Vec<&[Value]> = rel.rows().collect();
    let row_set: std::collections::BTreeSet<&[Value]> = rel.rows().collect();
    for t1 in &rows {
        for t2 in &rows {
            if !x.iter().all(|&i| t1[i] == t2[i]) {
                continue;
            }
            // Witness row: X from either, Y from t1, rest from t2.
            let mut w: Vec<Value> = t2.to_vec();
            for &i in &y {
                w[i] = t1[i].clone();
            }
            let _ = &rest;
            if !row_set.contains(w.as_slice()) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// A combined dependency set: FDs plus MVDs over one attribute universe.
#[derive(Debug, Clone, Default)]
pub struct DepSet {
    /// The functional dependencies.
    pub fds: FdSet,
    /// The multivalued dependencies.
    pub mvds: Vec<Mvd>,
}

impl DepSet {
    /// The *dependency basis* of `x` over the attribute set `all`: the
    /// unique partition of `all − x` such that `x ↠ W` holds iff `W` is a
    /// union of blocks (Beeri's algorithm, using the given FDs and MVDs;
    /// each FD `X → Y` contributes the MVDs `X ↠ A` for `A ∈ Y`).
    pub fn dependency_basis(&self, x: AttrSet, all: AttrSet) -> Vec<AttrSet> {
        // Start with the single block all − x and refine.
        let mut blocks: Vec<AttrSet> = vec![all.minus(x)];
        blocks.retain(|b| !b.is_empty());
        // Collect the generating MVDs (FDs split attribute-wise).
        let mut gens: Vec<Mvd> = self.mvds.clone();
        for fd in self.fds.iter() {
            for a in fd.rhs.iter() {
                gens.push(Mvd::new(fd.lhs, AttrSet::singleton(a)));
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for g in &gens {
                if !g.lhs.is_subset(x.union(all.minus(blocks_union(&blocks)))) {
                    // Standard refinement applies when W ∩ lhs = ∅ for the
                    // block being split; use the textbook rule below
                    // instead of this guard.
                }
                let mut next: Vec<AttrSet> = Vec::new();
                for &b in &blocks {
                    // Refine block b by generator g if g.lhs ∩ b = ∅.
                    if g.lhs.intersect(b).is_empty() {
                        let inter = b.intersect(g.rhs);
                        let diff = b.minus(g.rhs);
                        if !inter.is_empty() && !diff.is_empty() {
                            next.push(inter);
                            next.push(diff);
                            changed = true;
                            continue;
                        }
                    }
                    next.push(b);
                }
                blocks = next;
            }
        }
        blocks.sort();
        blocks
    }

    /// Whether the dependencies imply `x ↠ y` over `all` (via the
    /// dependency basis).
    pub fn implies_mvd(&self, mvd: Mvd, all: AttrSet) -> bool {
        if mvd.is_trivial(all) {
            return true;
        }
        let basis = self.dependency_basis(mvd.lhs, all);
        let target = mvd.rhs.minus(mvd.lhs);
        // target must be a union of blocks.
        let mut covered = AttrSet::empty();
        for b in basis {
            if b.is_subset(target) {
                covered = covered.union(b);
            } else if !b.intersect(target).is_empty() {
                return false;
            }
        }
        covered == target
    }

    /// A 4NF violation, if any: a non-trivial `X ↠ Y` (from the MVDs or
    /// an FD read as an MVD) whose `X` is not a superkey under the FDs.
    pub fn fourth_nf_violation(&self, all: AttrSet) -> Option<Mvd> {
        let mut candidates: Vec<Mvd> = self.mvds.clone();
        for fd in self.fds.iter() {
            candidates.push(Mvd::new(fd.lhs, fd.rhs));
        }
        candidates
            .into_iter()
            .find(|m| !m.is_trivial(all) && !self.fds.is_superkey(m.lhs, all))
    }

    /// Whether `(all, FDs ∪ MVDs)` is in 4NF.
    pub fn is_4nf(&self, all: AttrSet) -> bool {
        self.fourth_nf_violation(all).is_none()
    }

    /// The standard 4NF decomposition: split on violations
    /// `X ↠ Y` into `X ∪ Y` and `R − Y` until none remain. Dependencies
    /// are re-derived per fragment via the dependency basis (MVDs) and
    /// FD projection.
    pub fn fourth_nf_decompose(&self, all: AttrSet) -> Vec<AttrSet> {
        let mut out = Vec::new();
        let mut work = vec![(all, self.clone())];
        while let Some((rel, deps)) = work.pop() {
            match deps.fourth_nf_violation(rel) {
                None => out.push(rel),
                Some(v) => {
                    let y = v.rhs.intersect(rel).minus(v.lhs);
                    let frag1 = v.lhs.union(y);
                    let frag2 = rel.minus(y);
                    debug_assert!(frag1 != rel && frag2 != rel);
                    for frag in [frag1, frag2] {
                        let fds = deps.fds.project(frag);
                        // Project MVDs by restriction (sound on fragments
                        // produced by the split rule).
                        let mvds: Vec<Mvd> = deps
                            .mvds
                            .iter()
                            .filter(|m| m.lhs.is_subset(frag))
                            .map(|m| Mvd::new(m.lhs, m.rhs.intersect(frag)))
                            .filter(|m| !m.is_trivial(frag))
                            .collect();
                        work.push((frag, DepSet { fds, mvds }));
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

fn blocks_union(blocks: &[AttrSet]) -> AttrSet {
    blocks.iter().fold(AttrSet::empty(), |acc, b| acc.union(*b))
}

/// 3NF synthesis from a minimal cover (Bernstein): one fragment per
/// cover-FD group, plus a key fragment if none contains a key. Returned
/// as attribute sets.
pub fn third_nf_synthesis(fds: &FdSet, all: AttrSet) -> Vec<AttrSet> {
    let cover = fds.minimal_cover();
    let mut frags: Vec<AttrSet> = Vec::new();
    // Group cover FDs by LHS.
    let mut by_lhs: Vec<(AttrSet, AttrSet)> = Vec::new();
    for fd in cover.iter() {
        match by_lhs.iter_mut().find(|(l, _)| *l == fd.lhs) {
            Some((_, rhs)) => *rhs = rhs.union(fd.rhs),
            None => by_lhs.push((fd.lhs, fd.rhs)),
        }
    }
    for (lhs, rhs) in &by_lhs {
        frags.push(lhs.union(*rhs));
    }
    // Attributes mentioned in no FD form their own fragment.
    let mentioned = by_lhs
        .iter()
        .fold(AttrSet::empty(), |acc, (l, r)| acc.union(*l).union(*r));
    let loose = all.minus(mentioned);
    if !loose.is_empty() {
        frags.push(loose);
    }
    // Ensure some fragment contains a candidate key.
    if !frags.iter().any(|f| fds.is_superkey(*f, all)) {
        let keys = fds.candidate_keys(all);
        if let Some(k) = keys.first() {
            frags.push(*k);
        }
    }
    // Drop fragments subsumed by others.
    frags.sort_by_key(|f| std::cmp::Reverse(f.len()));
    let mut kept: Vec<AttrSet> = Vec::new();
    for f in frags {
        if !kept.iter().any(|k| f.is_subset(*k)) {
            kept.push(f);
        }
    }
    kept.sort();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;

    fn s(ixs: &[usize]) -> AttrSet {
        let mut a = AttrSet::empty();
        for &i in ixs {
            a.insert(i);
        }
        a
    }

    /// The classic course–teacher–book example: R(C, T, B) with C ↠ T
    /// (and hence C ↠ B).
    #[test]
    fn mvd_satisfaction_on_ctb() {
        let cols = ["C".to_string(), "T".to_string(), "B".to_string()];
        let mut rel = Relation::new(cols.clone()).unwrap();
        for (c, t, b) in [
            ("db", "ann", "ullman"),
            ("db", "ann", "date"),
            ("db", "bob", "ullman"),
            ("db", "bob", "date"),
        ] {
            rel.insert(vec![Value::str(c), Value::str(t), Value::str(b)])
                .unwrap();
        }
        assert!(satisfies_mvd(&rel, &cols, Mvd::new(s(&[0]), s(&[1]))).unwrap());
        // Remove one combination: the MVD breaks.
        let mut broken = Relation::new(cols.clone()).unwrap();
        for (c, t, b) in [
            ("db", "ann", "ullman"),
            ("db", "ann", "date"),
            ("db", "bob", "ullman"),
        ] {
            broken
                .insert(vec![Value::str(c), Value::str(t), Value::str(b)])
                .unwrap();
        }
        assert!(!satisfies_mvd(&broken, &cols, Mvd::new(s(&[0]), s(&[1]))).unwrap());
    }

    #[test]
    fn dependency_basis_splits_independent_components() {
        // R(C, T, B), MVD C ↠ T: basis of {C} is {{T}, {B}}.
        let deps = DepSet {
            fds: FdSet::new(),
            mvds: vec![Mvd::new(s(&[0]), s(&[1]))],
        };
        let basis = deps.dependency_basis(s(&[0]), AttrSet::full(3));
        assert_eq!(basis, vec![s(&[1]), s(&[2])]);
        assert!(deps.implies_mvd(Mvd::new(s(&[0]), s(&[2])), AttrSet::full(3)));
        assert!(!deps.implies_mvd(Mvd::new(s(&[1]), s(&[2])), AttrSet::full(3)));
    }

    #[test]
    fn fds_contribute_to_the_basis() {
        // A → B makes A ↠ B derivable.
        let deps = DepSet {
            fds: FdSet::from_fds([Fd::new(s(&[0]), s(&[1]))]),
            mvds: vec![],
        };
        assert!(deps.implies_mvd(Mvd::new(s(&[0]), s(&[1])), AttrSet::full(3)));
    }

    #[test]
    fn fourth_nf_detection_and_decomposition() {
        // R(C, T, B), C ↠ T, no keys: not 4NF; split into CT and CB.
        let deps = DepSet {
            fds: FdSet::new(),
            mvds: vec![Mvd::new(s(&[0]), s(&[1]))],
        };
        let all = AttrSet::full(3);
        assert!(!deps.is_4nf(all));
        let frags = deps.fourth_nf_decompose(all);
        assert_eq!(frags, vec![s(&[0, 1]), s(&[0, 2])]);
        // With C a key, the same MVD is harmless.
        let keyed = DepSet {
            fds: FdSet::from_fds([Fd::new(s(&[0]), s(&[1, 2]))]),
            mvds: vec![Mvd::new(s(&[0]), s(&[1]))],
        };
        assert!(keyed.is_4nf(all));
    }

    #[test]
    fn fourth_nf_implies_bcnf_shape() {
        // A BCNF violation read as an MVD also violates 4NF.
        let deps = DepSet {
            fds: FdSet::from_fds([Fd::new(s(&[1]), s(&[2]))]),
            mvds: vec![],
        };
        assert!(!deps.is_4nf(AttrSet::full(4)));
    }

    #[test]
    fn third_nf_synthesis_classic() {
        // R(A, B, C): A → B, B → C. Cover groups {A→B}, {B→C}; fragments
        // AB, BC; A is a key inside AB: no extra key fragment.
        let fds = FdSet::from_fds([Fd::new(s(&[0]), s(&[1])), Fd::new(s(&[1]), s(&[2]))]);
        let frags = third_nf_synthesis(&fds, AttrSet::full(3));
        assert_eq!(frags, vec![s(&[0, 1]), s(&[1, 2])]);
    }

    #[test]
    fn third_nf_adds_key_fragment_when_needed() {
        // R(A, B, C, D): C → D. Fragments: CD plus a key {A, B, C}.
        let fds = FdSet::from_fds([Fd::new(s(&[2]), s(&[3]))]);
        let frags = third_nf_synthesis(&fds, AttrSet::full(4));
        assert!(frags.contains(&s(&[2, 3])));
        assert!(frags.iter().any(|f| fds.is_superkey(*f, AttrSet::full(4))));
    }

    #[test]
    fn third_nf_preserves_dependencies() {
        let fds = FdSet::from_fds([
            Fd::new(s(&[0]), s(&[1])),
            Fd::new(s(&[1, 2]), s(&[3])),
            Fd::new(s(&[3]), s(&[0])),
        ]);
        let all = AttrSet::full(4);
        let frags = third_nf_synthesis(&fds, all);
        // Each cover FD is embedded in some fragment.
        for fd in fds.minimal_cover().iter() {
            assert!(
                frags.iter().any(|f| fd.lhs.union(fd.rhs).is_subset(*f)),
                "cover FD {fd:?} not embedded"
            );
        }
        // Some fragment is a superkey.
        assert!(frags.iter().any(|f| fds.is_superkey(*f, all)));
    }

    #[test]
    fn mvd_complement_rule() {
        let m = Mvd::new(s(&[0]), s(&[1]));
        let all = AttrSet::full(4);
        assert_eq!(m.complement(all).rhs, s(&[2, 3]));
        assert!(m.complement(all).complement(all).rhs == m.rhs);
    }
}
