//! Boyce–Codd normal form: testing and lossless decomposition.
//!
//! The baseline of Proposition 4: a relational schema `(G, F)` is in BCNF
//! iff its XML coding `(D_G, Σ_F)` is in XNF.

use crate::fd::{AttrSet, Fd, FdSet};

/// Returns a BCNF-violating FD over the attribute set `all`, if any: a
/// non-trivial `X → Y ∈ Σ` whose `X` is not a superkey.
///
/// Checking the *given* FDs suffices (the standard generator argument): if
/// some implied non-trivial FD violates BCNF, so does one of the
/// generators.
pub fn bcnf_violation(fds: &FdSet, all: AttrSet) -> Option<Fd> {
    fds.iter()
        .find(|fd| !fd.is_trivial() && !fds.is_superkey(fd.lhs, all))
}

/// Whether `(all, fds)` is in BCNF.
pub fn is_bcnf(fds: &FdSet, all: AttrSet) -> bool {
    bcnf_violation(fds, all).is_none()
}

/// Exhaustive BCNF test quantifying over *all* implied non-trivial FDs
/// (exponential; used to validate [`is_bcnf`] in tests and experiments).
pub fn is_bcnf_exhaustive(fds: &FdSet, all: AttrSet) -> bool {
    let attrs: Vec<usize> = all.iter().collect();
    let n = attrs.len();
    for mask in 0u32..(1u32 << n) {
        let mut x = AttrSet::empty();
        for (bit, &a) in attrs.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                x.insert(a);
            }
        }
        let closure = fds.closure(x).intersect(all);
        if closure != x && !fds.is_superkey(x, all) {
            return false;
        }
    }
    true
}

/// The standard lossless BCNF decomposition: repeatedly split a violating
/// `X → Y` into `X ∪ (X⁺ ∩ R)` and `R \ (X⁺ \ X)`. Returns the fragments
/// with their projected FD sets.
pub fn bcnf_decompose(fds: &FdSet, all: AttrSet) -> Vec<(AttrSet, FdSet)> {
    let mut result = Vec::new();
    let mut work = vec![(all, fds.clone())];
    while let Some((rel, rel_fds)) = work.pop() {
        match bcnf_violation(&rel_fds, rel) {
            None => result.push((rel, rel_fds)),
            Some(v) => {
                let closure = rel_fds.closure(v.lhs).intersect(rel);
                let frag1 = closure; // X ∪ X⁺∩R
                let frag2 = rel.minus(closure.minus(v.lhs)); // R \ (X⁺ \ X)
                debug_assert!(frag1.union(frag2) == rel);
                debug_assert!(frag1 != rel && frag2 != rel, "decomposition must shrink");
                let fds1 = rel_fds.project(frag1);
                let fds2 = rel_fds.project(frag2);
                work.push((frag1, fds1));
                work.push((frag2, fds2));
            }
        }
    }
    result.sort_by_key(|(a, _)| *a);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ixs: &[usize]) -> AttrSet {
        let mut a = AttrSet::empty();
        for &i in ixs {
            a.insert(i);
        }
        a
    }

    #[test]
    fn key_based_schema_is_bcnf() {
        // R(A,B,C): A→BC. A is a key: BCNF.
        let fds = FdSet::from_fds([Fd::new(s(&[0]), s(&[1, 2]))]);
        assert!(is_bcnf(&fds, AttrSet::full(3)));
        assert!(is_bcnf_exhaustive(&fds, AttrSet::full(3)));
    }

    #[test]
    fn canonical_violation() {
        // The student/course schema: R(sno, name, cno, grade) with
        // sno → name, {sno, cno} → grade. sno is not a superkey.
        let fds = FdSet::from_fds([Fd::new(s(&[0]), s(&[1])), Fd::new(s(&[0, 2]), s(&[3]))]);
        let all = AttrSet::full(4);
        assert!(!is_bcnf(&fds, all));
        assert!(!is_bcnf_exhaustive(&fds, all));
        let v = bcnf_violation(&fds, all).unwrap();
        assert_eq!(v.lhs, s(&[0]));
    }

    #[test]
    fn decomposition_reaches_bcnf_and_preserves_attributes() {
        let fds = FdSet::from_fds([Fd::new(s(&[0]), s(&[1])), Fd::new(s(&[0, 2]), s(&[3]))]);
        let all = AttrSet::full(4);
        let frags = bcnf_decompose(&fds, all);
        // Every fragment is in BCNF (with projected FDs).
        for (rel, rel_fds) in &frags {
            assert!(is_bcnf(rel_fds, *rel));
            assert!(is_bcnf_exhaustive(rel_fds, *rel));
        }
        // Attributes are preserved.
        let union = frags
            .iter()
            .fold(AttrSet::empty(), |acc, (rel, _)| acc.union(*rel));
        assert_eq!(union, all);
        // The classic split: {sno, name} and {sno, cno, grade}.
        let attr_sets: Vec<AttrSet> = frags.iter().map(|(r, _)| *r).collect();
        assert!(attr_sets.contains(&s(&[0, 1])));
        assert!(attr_sets.contains(&s(&[0, 2, 3])));
    }

    #[test]
    fn generator_check_agrees_with_exhaustive_on_random_fds() {
        // Small deterministic sweep: all FD sets with two FDs over 4
        // attributes with singleton sides.
        let all = AttrSet::full(4);
        for l1 in 0..4usize {
            for r1 in 0..4usize {
                for l2 in 0..4usize {
                    for r2 in 0..4usize {
                        let fds = FdSet::from_fds([
                            Fd::new(s(&[l1]), s(&[r1])),
                            Fd::new(s(&[l2]), s(&[r2])),
                        ]);
                        assert_eq!(
                            is_bcnf(&fds, all),
                            is_bcnf_exhaustive(&fds, all),
                            "disagreement on {l1}->{r1}, {l2}->{r2}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trivial_only_fds_are_bcnf() {
        let fds = FdSet::from_fds([Fd::new(s(&[0, 1]), s(&[1]))]);
        assert!(is_bcnf(&fds, AttrSet::full(3)));
    }

    #[test]
    fn decomposition_of_bcnf_schema_is_identity() {
        let fds = FdSet::from_fds([Fd::new(s(&[0]), s(&[1, 2]))]);
        let all = AttrSet::full(3);
        let frags = bcnf_decompose(&fds, all);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].0, all);
    }
}
