//! Relational shredding targets: table schemas with keys and foreign
//! keys, SQL DDL / `INSERT` rendering, and shredded row sets.
//!
//! This module is the *relational half* of the XML→relational shredding
//! backend (the Atay et al. recipe from PAPERS.md specialized to the
//! paper's tree model): plain data — no DTD or document types — so it
//! lives in `xnf-relational` next to the BCNF machinery it is checked
//! against. The *compiler* that maps a `(D, Σ)` spec onto a
//! [`RelDesign`] and shreds documents into [`ShreddedDoc`]s lives in
//! `xnf-core::shred`, which can see both sides.
//!
//! Column roles fix the shredding contract:
//!
//! * [`ColumnRole::Id`] — the node ordinal among the nodes at the
//!   table's element path, in document order; always the primary key.
//! * [`ColumnRole::Parent`] — the parent node's `Id` in the parent
//!   path's table; a foreign key. Absent on the root table.
//! * [`ColumnRole::Pos`] — the node's index in its parent's child list
//!   (across *all* sibling labels), so reconstruction is exact, not
//!   merely up to sibling reordering. `(Parent, Pos)` is unique.
//! * [`ColumnRole::Attr`] / [`ColumnRole::Text`] — the data columns:
//!   one per DTD attribute, plus one for `#PCDATA` content.
//!
//! Each table carries the Σ-derived [`FdSet`] over its columns, so
//! [`is_bcnf`](crate::bcnf::is_bcnf) runs on emitted tables directly —
//! the executable side of the Proposition 4 correspondence.

use crate::fd::{AttrSet, Fd, FdSet, RelSchema};
use crate::table::Value;
use crate::{RelError, Result};
use std::fmt::Write as _;

/// What a column stores; fixes both its SQL type and how the shredder
/// fills it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnRole {
    /// Node ordinal at this table's element path (primary key).
    Id,
    /// Parent node's ordinal in the parent table (foreign key).
    Parent,
    /// Index in the parent's child list (document order).
    Pos,
    /// An XML attribute value.
    Attr,
    /// The element's `#PCDATA` content.
    Text,
}

impl ColumnRole {
    /// The SQL type a column of this role is declared with.
    pub fn sql_type(self) -> &'static str {
        match self {
            ColumnRole::Id | ColumnRole::Parent | ColumnRole::Pos => "INTEGER",
            ColumnRole::Attr | ColumnRole::Text => "TEXT",
        }
    }

    /// Whether the column may be `NULL` (only text content, which an
    /// element may lack, is nullable; attributes are `#REQUIRED` in the
    /// DTD fragment of the paper).
    pub fn nullable(self) -> bool {
        matches!(self, ColumnRole::Text)
    }

    /// Stable lower-case name for JSON rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            ColumnRole::Id => "id",
            ColumnRole::Parent => "parent",
            ColumnRole::Pos => "pos",
            ColumnRole::Attr => "attr",
            ColumnRole::Text => "text",
        }
    }
}

/// A named, typed column of a shredding target table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// SQL identifier (sanitized to `[A-Za-z0-9_]` by the compiler).
    pub name: String,
    /// What the column stores.
    pub role: ColumnRole,
}

/// A foreign-key edge from a child table's [`ColumnRole::Parent`]
/// column to its parent table's [`ColumnRole::Id`] column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column in this table.
    pub column: String,
    /// Referenced (parent) table.
    pub parent_table: String,
    /// Referenced column (the parent's id).
    pub parent_column: String,
}

/// One shredding target table: schema, keys, foreign key, and the
/// Σ-derived FDs over its columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (unique within the design).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Unique keys beyond the primary key, as column-name lists.
    pub unique_keys: Vec<Vec<String>>,
    /// The parent edge, absent on the root table.
    pub foreign_key: Option<ForeignKey>,
    /// FDs over the columns derived from `(D, Σ)` by the compiler
    /// (implication queries through the chase), expressed over
    /// [`Self::rel_schema`] column indices.
    pub fds: FdSet,
}

impl TableSchema {
    /// A table with the given name and columns, no extra keys and no
    /// derived FDs yet.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> TableSchema {
        TableSchema {
            name: name.into(),
            columns,
            unique_keys: Vec::new(),
            foreign_key: None,
            fds: FdSet::new(),
        }
    }

    /// The index of column `name`.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| RelError::UnknownAttribute(name.to_string()))
    }

    /// The primary-key column (the [`ColumnRole::Id`] column).
    pub fn primary_key(&self) -> Option<&Column> {
        self.columns.iter().find(|c| c.role == ColumnRole::Id)
    }

    /// The table as a flat [`RelSchema`] (for [`AttrSet`] / [`FdSet`]
    /// interop with the BCNF machinery).
    pub fn rel_schema(&self) -> Result<RelSchema> {
        RelSchema::new(&self.name, self.columns.iter().map(|c| c.name.as_str()))
    }

    /// Whether the table is in BCNF under its Σ-derived [`Self::fds`] —
    /// the per-table side of the Proposition 4 differential.
    pub fn is_bcnf(&self) -> bool {
        crate::bcnf::is_bcnf(&self.fds, AttrSet::full(self.columns.len()))
    }

    /// The first BCNF violation under [`Self::fds`], if any.
    pub fn bcnf_violation(&self) -> Option<Fd> {
        crate::bcnf::bcnf_violation(&self.fds, AttrSet::full(self.columns.len()))
    }

    /// `CREATE TABLE` statement (SQLite-compatible; identifiers are
    /// double-quoted, which is also standard SQL).
    pub fn to_create_sql(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "CREATE TABLE \"{}\" (", self.name);
        let mut lines: Vec<String> = Vec::new();
        for c in &self.columns {
            let mut line = format!("  \"{}\" {}", c.name, c.role.sql_type());
            if !c.role.nullable() {
                line.push_str(" NOT NULL");
            }
            if c.role == ColumnRole::Id {
                line.push_str(" PRIMARY KEY");
            }
            lines.push(line);
        }
        for key in &self.unique_keys {
            let cols: Vec<String> = key.iter().map(|k| format!("\"{k}\"")).collect();
            lines.push(format!("  UNIQUE ({})", cols.join(", ")));
        }
        if let Some(fk) = &self.foreign_key {
            lines.push(format!(
                "  FOREIGN KEY (\"{}\") REFERENCES \"{}\" (\"{}\")",
                fk.column, fk.parent_table, fk.parent_column
            ));
        }
        out.push_str(&lines.join(",\n"));
        out.push_str("\n);\n");
        out
    }
}

/// A complete shredding target: one table per element path of the DTD.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelDesign {
    /// Tables in parent-before-child order (the root table first).
    pub tables: Vec<TableSchema>,
}

impl RelDesign {
    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Result<&TableSchema> {
        self.tables
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| RelError::UnknownTable(name.to_string()))
    }

    /// Full DDL: `CREATE TABLE` statements in parent-before-child
    /// order, so foreign keys always reference an existing table.
    pub fn to_sql(&self) -> String {
        self.tables
            .iter()
            .map(TableSchema::to_create_sql)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// JSON rendering of the schema (tables, columns, keys, FKs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"tables\": [");
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(&t.name));
            out.push_str("      \"columns\": [");
            for (j, c) in t.columns.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n        {{\"name\": \"{}\", \"role\": \"{}\", \"type\": \"{}\", \"nullable\": {}}}",
                    json_escape(&c.name),
                    c.role.as_str(),
                    c.role.sql_type(),
                    c.role.nullable()
                );
            }
            out.push_str("\n      ],\n");
            let pk = t.primary_key().map_or("null".to_string(), |c| {
                format!("\"{}\"", json_escape(&c.name))
            });
            let _ = writeln!(out, "      \"primary_key\": {pk},");
            out.push_str("      \"unique_keys\": [");
            for (j, key) in t.unique_keys.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let cols: Vec<String> = key
                    .iter()
                    .map(|k| format!("\"{}\"", json_escape(k)))
                    .collect();
                let _ = write!(out, "[{}]", cols.join(", "));
            }
            out.push_str("],\n");
            match &t.foreign_key {
                Some(fk) => {
                    let _ = writeln!(
                        out,
                        "      \"foreign_key\": {{\"column\": \"{}\", \"parent_table\": \"{}\", \"parent_column\": \"{}\"}}",
                        json_escape(&fk.column),
                        json_escape(&fk.parent_table),
                        json_escape(&fk.parent_column)
                    );
                }
                None => out.push_str("      \"foreign_key\": null\n"),
            }
            out.push_str("    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// The rows shredded out of one document for one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRows {
    /// The target table's name.
    pub table: String,
    /// Rows in the table's column order; integers are [`Value::Vert`],
    /// data values [`Value::Str`], absent text [`Value::Null`].
    pub rows: Vec<Vec<Value>>,
}

/// A whole document shredded into rows, one [`TableRows`] per design
/// table (in design order, empty tables included).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShreddedDoc {
    /// Per-table row sets.
    pub tables: Vec<TableRows>,
}

impl ShreddedDoc {
    /// Total number of rows across all tables.
    pub fn row_count(&self) -> usize {
        self.tables.iter().map(|t| t.rows.len()).sum()
    }

    /// The rows of table `name`.
    pub fn rows_for(&self, name: &str) -> Result<&TableRows> {
        self.tables
            .iter()
            .find(|t| t.table == name)
            .ok_or_else(|| RelError::UnknownTable(name.to_string()))
    }

    /// `INSERT` statements against `design`, parent tables first.
    pub fn to_insert_sql(&self, design: &RelDesign) -> Result<String> {
        let mut out = String::new();
        for t in &self.tables {
            let schema = design.table(&t.table)?;
            if schema.columns.len() != t.rows.first().map_or(schema.columns.len(), Vec::len) {
                return Err(RelError::ArityMismatch {
                    expected: schema.columns.len(),
                    found: t.rows[0].len(),
                });
            }
            let cols: Vec<String> = schema
                .columns
                .iter()
                .map(|c| format!("\"{}\"", c.name))
                .collect();
            for row in &t.rows {
                let vals: Vec<String> = row.iter().map(sql_value).collect();
                let _ = writeln!(
                    out,
                    "INSERT INTO \"{}\" ({}) VALUES ({});",
                    t.table,
                    cols.join(", "),
                    vals.join(", ")
                );
            }
        }
        Ok(out)
    }

    /// JSON rendering: `{"tables": [{"name": …, "rows": [[…]]}]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"tables\": [");
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"name\": \"{}\", \"rows\": [", json_escape(&t.table));
            for (j, row) in t.rows.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let vals: Vec<String> = row.iter().map(json_value).collect();
                let _ = write!(out, "[{}]", vals.join(", "));
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Renders a value as a SQL literal (`'…'` with doubled quotes, bare
/// integers for vertices, `NULL` for `⊥`).
fn sql_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Vert(n) => n.to_string(),
    }
}

/// Renders a value as a JSON literal.
fn json_value(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Str(s) => format!("\"{}\"", json_escape(s)),
        Value::Vert(n) => n.to_string(),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn course_table() -> TableSchema {
        let mut t = TableSchema::new(
            "course",
            vec![
                Column {
                    name: "xnf_id".into(),
                    role: ColumnRole::Id,
                },
                Column {
                    name: "xnf_parent".into(),
                    role: ColumnRole::Parent,
                },
                Column {
                    name: "xnf_pos".into(),
                    role: ColumnRole::Pos,
                },
                Column {
                    name: "cno".into(),
                    role: ColumnRole::Attr,
                },
            ],
        );
        t.unique_keys.push(vec!["cno".into()]);
        t.foreign_key = Some(ForeignKey {
            column: "xnf_parent".into(),
            parent_table: "courses".into(),
            parent_column: "xnf_id".into(),
        });
        t
    }

    #[test]
    fn ddl_has_keys_and_fk() {
        let sql = course_table().to_create_sql();
        assert!(sql.contains("CREATE TABLE \"course\""));
        assert!(sql.contains("\"xnf_id\" INTEGER NOT NULL PRIMARY KEY"));
        assert!(sql.contains("UNIQUE (\"cno\")"));
        assert!(sql.contains("FOREIGN KEY (\"xnf_parent\") REFERENCES \"courses\" (\"xnf_id\")"));
        // Trailing statement terminator so files concatenate into scripts.
        assert!(sql.ends_with(");\n"));
    }

    #[test]
    fn inserts_escape_quotes_and_render_nulls() {
        let design = RelDesign {
            tables: vec![course_table()],
        };
        let doc = ShreddedDoc {
            tables: vec![TableRows {
                table: "course".into(),
                rows: vec![vec![
                    Value::Vert(0),
                    Value::Vert(0),
                    Value::Vert(1),
                    Value::str("o'clock"),
                ]],
            }],
        };
        let sql = doc.to_insert_sql(&design).unwrap();
        assert!(sql.contains("VALUES (0, 0, 1, 'o''clock');"));
        let json = doc.to_json();
        assert!(json.contains("\"rows\": [[0, 0, 1, \"o'clock\"]]"));
    }

    #[test]
    fn bcnf_check_runs_over_derived_fds() {
        let mut t = course_table();
        // id → everything: BCNF.
        t.fds = FdSet::from_fds([Fd::new(
            AttrSet::singleton(0),
            AttrSet::full(t.columns.len()),
        )]);
        assert!(t.is_bcnf());
        // A non-key data column determining another: violation.
        t.fds
            .push(Fd::new(AttrSet::singleton(3), AttrSet::singleton(1)));
        assert!(!t.is_bcnf());
        assert!(t.bcnf_violation().is_some());
    }

    #[test]
    fn json_schema_rendering_is_wellformed_enough() {
        let design = RelDesign {
            tables: vec![course_table()],
        };
        let json = design.to_json();
        assert!(json.contains("\"primary_key\": \"xnf_id\""));
        assert!(json.contains("\"unique_keys\": [[\"cno\"]]"));
        assert!(json.contains("\"parent_table\": \"courses\""));
        // Balanced braces/brackets as a cheap well-formedness probe.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
    }
}
