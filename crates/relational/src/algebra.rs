//! Relational algebra over Codd tables.
//!
//! This is the query language of the Section 6 losslessness definition:
//! `(D₁,Σ₁) ≼ (D₂,Σ₂)` asks for relational algebra queries `Q₁, Q₁', Q₂`
//! translating back and forth between `tuples_D(·)` tables. Following the
//! paper we evaluate queries over tables with nulls using the (naive)
//! semantics of Codd tables: `⊥` compares equal to itself and different
//! from every non-null value — adequate because the losslessness queries
//! only ever compare columns that the schema transformation keeps aligned.

use crate::table::{Relation, Value};
use crate::{RelError, Result};
use std::collections::HashMap;

/// A predicate over one row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Column equals column.
    EqAttr(String, String),
    /// Column equals constant.
    EqConst(String, Value),
    /// Column is (not) null.
    IsNull(String, bool),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    fn eval(&self, columns: &[String], row: &[Value]) -> Result<bool> {
        let ix = |name: &str| {
            columns
                .iter()
                .position(|c| c == name)
                .ok_or_else(|| RelError::UnknownAttribute(name.to_string()))
        };
        Ok(match self {
            Predicate::EqAttr(a, b) => row[ix(a)?] == row[ix(b)?],
            Predicate::EqConst(a, v) => row[ix(a)?] == *v,
            Predicate::IsNull(a, want) => row[ix(a)?].is_null() == *want,
            Predicate::And(p, q) => p.eval(columns, row)? && q.eval(columns, row)?,
            Predicate::Or(p, q) => p.eval(columns, row)? || q.eval(columns, row)?,
            Predicate::Not(p) => !p.eval(columns, row)?,
        })
    }
}

/// A relational algebra query over named input tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// A named input table.
    Table(String),
    /// Selection `σ_pred`.
    Select(Box<Query>, Predicate),
    /// Projection `π_cols` (with duplicate elimination).
    Project(Box<Query>, Vec<String>),
    /// Natural join (on all shared column names).
    Join(Box<Query>, Box<Query>),
    /// Set union (schemas must match exactly).
    Union(Box<Query>, Box<Query>),
    /// Set difference (schemas must match exactly).
    Diff(Box<Query>, Box<Query>),
    /// Column renaming `ρ` (pairs of `(from, to)`).
    Rename(Box<Query>, Vec<(String, String)>),
}

impl Query {
    /// A named input table.
    pub fn table(name: impl Into<String>) -> Query {
        Query::Table(name.into())
    }

    /// `σ_pred(self)`.
    pub fn select(self, pred: Predicate) -> Query {
        Query::Select(Box::new(self), pred)
    }

    /// `π_cols(self)`.
    pub fn project(self, cols: impl IntoIterator<Item = impl Into<String>>) -> Query {
        Query::Project(Box::new(self), cols.into_iter().map(Into::into).collect())
    }

    /// Natural join with `other`.
    pub fn join(self, other: Query) -> Query {
        Query::Join(Box::new(self), Box::new(other))
    }

    /// Set union with `other`.
    pub fn union(self, other: Query) -> Query {
        Query::Union(Box::new(self), Box::new(other))
    }

    /// Set difference with `other`.
    pub fn diff(self, other: Query) -> Query {
        Query::Diff(Box::new(self), Box::new(other))
    }

    /// Renames columns.
    pub fn rename(
        self,
        pairs: impl IntoIterator<Item = (impl Into<String>, impl Into<String>)>,
    ) -> Query {
        Query::Rename(
            Box::new(self),
            pairs
                .into_iter()
                .map(|(a, b)| (a.into(), b.into()))
                .collect(),
        )
    }

    /// Evaluates against an environment of named tables.
    pub fn eval(&self, env: &HashMap<String, Relation>) -> Result<Relation> {
        match self {
            Query::Table(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| RelError::UnknownTable(name.clone())),
            Query::Select(q, pred) => {
                let input = q.eval(env)?;
                let mut out = Relation::new(input.columns().to_vec())?;
                for row in input.rows() {
                    if pred.eval(input.columns(), row)? {
                        out.insert(row.to_vec())?;
                    }
                }
                Ok(out)
            }
            Query::Project(q, cols) => q.eval(env)?.project(cols),
            Query::Join(l, r) => {
                let left = l.eval(env)?;
                let right = r.eval(env)?;
                let shared: Vec<String> = left
                    .columns()
                    .iter()
                    .filter(|c| right.columns().contains(c))
                    .cloned()
                    .collect();
                let right_extra: Vec<String> = right
                    .columns()
                    .iter()
                    .filter(|c| !shared.contains(c))
                    .cloned()
                    .collect();
                let mut out_cols: Vec<String> = left.columns().to_vec();
                out_cols.extend(right_extra.iter().cloned());
                let mut out = Relation::new(out_cols)?;
                let shared_l: Vec<usize> = shared
                    .iter()
                    .map(|c| left.column_index(c))
                    .collect::<Result<_>>()?;
                let shared_r: Vec<usize> = shared
                    .iter()
                    .map(|c| right.column_index(c))
                    .collect::<Result<_>>()?;
                let extra_r: Vec<usize> = right_extra
                    .iter()
                    .map(|c| right.column_index(c))
                    .collect::<Result<_>>()?;
                for lr in left.rows() {
                    for rr in right.rows() {
                        if shared_l
                            .iter()
                            .zip(&shared_r)
                            .all(|(&i, &j)| lr[i] == rr[j])
                        {
                            let mut row = lr.to_vec();
                            row.extend(extra_r.iter().map(|&j| rr[j].clone()));
                            out.insert(row)?;
                        }
                    }
                }
                Ok(out)
            }
            Query::Union(l, r) => {
                let left = l.eval(env)?;
                let right = r.eval(env)?;
                if left.columns() != right.columns() {
                    return Err(RelError::SchemaMismatch {
                        left: left.columns().to_vec(),
                        right: right.columns().to_vec(),
                    });
                }
                let mut out = left.clone();
                for row in right.rows() {
                    out.insert(row.to_vec())?;
                }
                Ok(out)
            }
            Query::Diff(l, r) => {
                let left = l.eval(env)?;
                let right = r.eval(env)?;
                if left.columns() != right.columns() {
                    return Err(RelError::SchemaMismatch {
                        left: left.columns().to_vec(),
                        right: right.columns().to_vec(),
                    });
                }
                let mut out = Relation::new(left.columns().to_vec())?;
                let right_rows: std::collections::BTreeSet<&[Value]> = right.rows().collect();
                for row in left.rows() {
                    if !right_rows.contains(row) {
                        out.insert(row.to_vec())?;
                    }
                }
                Ok(out)
            }
            Query::Rename(q, pairs) => {
                let input = q.eval(env)?;
                let cols: Vec<String> = input
                    .columns()
                    .iter()
                    .map(|c| {
                        pairs
                            .iter()
                            .find(|(from, _)| from == c)
                            .map_or_else(|| c.clone(), |(_, to)| to.clone())
                    })
                    .collect();
                let mut out = Relation::new(cols)?;
                for row in input.rows() {
                    out.insert(row.to_vec())?;
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::str(s)
    }

    fn env() -> HashMap<String, Relation> {
        let mut takes = Relation::new(["sno", "cno", "grade"]).unwrap();
        takes.insert(vec![v("st1"), v("csc200"), v("A+")]).unwrap();
        takes.insert(vec![v("st1"), v("mat100"), v("A-")]).unwrap();
        takes.insert(vec![v("st2"), v("csc200"), v("B-")]).unwrap();
        let mut students = Relation::new(["sno", "name"]).unwrap();
        students.insert(vec![v("st1"), v("Deere")]).unwrap();
        students.insert(vec![v("st2"), v("Smith")]).unwrap();
        HashMap::from([
            ("takes".to_string(), takes),
            ("students".to_string(), students),
        ])
    }

    #[test]
    fn select_and_project() {
        let q = Query::table("takes")
            .select(Predicate::EqConst("cno".into(), v("csc200")))
            .project(["sno"]);
        let r = q.eval(&env()).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn natural_join_recovers_decomposed_relation() {
        // The BCNF decomposition is lossless: join the fragments back.
        let q = Query::table("takes").join(Query::table("students"));
        let r = q.eval(&env()).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.columns(), &["sno", "cno", "grade", "name"]);
        // Every row has the right name.
        for row in r.rows() {
            let sno = &row[0];
            let name = &row[3];
            if *sno == v("st1") {
                assert_eq!(*name, v("Deere"));
            } else {
                assert_eq!(*name, v("Smith"));
            }
        }
    }

    #[test]
    fn union_and_diff() {
        let e = env();
        let takes = Query::table("takes");
        let all = takes.clone().union(takes.clone()).eval(&e).unwrap();
        assert_eq!(all.len(), 3);
        let none = takes.clone().diff(takes).eval(&e).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn rename_then_join_on_new_names() {
        let e = env();
        let q = Query::table("students")
            .rename([("sno", "id")])
            .project(["id", "name"]);
        let r = q.eval(&e).unwrap();
        assert_eq!(r.columns(), &["id", "name"]);
    }

    #[test]
    fn schema_mismatch_detected() {
        let e = env();
        let q = Query::table("takes").union(Query::table("students"));
        assert!(matches!(q.eval(&e), Err(RelError::SchemaMismatch { .. })));
    }

    #[test]
    fn null_semantics_in_predicates_and_joins() {
        let mut t = Relation::new(["a", "b"]).unwrap();
        t.insert(vec![Value::Null, v("1")]).unwrap();
        t.insert(vec![v("x"), v("2")]).unwrap();
        let e = HashMap::from([("t".to_string(), t)]);
        let nulls = Query::table("t")
            .select(Predicate::IsNull("a".into(), true))
            .eval(&e)
            .unwrap();
        assert_eq!(nulls.len(), 1);
        // ⊥ joins with ⊥ under the naive semantics.
        let j = Query::table("t")
            .project(["a"])
            .join(Query::table("t"))
            .eval(&e)
            .unwrap();
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn boolean_predicates() {
        let e = env();
        let q = Query::table("takes").select(Predicate::And(
            Box::new(Predicate::EqConst("sno".into(), v("st1"))),
            Box::new(Predicate::Not(Box::new(Predicate::EqConst(
                "cno".into(),
                v("csc200"),
            )))),
        ));
        let r = q.eval(&e).unwrap();
        assert_eq!(r.len(), 1); // st1's mat100 row
        let q = Query::table("takes").select(Predicate::Or(
            Box::new(Predicate::EqConst("grade".into(), v("A+"))),
            Box::new(Predicate::EqConst("grade".into(), v("B-"))),
        ));
        assert_eq!(q.eval(&e).unwrap().len(), 2);
        // Column-to-column equality.
        let q = Query::table("takes").select(Predicate::EqAttr("sno".into(), "sno".into()));
        assert_eq!(q.eval(&e).unwrap().len(), 3);
    }

    #[test]
    fn predicate_on_missing_column_errors() {
        let e = env();
        let q = Query::table("takes").select(Predicate::EqConst("ghost".into(), v("x")));
        assert!(q.eval(&e).is_err());
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let e = env();
        assert!(matches!(
            Query::table("ghost").eval(&e),
            Err(RelError::UnknownTable(_))
        ));
        assert!(Query::table("takes").project(["ghost"]).eval(&e).is_err());
    }
}
