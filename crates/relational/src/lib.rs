//! # `xnf-relational` — relational and nested-relational theory
//!
//! The relational substrate that Arenas & Libkin's *"A Normal Form for XML
//! Documents"* (PODS 2002) builds on and compares against:
//!
//! * [`fd`] — attribute sets, functional dependencies, Armstrong closure,
//!   implication, keys and minimal covers.
//! * [`bcnf`] — BCNF testing and the standard lossless BCNF decomposition
//!   (the baseline of Proposition 4: BCNF ⇔ XNF under the relational
//!   coding).
//! * [`table`] — *Codd tables*: relations with nulls and FD satisfaction in
//!   the Atzeni–Morfuni semantics the paper adopts for tree tuples
//!   (Section 4).
//! * [`algebra`] — relational algebra over Codd tables, the query language
//!   of the Section 6 losslessness diagram.
//! * [`nested`] — nested relational schemas, complete unnesting (Figure 3),
//!   the partition normal form PNF, and the nested normal form NNF of
//!   Mok–Ng–Embley restricted to FDs (Proposition 5: NNF ⇔ XNF).
//! * [`mvd`] — multivalued dependencies, the dependency basis, 4NF and
//!   3NF synthesis: the relational groundwork for the paper's stated
//!   future direction (Section 8: extending XNF with MVDs).
//! * [`shred`] — shredding target schemas (tables, keys, foreign keys),
//!   SQL DDL / `INSERT` and JSON rendering, and shredded row sets: the
//!   relational half of the XML→relational backend whose tables the
//!   Proposition 4 differential checks for BCNF.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebra;
pub mod bcnf;
pub mod fd;
pub mod mvd;
pub mod nested;
pub mod shred;
pub mod table;

pub use crate::algebra::{Predicate, Query};
pub use crate::bcnf::{bcnf_decompose, is_bcnf};
pub use crate::fd::{AttrSet, Fd, FdSet, RelSchema};
pub use crate::mvd::{DepSet, Mvd};
pub use crate::nested::{NestedSchema, NestedTuple};
pub use crate::shred::{Column, ColumnRole, ForeignKey, RelDesign, ShreddedDoc, TableSchema};
pub use crate::table::{Relation, Value};

use std::fmt;

/// Errors produced by the relational layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// More attributes than the bitset representation supports (128).
    TooManyAttributes(usize),
    /// A duplicate attribute name in a schema.
    DuplicateAttribute(String),
    /// A row's arity does not match the relation schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// An algebra query referenced an undefined table name.
    UnknownTable(String),
    /// Set operation over incompatible schemas.
    SchemaMismatch {
        /// Left schema columns.
        left: Vec<String>,
        /// Right schema columns.
        right: Vec<String>,
    },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            RelError::TooManyAttributes(n) => {
                write!(f, "{n} attributes exceed the supported maximum of 128")
            }
            RelError::DuplicateAttribute(a) => write!(f, "duplicate attribute `{a}`"),
            RelError::ArityMismatch { expected, found } => {
                write!(f, "row has {found} values, schema has {expected} columns")
            }
            RelError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            RelError::SchemaMismatch { left, right } => write!(
                f,
                "incompatible schemas [{}] vs [{}]",
                left.join(", "),
                right.join(", ")
            ),
        }
    }
}

impl std::error::Error for RelError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, RelError>;
