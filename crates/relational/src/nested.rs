//! Nested relations — schemas `X(G₁)*…(Gₙ)*`, complete unnesting
//! (Figure 3), the partition normal form PNF, and the nested normal form
//! NNF of Mok–Ng–Embley restricted to FDs, as presented in Section 5.

use crate::fd::{AttrSet, Fd, FdSet, RelSchema};
use crate::table::{Relation, Value};
use crate::{RelError, Result};
use std::collections::BTreeSet;
use std::fmt;

/// A nested relation schema: a set of atomic attributes `X` and nested
/// subschemas `G₁ … Gₙ`, i.e. `G = X(G₁)*…(Gₙ)*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedSchema {
    name: String,
    atomic: Vec<String>,
    children: Vec<NestedSchema>,
}

impl NestedSchema {
    /// Creates a schema node.
    pub fn new(
        name: impl Into<String>,
        atomic: impl IntoIterator<Item = impl Into<String>>,
        children: impl IntoIterator<Item = NestedSchema>,
    ) -> NestedSchema {
        NestedSchema {
            name: name.into(),
            atomic: atomic.into_iter().map(Into::into).collect(),
            children: children.into_iter().collect(),
        }
    }

    /// A leaf schema (atomic attributes only).
    pub fn leaf(
        name: impl Into<String>,
        atomic: impl IntoIterator<Item = impl Into<String>>,
    ) -> NestedSchema {
        NestedSchema::new(name, atomic, [])
    }

    /// The schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The atomic attributes `X` of this schema node.
    pub fn atomic(&self) -> &[String] {
        &self.atomic
    }

    /// The nested subschemas `G₁ … Gₙ`.
    pub fn children(&self) -> &[NestedSchema] {
        &self.children
    }

    /// All atomic attributes of the whole schema tree, pre-order. The
    /// paper assumes attribute names are globally distinct; [`
    /// NestedSchema::validate`] enforces it.
    pub fn all_atomic(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_atomic(&mut out);
        out
    }

    fn collect_atomic<'a>(&'a self, out: &mut Vec<&'a str>) {
        out.extend(self.atomic.iter().map(String::as_str));
        for c in &self.children {
            c.collect_atomic(out);
        }
    }

    /// Validates global distinctness of attribute and subschema names.
    pub fn validate(&self) -> Result<()> {
        let attrs = self.all_atomic();
        let mut seen = BTreeSet::new();
        for a in &attrs {
            if !seen.insert(*a) {
                return Err(RelError::DuplicateAttribute(a.to_string()));
            }
        }
        let mut names = BTreeSet::new();
        let mut stack = vec![self];
        while let Some(s) = stack.pop() {
            if !names.insert(s.name.as_str()) {
                return Err(RelError::DuplicateAttribute(s.name.clone()));
            }
            stack.extend(s.children.iter());
        }
        Ok(())
    }

    /// The flat schema of the complete unnesting: one column per atomic
    /// attribute, pre-order.
    pub fn unnested_schema(&self) -> Result<RelSchema> {
        RelSchema::new(
            format!("Unnest({})", self.name),
            self.all_atomic().iter().map(|s| s.to_string()),
        )
    }

    /// `path(R)`: the schema names from the root to the (unique) subschema
    /// named `target`, inclusive; `None` if not present.
    pub fn path_to(&self, target: &str) -> Option<Vec<&str>> {
        if self.name == target {
            return Some(vec![&self.name]);
        }
        for c in &self.children {
            if let Some(mut p) = c.path_to(target) {
                p.insert(0, &self.name);
                return Some(p);
            }
        }
        None
    }

    /// The subschema containing atomic attribute `attr`, if any.
    pub fn schema_of_attr(&self, attr: &str) -> Option<&NestedSchema> {
        if self.atomic.iter().any(|a| a == attr) {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.schema_of_attr(attr))
    }

    /// `ancestor(A)` (Section 5): the union of the atomic attributes of all
    /// schema nodes mentioned in `path(R)` where `R` is the schema node
    /// carrying `A` — i.e. `A`'s node and all its ancestors.
    pub fn ancestor(&self, attr: &str) -> Option<Vec<&str>> {
        let holder = self.schema_of_attr(attr)?;
        let path = self.path_to(&holder.name)?;
        let mut out = Vec::new();
        let mut cur = self;
        for (i, name) in path.iter().enumerate() {
            debug_assert_eq!(cur.name, *name);
            out.extend(cur.atomic.iter().map(String::as_str));
            if i + 1 < path.len() {
                cur = cur
                    .children
                    .iter()
                    .find(|c| c.name == path[i + 1])
                    .expect("path_to returns an existing path");
            }
        }
        Some(out)
    }
}

impl fmt::Display for NestedSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.atomic.join(" "))?;
        for c in &self.children {
            write!(f, " ({})*", c.name)?;
        }
        Ok(())
    }
}

/// One tuple of a nested relation: values for the atomic attributes plus,
/// per subschema, a set of nested tuples.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct NestedTuple {
    /// Values for the atomic attributes, aligned with the schema's
    /// `atomic` list.
    pub atomic: Vec<Box<str>>,
    /// Nested relations, aligned with the schema's `children` list.
    pub children: Vec<Vec<NestedTuple>>,
}

impl NestedTuple {
    /// A tuple with atomic values and nested relations.
    pub fn new(
        atomic: impl IntoIterator<Item = impl Into<Box<str>>>,
        children: impl IntoIterator<Item = Vec<NestedTuple>>,
    ) -> NestedTuple {
        NestedTuple {
            atomic: atomic.into_iter().map(Into::into).collect(),
            children: children.into_iter().collect(),
        }
    }

    /// A leaf tuple (atomic values only).
    pub fn leaf(atomic: impl IntoIterator<Item = impl Into<Box<str>>>) -> NestedTuple {
        NestedTuple::new(atomic, [])
    }
}

/// The complete unnesting of a nested relation (Figure 3(b)): the flat
/// relation over all atomic attributes obtained by recursively taking the
/// cartesian product of each tuple with its nested relations. A tuple with
/// an *empty* nested relation contributes no rows (standard unnest
/// semantics).
pub fn unnest(schema: &NestedSchema, tuples: &[NestedTuple]) -> Result<Relation> {
    let flat = schema.unnested_schema()?;
    let mut rel = Relation::new(flat.attrs().to_vec())?;
    let mut row: Vec<Value> = Vec::new();
    for t in tuples {
        unnest_into(schema, t, &mut row, &mut rel)?;
        debug_assert!(row.is_empty());
    }
    Ok(rel)
}

fn unnest_into(
    schema: &NestedSchema,
    t: &NestedTuple,
    prefix: &mut Vec<Value>,
    out: &mut Relation,
) -> Result<()> {
    if t.atomic.len() != schema.atomic.len() || t.children.len() != schema.children.len() {
        return Err(RelError::ArityMismatch {
            expected: schema.atomic.len() + schema.children.len(),
            found: t.atomic.len() + t.children.len(),
        });
    }
    let base = prefix.len();
    prefix.extend(t.atomic.iter().map(|v| Value::Str(v.clone())));
    if schema.children.is_empty() {
        out.insert(prefix.clone())?;
    } else {
        // Cartesian product across the children, depth-first.
        product(schema, t, 0, prefix, out)?;
    }
    prefix.truncate(base);
    Ok(())
}

fn product(
    schema: &NestedSchema,
    t: &NestedTuple,
    child_ix: usize,
    prefix: &mut Vec<Value>,
    out: &mut Relation,
) -> Result<()> {
    if child_ix == schema.children.len() {
        out.insert(prefix.clone())?;
        return Ok(());
    }
    let child_schema = &schema.children[child_ix];
    for sub in &t.children[child_ix] {
        let base = prefix.len();
        // Expand this child's subtree fully, then recurse into the next
        // sibling for every expansion.
        expand_child(child_schema, sub, prefix, &mut |prefix| {
            product(schema, t, child_ix + 1, prefix, out)
        })?;
        prefix.truncate(base);
    }
    Ok(())
}

fn expand_child(
    schema: &NestedSchema,
    t: &NestedTuple,
    prefix: &mut Vec<Value>,
    k: &mut dyn FnMut(&mut Vec<Value>) -> Result<()>,
) -> Result<()> {
    if t.atomic.len() != schema.atomic.len() || t.children.len() != schema.children.len() {
        return Err(RelError::ArityMismatch {
            expected: schema.atomic.len() + schema.children.len(),
            found: t.atomic.len() + t.children.len(),
        });
    }
    let base = prefix.len();
    prefix.extend(t.atomic.iter().map(|v| Value::Str(v.clone())));
    if schema.children.is_empty() {
        k(prefix)?;
    } else {
        expand_children(schema, t, 0, prefix, k)?;
    }
    prefix.truncate(base);
    Ok(())
}

fn expand_children(
    schema: &NestedSchema,
    t: &NestedTuple,
    ix: usize,
    prefix: &mut Vec<Value>,
    k: &mut dyn FnMut(&mut Vec<Value>) -> Result<()>,
) -> Result<()> {
    if ix == schema.children.len() {
        return k(prefix);
    }
    for sub in &t.children[ix] {
        let base = prefix.len();
        expand_child(&schema.children[ix], sub, prefix, &mut |p| {
            expand_children(schema, t, ix + 1, p, k)
        })?;
        prefix.truncate(base);
    }
    Ok(())
}

/// Whether the nested relation is in **partition normal form** (PNF): any
/// two tuples agreeing on the atomic attributes have *equal* nested
/// relations, and all nested relations are recursively in PNF.
pub fn is_pnf(tuples: &[NestedTuple]) -> bool {
    for (i, t1) in tuples.iter().enumerate() {
        for t2 in &tuples[i + 1..] {
            if t1.atomic == t2.atomic {
                let eq = t1
                    .children
                    .iter()
                    .zip(&t2.children)
                    .all(|(c1, c2)| set_eq(c1, c2));
                if !eq {
                    return false;
                }
            }
        }
        if !t1.children.iter().all(|c| is_pnf(c)) {
            return false;
        }
    }
    true
}

fn set_eq(a: &[NestedTuple], b: &[NestedTuple]) -> bool {
    let mut a: Vec<&NestedTuple> = a.iter().collect();
    let mut b: Vec<&NestedTuple> = b.iter().collect();
    a.sort();
    b.sort();
    a == b
}

/// Checks an FD (by attribute names over the unnested schema) on the
/// complete unnesting of a nested relation — the paper's semantics for
/// nested-relation FDs ("we have a valid FD State → Country").
pub fn nested_satisfies_fd(
    schema: &NestedSchema,
    tuples: &[NestedTuple],
    lhs: &[&str],
    rhs: &[&str],
) -> Result<bool> {
    unnest(schema, tuples)?.satisfies_fd(lhs, rhs)
}

/// Whether `(G, FD)` is in **NNF** (Section 5, restricted to FDs): for each
/// non-trivial implied FD `X → A` with `A` atomic,
/// `X → ancestor(A) ∈ (G, FD)⁺`.
///
/// It suffices to check the singleton-RHS decompositions of the *given*
/// FDs: if `X → A` is implied and non-trivial, its derivation bottoms out
/// in a given `Z → A` with `Z ⊆ X⁺`, whose check `Z → ancestor(A)`
/// together with `X → Z` yields `X → ancestor(A)` by transitivity. The
/// exhaustive variant [`is_nnf_exhaustive`] validates this in tests.
pub fn is_nnf(schema: &NestedSchema, flat: &RelSchema, fds: &FdSet) -> Result<bool> {
    for fd in fds.iter() {
        for a in fd.rhs.minus(fd.lhs).iter() {
            let attr = &flat.attrs()[a];
            let anc = schema
                .ancestor(attr)
                .ok_or_else(|| RelError::UnknownAttribute(attr.clone()))?;
            let anc_set = flat.set(anc)?;
            if !fds.implies(Fd::new(fd.lhs, anc_set)) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Exhaustive NNF test over all implied non-trivial FDs `X → A`
/// (exponential in the number of attributes; for validation).
pub fn is_nnf_exhaustive(schema: &NestedSchema, flat: &RelSchema, fds: &FdSet) -> Result<bool> {
    let all: Vec<usize> = (0..flat.arity()).collect();
    let n = all.len();
    assert!(n <= 20, "exhaustive NNF check is for small schemas");
    for mask in 0u32..(1u32 << n) {
        let mut x = AttrSet::empty();
        for (bit, &a) in all.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                x.insert(a);
            }
        }
        let closure = fds.closure(x);
        for a in closure.minus(x).iter() {
            let attr = &flat.attrs()[a];
            let anc = schema
                .ancestor(attr)
                .ok_or_else(|| RelError::UnknownAttribute(attr.clone()))?;
            let anc_set = flat.set(anc)?;
            if !fds.implies(Fd::new(x, anc_set)) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The schema of Figure 3: H₁ = Country(H₂)*, H₂ = State(H₃)*,
    /// H₃ = City.
    fn figure3_schema() -> NestedSchema {
        NestedSchema::new(
            "H1",
            ["Country"],
            [NestedSchema::new(
                "H2",
                ["State"],
                [NestedSchema::leaf("H3", ["City"])],
            )],
        )
    }

    /// The instance of Figure 3(a).
    fn figure3_instance() -> Vec<NestedTuple> {
        vec![NestedTuple::new(
            ["United States"],
            [vec![
                NestedTuple::new(
                    ["Texas"],
                    [vec![
                        NestedTuple::leaf(["Houston"]),
                        NestedTuple::leaf(["Dallas"]),
                    ]],
                ),
                NestedTuple::new(
                    ["Ohio"],
                    [vec![
                        NestedTuple::leaf(["Columbus"]),
                        NestedTuple::leaf(["Cleveland"]),
                    ]],
                ),
            ]],
        )]
    }

    #[test]
    fn figure3_unnesting_matches_paper() {
        let rel = unnest(&figure3_schema(), &figure3_instance()).unwrap();
        assert_eq!(rel.columns(), &["Country", "State", "City"]);
        assert_eq!(rel.len(), 4);
        let rows: Vec<Vec<String>> = rel
            .rows()
            .map(|r| r.iter().map(|v| format!("{v}")).collect())
            .collect();
        assert!(rows
            .iter()
            .any(|r| r[1] == "\"Texas\"" && r[2] == "\"Houston\""));
        assert!(rows
            .iter()
            .any(|r| r[1] == "\"Ohio\"" && r[2] == "\"Cleveland\""));
    }

    #[test]
    fn figure3_fds() {
        let schema = figure3_schema();
        let inst = figure3_instance();
        // "we have a valid FD State → Country, while State → City does not
        // hold" — Section 5.
        assert!(nested_satisfies_fd(&schema, &inst, &["State"], &["Country"]).unwrap());
        assert!(!nested_satisfies_fd(&schema, &inst, &["State"], &["City"]).unwrap());
    }

    #[test]
    fn pnf_detection() {
        assert!(is_pnf(&figure3_instance()));
        // Two H₁ tuples for the same country with different state sets
        // violate PNF.
        let bad = vec![
            NestedTuple::new(
                ["United States"],
                [vec![NestedTuple::new(
                    ["Texas"],
                    [vec![NestedTuple::leaf(["Houston"])]],
                )]],
            ),
            NestedTuple::new(
                ["United States"],
                [vec![NestedTuple::new(
                    ["Ohio"],
                    [vec![NestedTuple::leaf(["Columbus"])]],
                )]],
            ),
        ];
        assert!(!is_pnf(&bad));
    }

    #[test]
    fn pnf_is_checked_recursively() {
        let bad_inner = vec![NestedTuple::new(
            ["United States"],
            [vec![
                NestedTuple::new(["Texas"], [vec![NestedTuple::leaf(["Houston"])]]),
                NestedTuple::new(["Texas"], [vec![NestedTuple::leaf(["Dallas"])]]),
            ]],
        )];
        assert!(!is_pnf(&bad_inner));
    }

    #[test]
    fn ancestor_sets() {
        let schema = figure3_schema();
        assert_eq!(schema.ancestor("Country").unwrap(), vec!["Country"]);
        assert_eq!(schema.ancestor("State").unwrap(), vec!["Country", "State"]);
        assert_eq!(
            schema.ancestor("City").unwrap(),
            vec!["Country", "State", "City"]
        );
        assert!(schema.ancestor("Ghost").is_none());
    }

    #[test]
    fn path_to_subschemas() {
        let schema = figure3_schema();
        assert_eq!(schema.path_to("H3").unwrap(), vec!["H1", "H2", "H3"]);
        assert_eq!(schema.path_to("H1").unwrap(), vec!["H1"]);
        assert!(schema.path_to("H9").is_none());
    }

    #[test]
    fn nnf_positive_example() {
        // State → Country follows the nesting: H₁ in NNF.
        let schema = figure3_schema();
        let flat = schema.unnested_schema().unwrap();
        let fds = FdSet::from_fds([Fd::new(
            flat.set(["State"]).unwrap(),
            flat.set(["Country"]).unwrap(),
        )]);
        assert!(is_nnf(&schema, &flat, &fds).unwrap());
        assert!(is_nnf_exhaustive(&schema, &flat, &fds).unwrap());
    }

    #[test]
    fn nnf_negative_example() {
        // City → State but City is nested *below* State: the FD crosses the
        // nesting the wrong way (City → ancestor(State) = {Country, State}
        // is fine, but State is not stored with City…). Use the classic
        // violation instead: Country → City would need Country →
        // ancestor(City) ⊇ {State}, which does not follow.
        let schema = figure3_schema();
        let flat = schema.unnested_schema().unwrap();
        let fds = FdSet::from_fds([Fd::new(
            flat.set(["Country"]).unwrap(),
            flat.set(["City"]).unwrap(),
        )]);
        assert!(!is_nnf(&schema, &flat, &fds).unwrap());
        assert!(!is_nnf_exhaustive(&schema, &flat, &fds).unwrap());
    }

    #[test]
    fn nnf_generator_vs_exhaustive_small_sweep() {
        // All single-FD sets with singleton sides over the Figure 3 schema.
        let schema = figure3_schema();
        let flat = schema.unnested_schema().unwrap();
        for l in 0..3usize {
            for r in 0..3usize {
                if l == r {
                    continue;
                }
                let fds = FdSet::from_fds([Fd::new(AttrSet::singleton(l), AttrSet::singleton(r))]);
                assert_eq!(
                    is_nnf(&schema, &flat, &fds).unwrap(),
                    is_nnf_exhaustive(&schema, &flat, &fds).unwrap(),
                    "disagreement on A{l}->A{r}"
                );
            }
        }
    }

    #[test]
    fn empty_nested_relation_drops_tuple() {
        let schema = figure3_schema();
        let inst = vec![NestedTuple::new(["Atlantis"], [Vec::<NestedTuple>::new()])];
        let rel = unnest(&schema, &inst).unwrap();
        assert!(rel.is_empty());
    }

    #[test]
    fn validate_rejects_duplicate_attrs() {
        let bad = NestedSchema::new("G", ["A"], [NestedSchema::leaf("H", ["A"])]);
        assert!(bad.validate().is_err());
        assert!(figure3_schema().validate().is_ok());
    }

    #[test]
    fn multi_child_product() {
        // G = A (P)* (Q)*: unnesting takes the product of P and Q sets.
        let schema = NestedSchema::new(
            "G",
            ["A"],
            [
                NestedSchema::leaf("P", ["B"]),
                NestedSchema::leaf("Q", ["C"]),
            ],
        );
        let inst = vec![NestedTuple::new(
            ["a"],
            [
                vec![NestedTuple::leaf(["b1"]), NestedTuple::leaf(["b2"])],
                vec![NestedTuple::leaf(["c1"]), NestedTuple::leaf(["c2"])],
            ],
        )];
        let rel = unnest(&schema, &inst).unwrap();
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn arity_mismatch_detected() {
        let schema = figure3_schema();
        let bad = vec![NestedTuple::leaf(["x", "y"])];
        assert!(unnest(&schema, &bad).is_err());
    }
}
