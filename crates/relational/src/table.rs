//! Codd tables: relations over values with nulls, and FD satisfaction in
//! the semantics the paper uses for tree tuples (Section 4; the
//! Atzeni–Morfuni semantics of FDs in incomplete relations).
//!
//! Values are strings, node identifiers (vertices — the paper's `Vert`),
//! or the null `⊥`. The `tuples_D(T)` relation of an XML tree is exactly
//! such a table, with one column per path of the DTD.

use crate::{RelError, Result};
use std::collections::BTreeSet;
use std::fmt;

/// A value in a Codd table: a string, a vertex (node identifier), or null.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// The null `⊥`.
    Null,
    /// A string from `Str`.
    Str(Box<str>),
    /// A vertex (node identifier) from `Vert`.
    Vert(u64),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<Box<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Whether the value is `⊥`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "⊥"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Vert(v) => write!(f, "v{v}"),
        }
    }
}

/// A relation (set semantics) over named columns, allowing nulls — a Codd
/// table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    columns: Vec<String>,
    rows: BTreeSet<Vec<Value>>,
}

impl Relation {
    /// Creates an empty relation with the given column names.
    pub fn new(columns: impl IntoIterator<Item = impl Into<String>>) -> Result<Relation> {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].contains(c) {
                return Err(RelError::DuplicateAttribute(c.clone()));
            }
        }
        Ok(Relation {
            columns,
            rows: BTreeSet::new(),
        })
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The index of column `name`.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| RelError::UnknownAttribute(name.to_string()))
    }

    /// Inserts a row. Fails on arity mismatch; duplicate rows are absorbed
    /// (set semantics).
    pub fn insert(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(RelError::ArityMismatch {
                expected: self.columns.len(),
                found: row.len(),
            });
        }
        self.rows.insert(row);
        Ok(())
    }

    /// The rows, in deterministic (sorted) order.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether an FD `lhs → rhs` (column-name sets) holds under the
    /// incomplete-relation semantics of Section 4: for all rows `t₁, t₂`,
    /// if `t₁[lhs] = t₂[lhs]` with **no nulls** on `lhs`, then
    /// `t₁[rhs] = t₂[rhs]` (nulls on `rhs` compare as values: `⊥ = ⊥`).
    pub fn satisfies_fd<S: AsRef<str>>(&self, lhs: &[S], rhs: &[S]) -> Result<bool> {
        let lhs_ix: Vec<usize> = lhs
            .iter()
            .map(|c| self.column_index(c.as_ref()))
            .collect::<Result<_>>()?;
        let rhs_ix: Vec<usize> = rhs
            .iter()
            .map(|c| self.column_index(c.as_ref()))
            .collect::<Result<_>>()?;
        let rows: Vec<&Vec<Value>> = self.rows.iter().collect();
        for (i, t1) in rows.iter().enumerate() {
            if lhs_ix.iter().any(|&c| t1[c].is_null()) {
                continue;
            }
            for t2 in &rows[i + 1..] {
                if lhs_ix.iter().all(|&c| t1[c] == t2[c]) && !rhs_ix.iter().all(|&c| t1[c] == t2[c])
                {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Returns this relation restricted to the given columns (with
    /// duplicate elimination) — projection as a standalone helper.
    pub fn project<S: AsRef<str>>(&self, cols: &[S]) -> Result<Relation> {
        let ix: Vec<usize> = cols
            .iter()
            .map(|c| self.column_index(c.as_ref()))
            .collect::<Result<_>>()?;
        let mut out = Relation::new(cols.iter().map(|c| c.as_ref().to_string()))?;
        for row in &self.rows {
            out.insert(ix.iter().map(|&i| row[i].clone()).collect())?;
        }
        Ok(out)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Value::to_string).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::str(s)
    }

    fn student_table() -> Relation {
        // (sno, name, cno, grade)
        let mut r = Relation::new(["sno", "name", "cno", "grade"]).unwrap();
        r.insert(vec![v("st1"), v("Deere"), v("csc200"), v("A+")])
            .unwrap();
        r.insert(vec![v("st1"), v("Deere"), v("mat100"), v("A-")])
            .unwrap();
        r.insert(vec![v("st2"), v("Smith"), v("csc200"), v("B-")])
            .unwrap();
        r
    }

    #[test]
    fn fd_satisfaction() {
        let r = student_table();
        assert!(r.satisfies_fd(&["sno"], &["name"]).unwrap());
        assert!(!r.satisfies_fd(&["sno"], &["grade"]).unwrap());
        assert!(r.satisfies_fd(&["sno", "cno"], &["grade"]).unwrap());
        // With a single Smith, name determines sno (the next test breaks it).
        assert!(r.satisfies_fd(&["name"], &["sno"]).unwrap());
    }

    #[test]
    fn fd_violation_by_name() {
        let mut r = student_table();
        // Two students named Smith with different numbers: name -/-> sno.
        r.insert(vec![v("st3"), v("Smith"), v("mat100"), v("B+")])
            .unwrap();
        assert!(!r.satisfies_fd(&["name"], &["sno"]).unwrap());
    }

    #[test]
    fn nulls_on_lhs_disable_the_fd() {
        let mut r = Relation::new(["a", "b"]).unwrap();
        r.insert(vec![Value::Null, v("1")]).unwrap();
        r.insert(vec![Value::Null, v("2")]).unwrap();
        // ⊥ on the LHS never triggers the implication.
        assert!(r.satisfies_fd(&["a"], &["b"]).unwrap());
    }

    #[test]
    fn nulls_on_rhs_compare_as_values() {
        let mut r = Relation::new(["a", "b"]).unwrap();
        r.insert(vec![v("x"), Value::Null]).unwrap();
        r.insert(vec![v("x"), v("1")]).unwrap();
        // b differs (⊥ ≠ "1") for equal non-null a.
        assert!(!r.satisfies_fd(&["a"], &["b"]).unwrap());
        let mut r2 = Relation::new(["a", "b"]).unwrap();
        r2.insert(vec![v("x"), Value::Null]).unwrap();
        r2.insert(vec![v("y"), Value::Null]).unwrap();
        assert!(r2.satisfies_fd(&["a"], &["b"]).unwrap());
    }

    #[test]
    fn set_semantics_dedups() {
        let mut r = Relation::new(["a"]).unwrap();
        r.insert(vec![v("x")]).unwrap();
        r.insert(vec![v("x")]).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn arity_checked() {
        let mut r = Relation::new(["a", "b"]).unwrap();
        assert!(matches!(
            r.insert(vec![v("x")]),
            Err(RelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn projection() {
        let r = student_table();
        let p = r.project(&["sno", "name"]).unwrap();
        assert_eq!(p.len(), 2); // st1 row deduplicated
        assert!(r.project(&["ghost"]).is_err());
    }

    #[test]
    fn vertices_and_strings_are_distinct() {
        assert_ne!(Value::Vert(1), Value::str("1"));
        assert_ne!(Value::Vert(1), Value::Vert(2));
        assert!(Value::Null.is_null());
    }
}
