//! Relational schemas, attribute sets and functional dependencies.
//!
//! Attribute sets are 128-bit bitsets over a schema's attribute list, which
//! makes the attribute-closure loop (the work-horse of implication, key
//! finding and BCNF testing) a few word operations per FD.

use crate::{RelError, Result};
use std::fmt;

/// A relation schema: a name and an ordered list of attribute names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelSchema {
    name: String,
    attrs: Vec<String>,
}

impl RelSchema {
    /// Creates a schema. Fails on duplicates or more than 128 attributes.
    pub fn new(
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<RelSchema> {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        if attrs.len() > 128 {
            return Err(RelError::TooManyAttributes(attrs.len()));
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(RelError::DuplicateAttribute(a.clone()));
            }
        }
        Ok(RelSchema {
            name: name.into(),
            attrs,
        })
    }

    /// The schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute names, in declaration order.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The index of attribute `name`.
    pub fn attr_index(&self, name: &str) -> Result<usize> {
        self.attrs
            .iter()
            .position(|a| a == name)
            .ok_or_else(|| RelError::UnknownAttribute(name.to_string()))
    }

    /// The set of all attributes.
    pub fn all(&self) -> AttrSet {
        AttrSet::full(self.attrs.len())
    }

    /// Builds an [`AttrSet`] from attribute names.
    pub fn set(&self, names: impl IntoIterator<Item = impl AsRef<str>>) -> Result<AttrSet> {
        let mut s = AttrSet::empty();
        for n in names {
            s.insert(self.attr_index(n.as_ref())?);
        }
        Ok(s)
    }

    /// Renders an [`AttrSet`] as sorted attribute names.
    pub fn names(&self, set: AttrSet) -> Vec<&str> {
        (0..self.attrs.len())
            .filter(|&i| set.contains(i))
            .map(|i| self.attrs[i].as_str())
            .collect()
    }
}

/// A set of attribute indices (bitset, max 128 attributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet(u128);

impl AttrSet {
    /// The empty set.
    pub fn empty() -> AttrSet {
        AttrSet(0)
    }

    /// The set `{0, 1, …, n-1}`.
    pub fn full(n: usize) -> AttrSet {
        debug_assert!(n <= 128);
        if n == 128 {
            AttrSet(u128::MAX)
        } else {
            AttrSet((1u128 << n) - 1)
        }
    }

    /// The singleton `{i}`.
    pub fn singleton(i: usize) -> AttrSet {
        AttrSet(1u128 << i)
    }

    /// Inserts index `i`.
    pub fn insert(&mut self, i: usize) {
        self.0 |= 1u128 << i;
    }

    /// Removes index `i`.
    pub fn remove(&mut self, i: usize) {
        self.0 &= !(1u128 << i);
    }

    /// Whether index `i` is in the set.
    pub fn contains(self, i: usize) -> bool {
        self.0 & (1u128 << i) != 0
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(self, other: AttrSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `self ∪ other`.
    pub fn union(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 | other.0)
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & other.0)
    }

    /// `self \ other`.
    pub fn minus(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & !other.0)
    }

    /// Number of attributes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty (alias of [`AttrSet::is_empty`]).
    pub fn is_empty_set(self) -> bool {
        self.is_empty()
    }

    /// Iterates over the member indices, ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..128).filter(move |&i| self.contains(i))
    }
}

/// A functional dependency `X → Y` over attribute indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd {
    /// The determinant `X`.
    pub lhs: AttrSet,
    /// The dependent `Y`.
    pub rhs: AttrSet,
}

impl Fd {
    /// Creates `lhs → rhs`.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Fd {
        Fd { lhs, rhs }
    }

    /// Whether the FD is trivial (`Y ⊆ X`).
    pub fn is_trivial(self) -> bool {
        self.rhs.is_subset(self.lhs)
    }
}

/// A set of functional dependencies over one schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FdSet {
    fds: Vec<Fd>,
}

impl FdSet {
    /// The empty FD set.
    pub fn new() -> FdSet {
        FdSet::default()
    }

    /// Builds from FDs.
    pub fn from_fds(fds: impl IntoIterator<Item = Fd>) -> FdSet {
        FdSet {
            fds: fds.into_iter().collect(),
        }
    }

    /// Adds an FD.
    pub fn push(&mut self, fd: Fd) {
        self.fds.push(fd);
    }

    /// The FDs.
    pub fn iter(&self) -> impl Iterator<Item = Fd> + '_ {
        self.fds.iter().copied()
    }

    /// Number of FDs.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// The attribute closure `X⁺` under this FD set (the standard
    /// fixed-point computation).
    pub fn closure(&self, x: AttrSet) -> AttrSet {
        let mut closed = x;
        let mut changed = true;
        while changed {
            changed = false;
            for fd in &self.fds {
                if fd.lhs.is_subset(closed) && !fd.rhs.is_subset(closed) {
                    closed = closed.union(fd.rhs);
                    changed = true;
                }
            }
        }
        closed
    }

    /// Whether this set implies `fd` (i.e. `fd ∈ Σ⁺`).
    pub fn implies(&self, fd: Fd) -> bool {
        fd.rhs.is_subset(self.closure(fd.lhs))
    }

    /// Whether `x` is a superkey of a relation with attribute set `all`.
    pub fn is_superkey(&self, x: AttrSet, all: AttrSet) -> bool {
        all.is_subset(self.closure(x))
    }

    /// Whether `x` is a (minimal) candidate key of `all`.
    pub fn is_key(&self, x: AttrSet, all: AttrSet) -> bool {
        self.is_superkey(x, all)
            && x.iter()
                .all(|i| !self.is_superkey(x.minus(AttrSet::singleton(i)), all))
    }

    /// All candidate keys of `all` (exponential search, intended for the
    /// small schemas of design theory).
    pub fn candidate_keys(&self, all: AttrSet) -> Vec<AttrSet> {
        let attrs: Vec<usize> = all.iter().collect();
        let n = attrs.len();
        let mut keys: Vec<AttrSet> = Vec::new();
        // Enumerate subsets in order of increasing size so that supersets
        // of found keys can be skipped.
        for mask in 0u32..(1u32 << n) {
            let mut s = AttrSet::empty();
            for (bit, &a) in attrs.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    s.insert(a);
                }
            }
            if keys.iter().any(|&k| k.is_subset(s)) {
                continue;
            }
            if self.is_superkey(s, all) {
                keys.push(s);
            }
        }
        keys.sort();
        keys
    }

    /// Projects this FD set onto the attribute set `onto`: the FDs
    /// `X → (X⁺ ∩ onto)` for `X ⊆ onto` (exponential; used by BCNF
    /// decomposition on design-theory-sized schemas).
    pub fn project(&self, onto: AttrSet) -> FdSet {
        let attrs: Vec<usize> = onto.iter().collect();
        let n = attrs.len();
        let mut out = FdSet::new();
        for mask in 0u32..(1u32 << n) {
            let mut x = AttrSet::empty();
            for (bit, &a) in attrs.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    x.insert(a);
                }
            }
            let rhs = self.closure(x).intersect(onto).minus(x);
            if !rhs.is_empty() {
                out.push(Fd::new(x, rhs));
            }
        }
        out
    }

    /// A minimal cover: singleton right-hand sides, no redundant FDs, no
    /// extraneous left-hand-side attributes.
    pub fn minimal_cover(&self) -> FdSet {
        // 1. Split RHS into singletons.
        let mut fds: Vec<Fd> = Vec::new();
        for fd in &self.fds {
            for a in fd.rhs.minus(fd.lhs).iter() {
                fds.push(Fd::new(fd.lhs, AttrSet::singleton(a)));
            }
        }
        // 2. Remove extraneous LHS attributes.
        let mut changed = true;
        while changed {
            changed = false;
            let snapshot = FdSet { fds: fds.clone() };
            for fd in &mut fds {
                for a in fd.lhs.iter() {
                    let reduced = fd.lhs.minus(AttrSet::singleton(a));
                    if !reduced.is_empty() && snapshot.implies(Fd::new(reduced, fd.rhs)) {
                        fd.lhs = reduced;
                        changed = true;
                        break;
                    }
                }
            }
        }
        // 3. Remove redundant FDs.
        let mut i = 0;
        while i < fds.len() {
            let fd = fds[i];
            let rest = FdSet {
                fds: fds
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, f)| *f)
                    .collect(),
            };
            if rest.implies(fd) {
                fds.remove(i);
            } else {
                i += 1;
            }
        }
        fds.sort_by_key(|f| (f.lhs, f.rhs));
        fds.dedup();
        FdSet { fds }
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = |s: AttrSet| {
            s.iter()
                .map(|i| format!("A{i}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        write!(f, "{} -> {}", side(self.lhs), side(self.rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ixs: &[usize]) -> AttrSet {
        let mut a = AttrSet::empty();
        for &i in ixs {
            a.insert(i);
        }
        a
    }

    #[test]
    fn attrset_basics() {
        let a = s(&[0, 2, 5]);
        assert!(a.contains(2));
        assert!(!a.contains(1));
        assert_eq!(a.len(), 3);
        assert!(s(&[0, 2]).is_subset(a));
        assert!(!a.is_subset(s(&[0, 2])));
        assert_eq!(a.minus(s(&[2])), s(&[0, 5]));
        assert_eq!(a.union(s(&[1])), s(&[0, 1, 2, 5]));
        assert_eq!(a.intersect(s(&[2, 5, 7])), s(&[2, 5]));
        assert_eq!(AttrSet::full(3), s(&[0, 1, 2]));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 2, 5]);
    }

    #[test]
    fn schema_lookup_and_errors() {
        let sch = RelSchema::new("G", ["A", "B", "C"]).unwrap();
        assert_eq!(sch.attr_index("B").unwrap(), 1);
        assert!(matches!(
            sch.attr_index("Z"),
            Err(RelError::UnknownAttribute(_))
        ));
        assert!(RelSchema::new("G", ["A", "A"]).is_err());
        let set = sch.set(["A", "C"]).unwrap();
        assert_eq!(sch.names(set), vec!["A", "C"]);
    }

    #[test]
    fn closure_textbook_example() {
        // R(A,B,C,D,E): A→B, B→C, CD→E.
        let fds = FdSet::from_fds([
            Fd::new(s(&[0]), s(&[1])),
            Fd::new(s(&[1]), s(&[2])),
            Fd::new(s(&[2, 3]), s(&[4])),
        ]);
        assert_eq!(fds.closure(s(&[0])), s(&[0, 1, 2]));
        assert_eq!(fds.closure(s(&[0, 3])), s(&[0, 1, 2, 3, 4]));
        assert!(fds.implies(Fd::new(s(&[0, 3]), s(&[4]))));
        assert!(!fds.implies(Fd::new(s(&[0]), s(&[4]))));
    }

    #[test]
    fn keys() {
        // R(A,B,C): A→B, B→C. Key: {A}.
        let fds = FdSet::from_fds([Fd::new(s(&[0]), s(&[1])), Fd::new(s(&[1]), s(&[2]))]);
        let all = AttrSet::full(3);
        assert!(fds.is_superkey(s(&[0]), all));
        assert!(fds.is_key(s(&[0]), all));
        assert!(!fds.is_key(s(&[0, 1]), all));
        assert_eq!(fds.candidate_keys(all), vec![s(&[0])]);
    }

    #[test]
    fn multiple_candidate_keys() {
        // R(A,B): A→B, B→A — both {A} and {B} are keys.
        let fds = FdSet::from_fds([Fd::new(s(&[0]), s(&[1])), Fd::new(s(&[1]), s(&[0]))]);
        assert_eq!(fds.candidate_keys(AttrSet::full(2)), vec![s(&[0]), s(&[1])]);
    }

    #[test]
    fn projection_keeps_transitive_fds() {
        // A→B, B→C projected onto {A, C} must contain A→C.
        let fds = FdSet::from_fds([Fd::new(s(&[0]), s(&[1])), Fd::new(s(&[1]), s(&[2]))]);
        let proj = fds.project(s(&[0, 2]));
        assert!(proj.implies(Fd::new(s(&[0]), s(&[2]))));
        assert!(!proj.implies(Fd::new(s(&[2]), s(&[0]))));
    }

    #[test]
    fn minimal_cover_removes_redundancy() {
        // {A→B, B→C, A→C}: A→C is redundant.
        let fds = FdSet::from_fds([
            Fd::new(s(&[0]), s(&[1])),
            Fd::new(s(&[1]), s(&[2])),
            Fd::new(s(&[0]), s(&[2])),
        ]);
        let cover = fds.minimal_cover();
        assert_eq!(cover.len(), 2);
        // Equivalent to the original.
        for fd in fds.iter() {
            assert!(cover.implies(fd));
        }
    }

    #[test]
    fn minimal_cover_trims_lhs() {
        // {AB→C, A→B}: B is extraneous in AB→C.
        let fds = FdSet::from_fds([Fd::new(s(&[0, 1]), s(&[2])), Fd::new(s(&[0]), s(&[1]))]);
        let cover = fds.minimal_cover();
        assert!(cover
            .iter()
            .any(|fd| fd.lhs == s(&[0]) && fd.rhs == s(&[2])));
    }

    #[test]
    fn trivial_fd_detection() {
        assert!(Fd::new(s(&[0, 1]), s(&[1])).is_trivial());
        assert!(!Fd::new(s(&[0]), s(&[1])).is_trivial());
        // Trivial FDs are always implied, even by the empty set.
        assert!(FdSet::new().implies(Fd::new(s(&[0, 1]), s(&[0]))));
    }
}
