#![doc = include_str!("../README.md")]
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use xnf_core as core;
pub use xnf_dtd as dtd;
pub use xnf_lint as lint;
pub use xnf_relational as relational;
pub use xnf_xml as xml;
